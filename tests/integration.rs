//! Workspace-level integration tests: scenarios that span multiple crates
//! (runtime + LB strategies + pool + mini-apps + both backends).

use std::sync::Arc;

use charm_rs::apps::leanmd::{charm::run_charm as leanmd_charm, MdParams};
use charm_rs::apps::stencil3d::{charm::run_charm as stencil_charm, mpi::run_mpi, StencilParams};
use charm_rs::core::prelude::*;
use charm_rs::core::Runtime;
use charm_rs::lb::{GreedyLb, RefineLb, RotateLb};
use charm_rs::pool::{register_pool, register_task, PoolHandle};
use charm_rs::sim::MachineModel;
use serde::{Deserialize, Serialize};

fn sim(npes: usize) -> Runtime {
    Runtime::new(npes)
        .backend(Backend::Sim(MachineModel::local(npes)))
        .meter_compute(false)
}

#[test]
fn stencil_charm_equals_mpi_through_umbrella_crate() {
    let params = StencilParams::new([8, 8, 8], [2, 2, 2], 5);
    let a = stencil_charm(params.clone(), sim(4));
    let b = run_mpi(params, sim(8));
    assert!((a.checksum.1 - b.checksum.1).abs() < 1e-9 * (1.0 + a.checksum.1.abs()));
}

#[test]
fn pool_and_mini_app_share_one_runtime_process() {
    // Two different frameworks (pool, stencil) run back-to-back in one
    // process: the global registries must not interfere.
    let double = register_task(|x: i64| 2 * x);
    register_pool(sim(3)).run(move |co| {
        let pool = PoolHandle::create(co.ctx());
        let job = pool.map_async(co.ctx(), double, 2, &[10, 20, 30]);
        assert_eq!(job.get(co), vec![20, 40, 60]);
        co.ctx().exit();
    });
    let r = stencil_charm(StencilParams::new([8, 8, 8], [2, 2, 2], 3), sim(2));
    assert!(r.report.clean_exit);
}

#[test]
fn stencil_lb_strategies_all_preserve_results() {
    let reference = {
        let p = StencilParams::new([8, 8, 8], [2, 2, 2], 12);
        stencil_charm(p, sim(2)).checksum
    };
    for strategy in [
        Arc::new(GreedyLb) as Arc<dyn LbStrategy>,
        Arc::new(RefineLb::default()),
        Arc::new(RotateLb),
    ] {
        let mut p = StencilParams::new([8, 8, 8], [2, 2, 2], 12);
        p.lb_every = Some(4);
        let r = stencil_charm(p, sim(2).lb_strategy(strategy));
        assert!(
            (r.checksum.1 - reference.1).abs() < 1e-9 * (1.0 + reference.1.abs()),
            "strategy changed results: {:?} vs {reference:?}",
            r.checksum
        );
    }
}

#[test]
fn leanmd_runs_on_threads_backend_with_pool_in_same_process() {
    let r = leanmd_charm(MdParams::small(), Runtime::new(2));
    assert_eq!(r.particles as usize, MdParams::small().num_particles());
}

// ---------------------------------------------------------------------------
// A cross-crate app: a pool job whose tasks each run a tiny stencil kernel,
// demonstrating library composition (pool tasks can be arbitrary compute).
// ---------------------------------------------------------------------------

#[test]
fn pool_tasks_running_stencil_kernels() {
    use charm_rs::apps::stencil3d::kernel::Block;
    let relax = register_task(|seed: u32| {
        let mut b = Block::zeros(6, 6, 6);
        b.fill(|x, y, z| ((x + y + z + seed as usize) % 5) as f64);
        for _ in 0..4 {
            b.data = b.jacobi_step();
        }
        b.checksum().0
    });
    register_pool(Runtime::new(3)).run(move |co| {
        let pool = PoolHandle::create(co.ctx());
        let job = pool.map_async(co.ctx(), relax, 2, &[0u32, 1, 2, 3, 4, 5, 6, 7]);
        let sums = job.get(co);
        assert_eq!(sums.len(), 8);
        assert!(sums.iter().all(|s: &f64| s.is_finite()));
        // Identical seeds mod 5 give identical results: determinism.
        assert_eq!(sums[0], sums[5]);
        co.ctx().exit();
    });
}

// ---------------------------------------------------------------------------
// Custom reducer + custom placement, through the full runtime.
// ---------------------------------------------------------------------------

struct Stat;

#[derive(Serialize, Deserialize)]
enum StatMsg {
    Go { out: Future<RedData> },
}

impl Chare for Stat {
    type Msg = StatMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Stat
    }
    fn receive(&mut self, msg: StatMsg, ctx: &mut Ctx) {
        let StatMsg::Go { out } = msg;
        let v = (ctx.my_index().first() + 1) as f64;
        // Custom reducer id 0 is the first registered on the runtime.
        ctx.contribute(
            RedData::F64(v),
            Reducer::Custom(0),
            RedTarget::Future(out.id()),
        );
    }
}

#[test]
fn custom_reducer_and_placement_end_to_end() {
    let mut rt = sim(3).register::<Stat>();
    let geo_mean = rt.add_reducer("geomean-parts", |parts| {
        // Combine by product; the caller takes the k-th root at the end.
        let p: f64 = parts.iter().map(|x| x.as_f64()).product();
        RedData::F64(p)
    });
    assert_eq!(geo_mean, Reducer::Custom(0));
    let placement = rt.add_placement(|ix, npes| (ix.first() as usize / 2) % npes);
    rt.run(move |co| {
        let arr = co.ctx().create_array_with::<Stat>(
            &[6],
            (),
            ArrayOpts {
                placement,
                use_lb: false,
            },
        );
        let out = co.ctx().create_future::<RedData>();
        arr.send(co.ctx(), StatMsg::Go { out });
        let product = co.get(&out).as_f64();
        assert_eq!(product, 720.0); // 6!
        co.ctx().exit();
    });
}

// ---------------------------------------------------------------------------
// Report plumbing across the umbrella crate.
// ---------------------------------------------------------------------------

#[test]
fn run_report_reflects_simulated_time() {
    struct Sleeper;
    #[derive(Serialize, Deserialize)]
    enum SleepMsg {
        Nap { done: Future<i64> },
    }
    impl Chare for Sleeper {
        type Msg = SleepMsg;
        type Init = ();
        fn create(_: (), _: &mut Ctx) -> Self {
            Sleeper
        }
        fn receive(&mut self, msg: SleepMsg, ctx: &mut Ctx) {
            let SleepMsg::Nap { done } = msg;
            ctx.charge(std::time::Duration::from_millis(250));
            ctx.send_future(&done, 1);
        }
    }
    let report = sim(2).register::<Sleeper>().run(|co| {
        let s = co.ctx().create_chare::<Sleeper>((), Some(1));
        let done = co.ctx().create_future::<i64>();
        s.send(co.ctx(), SleepMsg::Nap { done });
        co.get(&done);
        co.ctx().exit();
    });
    // 250 ms of virtual compute must appear in virtual time but not wall.
    assert!(report.time.as_millis() >= 250, "virtual {:?}", report.time);
    assert!(report.wall.as_millis() < 250, "wall {:?}", report.wall);
}
