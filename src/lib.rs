//! Umbrella crate re-exporting the charm-rs workspace.

#![forbid(unsafe_code)]

pub use charm_apps as apps;
pub use charm_core as core;
pub use charm_lb as lb;
pub use charm_pool as pool;
pub use charm_sim as sim;
pub use charm_wire as wire;
pub use minimpi as mpi;
