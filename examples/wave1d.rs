//! A fourth scenario showing the threaded-entry-method style (paper §II-H):
//! a 1-D wave equation where each chare's driver is a *coroutine* using the
//! direct-style `wait` construct, instead of the callback/guard style the
//! stencil uses — the exact pattern of the paper's §II-H2 listing.
//!
//! Run with: `cargo run --release --example wave1d`

use charm_rs::core::prelude::*;
use charm_rs::core::Runtime;
use serde::{Deserialize, Serialize};

const SEGMENTS: i32 = 8;
const POINTS: usize = 64;
const STEPS: usize = 200;

/// One segment of the string.
#[derive(Serialize, Deserialize)]
struct Segment {
    u_prev: Vec<f64>,
    u: Vec<f64>,
    left: Option<f64>,
    right: Option<f64>,
    msg_count: usize,
}

#[derive(Serialize, Deserialize)]
enum SegMsg {
    /// Start the driver coroutine.
    Run { done: Future<RedData> },
    /// A neighbor's boundary value for the current step.
    Edge { from_left: bool, value: f64 },
}

impl Chare for Segment {
    type Msg = SegMsg;
    type Init = ();

    fn create(_: (), ctx: &mut Ctx) -> Self {
        let k = ctx.my_index().first() as usize;
        // A pluck in the middle of the string.
        let u: Vec<f64> = (0..POINTS)
            .map(|i| {
                let x = (k * POINTS + i) as f64 / (SEGMENTS as usize * POINTS) as f64;
                (-200.0 * (x - 0.5) * (x - 0.5)).exp()
            })
            .collect();
        Segment {
            u_prev: u.clone(),
            u,
            left: None,
            right: None,
            msg_count: 0,
        }
    }

    fn receive(&mut self, msg: SegMsg, ctx: &mut Ctx) {
        match msg {
            SegMsg::Run { done } => {
                // The paper's @threaded work(): a direct-style loop that
                // sends, waits for both neighbor edges, then computes.
                ctx.go::<Segment>(move |co| {
                    let k = co.ctx().my_index().first();
                    let me = co.ctx().this_proxy::<Segment>();
                    for _ in 0..STEPS {
                        let (first, last) = {
                            let this = co.this();
                            (this.u[0], this.u[POINTS - 1])
                        };
                        let mut expected = 0;
                        if k > 0 {
                            me.elem(k - 1).send(
                                co.ctx(),
                                SegMsg::Edge {
                                    from_left: false,
                                    value: first,
                                },
                            );
                            expected += 1;
                        }
                        if k < SEGMENTS - 1 {
                            me.elem(k + 1).send(
                                co.ctx(),
                                SegMsg::Edge {
                                    from_left: true,
                                    value: last,
                                },
                            );
                            expected += 1;
                        }
                        // self.wait('self.msg_count == len(self.neighbors)')
                        co.wait(move |s: &Segment| s.msg_count == expected);
                        let this = co.this();
                        this.msg_count = 0;
                        this.step();
                    }
                    // Contribute the final energy for a sanity print.
                    let e: f64 = co.this().u.iter().map(|v| v * v).sum();
                    co.ctx().contribute(
                        RedData::F64(e),
                        Reducer::Sum,
                        RedTarget::Future(done.id()),
                    );
                });
            }
            SegMsg::Edge { from_left, value } => {
                if from_left {
                    self.left = Some(value);
                } else {
                    self.right = Some(value);
                }
                self.msg_count += 1;
            }
        }
    }
}

impl Segment {
    #[allow(clippy::needless_range_loop)]
    fn step(&mut self) {
        const C2: f64 = 0.25; // (c dt / dx)^2
        let mut next = vec![0.0; POINTS];
        for i in 0..POINTS {
            let um = if i == 0 {
                self.left.unwrap_or(0.0) // fixed end at the string boundary
            } else {
                self.u[i - 1]
            };
            let up = if i == POINTS - 1 {
                self.right.unwrap_or(0.0)
            } else {
                self.u[i + 1]
            };
            next[i] = 2.0 * self.u[i] - self.u_prev[i] + C2 * (um - 2.0 * self.u[i] + up);
        }
        self.u_prev = std::mem::replace(&mut self.u, next);
        self.left = None;
        self.right = None;
    }
}

fn main() {
    Runtime::new(4).register::<Segment>().run(|co| {
        let string = co.ctx().create_array::<Segment>(&[SEGMENTS], ());
        let done = co.ctx().create_future::<RedData>();
        string.send(co.ctx(), SegMsg::Run { done });
        let energy = co.get(&done).as_f64();
        println!("wave1d: {SEGMENTS} segments x {POINTS} points, {STEPS} steps");
        println!("final energy sum(u^2) = {energy:.6}");
        assert!(energy.is_finite() && energy > 0.0);
        co.ctx().exit();
    });
    println!("done");
}
