//! Histogram sort (the canonical Charm++ example app): skewed random keys
//! are redistributed into globally sorted, balanced ranges using a
//! histogram reduction to pick splitters and an all-to-all key exchange.
//!
//! Run with: `cargo run --release --example histogram_sort`

use charm_rs::apps::histo::{run_histo, HistoParams};
use charm_rs::core::{Backend, Runtime};
use charm_rs::sim::MachineModel;

fn main() {
    let params = HistoParams {
        chares: 16,
        keys_per_chare: 4000,
        bins: 256,
        key_max: 1 << 24,
        seed: 7,
    };
    println!(
        "histogram sort: {} chares x {} skewed keys, {} probe bins",
        params.chares, params.keys_per_chare, params.bins
    );
    let r = run_histo(
        params,
        Runtime::new(4).backend(Backend::Sim(MachineModel::local(4))),
    );
    println!("  sorted: {}", r.sorted);
    println!(
        "  keys:   {} (conserved), checksum {:#x}",
        r.total_keys, r.key_sum
    );
    println!("  balance: max/avg share = {:.3}", r.imbalance);
    assert!(r.sorted && r.imbalance < 1.5);
    println!("ok");
}
