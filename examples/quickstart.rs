//! Quickstart: the paper's §II examples in charm-rs.
//!
//! Creates a single chare and calls a method on it (the hello-world of
//! §II-B), then a 100-element worker array performing the §II-F sum
//! reduction, collected through a future exactly like the paper's
//! `charm.createFuture()` listing.
//!
//! Run with: `cargo run --release --example quickstart`

use charm_rs::core::prelude::*;
use serde::{Deserialize, Serialize};

// --- class MyChare(Chare): def SayHi(self, msg) ---------------------------

struct MyChare;

#[derive(Serialize, Deserialize)]
enum MyChareMsg {
    SayHi(String),
}

impl Chare for MyChare {
    type Msg = MyChareMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        MyChare
    }
    fn receive(&mut self, msg: MyChareMsg, ctx: &mut Ctx) {
        let MyChareMsg::SayHi(text) = msg;
        println!("PE {} says: {text}", ctx.my_pe());
        ctx.reply(format!("hi received on PE {}", ctx.my_pe()));
    }
}

// --- class Worker(Chare): contribute(data, Reducer.sum, target) -----------

struct Worker;

#[derive(Serialize, Deserialize)]
enum WorkerMsg {
    Work { result: Future<RedData> },
}

impl Chare for Worker {
    type Msg = WorkerMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Worker
    }
    fn receive(&mut self, msg: WorkerMsg, ctx: &mut Ctx) {
        let WorkerMsg::Work { result } = msg;
        // Each worker contributes the numbers 0..20 (as in the paper's
        // numpy.arange(20) example), summed element-wise across workers.
        let data: Vec<f64> = (0..20).map(|i| i as f64).collect();
        ctx.contribute(
            RedData::VecF64(data),
            Reducer::Sum,
            RedTarget::Future(result.id()),
        );
    }
}

fn main() {
    let report = Runtime::new(4)
        .register::<MyChare>()
        .register::<Worker>()
        .run(|co| {
            // Single chare, created wherever the runtime likes (§II-B).
            let proxy = co.ctx().create_chare::<MyChare>((), None);
            let reply = proxy.call::<String>(co.ctx(), MyChareMsg::SayHi("Hello".into()));
            println!("main got: {}", co.get(&reply));

            // 100 workers, one collective sum (§II-F / §II-H3).
            let workers = co.ctx().create_array::<Worker>(&[100], ());
            let result = co.ctx().create_future::<RedData>();
            workers.send(co.ctx(), WorkerMsg::Work { result });
            let sum = co.get(&result);
            // Each worker contributes [0,1,...,19]; the element-wise sum over
            // 100 workers is [0,100,200,...,1900].
            println!("reduction result (first 5): {:?}", &sum.as_vec_f64()[..5]);
            assert_eq!(sum.as_vec_f64()[3], 300.0);

            co.ctx().exit();
        });
    println!(
        "done: {} messages, {} entry methods, wall {:?}",
        report.msgs, report.entries, report.wall
    );
}
