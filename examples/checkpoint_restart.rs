//! Checkpoint / restart (the paper's fault-tolerance future-work item,
//! implemented as an extension): an iterative computation checkpoints
//! halfway, the runtime is torn down ("crash"), and a *new* runtime with a
//! different PE count restores the chares and finishes the run.
//!
//! Run with: `cargo run --release --example checkpoint_restart`

use charm_rs::core::prelude::*;
use charm_rs::core::{CollectionId, Runtime};
use serde::{Deserialize, Serialize};

const WORKERS: i32 = 12;
const TARGET: u32 = 10;

/// A worker iterating toward `TARGET`, accumulating state as it goes.
#[derive(Serialize, Deserialize)]
struct Worker {
    iter: u32,
    acc: i64,
}

#[derive(Serialize, Deserialize)]
enum WorkerMsg {
    /// Run until `upto`, then contribute the accumulated state.
    Run { upto: u32, done: Future<RedData> },
}

impl Chare for Worker {
    type Msg = WorkerMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Worker { iter: 0, acc: 0 }
    }
    fn receive(&mut self, msg: WorkerMsg, ctx: &mut Ctx) {
        let WorkerMsg::Run { upto, done } = msg;
        let me = ctx.my_index().first() as i64;
        while self.iter < upto {
            self.iter += 1;
            self.acc += me * self.iter as i64;
        }
        ctx.contribute(
            RedData::I64(self.acc),
            Reducer::Sum,
            RedTarget::Future(done.id()),
        );
    }
}

fn expected(upto: u32) -> i64 {
    let tri = (upto as i64) * (upto as i64 + 1) / 2;
    (0..WORKERS as i64).map(|m| m * tri).sum()
}

fn main() {
    let dir = std::env::temp_dir().join(format!("charmrs-ckpt-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 1: run half the iterations on 2 PEs, checkpoint, "crash".
    let dir1 = dir.clone();
    Runtime::new(2)
        .register_migratable::<Worker>()
        .run(move |co| {
            let arr = co.ctx().create_array::<Worker>(&[WORKERS], ());
            let done = co.ctx().create_future::<RedData>();
            arr.send(
                co.ctx(),
                WorkerMsg::Run {
                    upto: TARGET / 2,
                    done,
                },
            );
            let halfway = co.get(&done).as_i64();
            println!("phase 1 (2 PEs): halfway sum = {halfway}");
            assert_eq!(halfway, expected(TARGET / 2));

            // Quiesce, checkpoint, exit — simulating a planned shutdown
            // (or the state surviving a crash under periodic checkpoints).
            let q = co.ctx().create_future::<()>();
            co.ctx().start_quiescence(&q);
            co.get(&q);
            let saved = co.ctx().create_future::<i64>();
            co.ctx()
                .checkpoint(dir1.to_str().unwrap().to_string(), &saved);
            println!(
                "checkpointed {} chares to {}",
                co.get(&saved),
                dir1.display()
            );
            co.ctx().exit();
        });

    // Phase 2: restore onto 4 PEs and finish.
    let dir2 = dir.clone();
    Runtime::new(4)
        .register_migratable::<Worker>()
        .run_restored(dir.clone(), move |co| {
            println!("phase 2 (4 PEs): restored from {}", dir2.display());
            let arr = Proxy::<Worker>::restored(CollectionId { creator: 0, seq: 0 });
            let done = co.ctx().create_future::<RedData>();
            arr.send(co.ctx(), WorkerMsg::Run { upto: TARGET, done });
            let total = co.get(&done).as_i64();
            println!("final sum = {total}");
            assert_eq!(total, expected(TARGET), "resumed exactly where it left off");
            co.ctx().exit();
        });

    let _ = std::fs::remove_dir_all(&dir);
    println!("checkpoint/restart roundtrip verified");
}
