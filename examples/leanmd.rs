//! The LeanMD mini-app (paper §V-C), runnable end to end: a Lennard-Jones
//! simulation over a 3D cell array plus a sparse 6D pair-compute array,
//! with periodic particle migration between cells.
//!
//! Prints conservation diagnostics (particle count, momentum) and the
//! native-vs-dynamic dispatch comparison on the simulated backend.
//!
//! Run with: `cargo run --release --example leanmd`
//! Knobs: CHARMRS_PES (default 4), CHARMRS_STEPS (default 20)

use charm_rs::apps::leanmd::{charm::run_charm, MdParams};
use charm_rs::core::{Backend, DispatchMode, Runtime};
use charm_rs::sim::MachineModel;

fn env(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let pes = env("CHARMRS_PES", 4);
    let steps = env("CHARMRS_STEPS", 20) as u32;
    let params = MdParams {
        cells: [4, 4, 4],
        per_cell: 32,
        cell_size: 4.0,
        cutoff: 4.0,
        dt: 0.002,
        steps,
        migrate_every: 5,
        seed: 2018,
    };
    println!(
        "leanmd: {} cells x {} particles = {} total, {} pair computes, {steps} steps, {pes} simulated PEs",
        params.num_cells(),
        params.per_cell,
        params.num_particles(),
        params.all_computes().len(),
    );

    let native = run_charm(
        params.clone(),
        Runtime::new(pes).backend(Backend::Sim(MachineModel::bluewaters(8))),
    );
    println!(
        "  native  : {:8.3} ms/step | particles {} | momentum [{:+.2e} {:+.2e} {:+.2e}] | kinetic {:.4}",
        native.time_per_step_ms,
        native.particles,
        native.momentum[0],
        native.momentum[1],
        native.momentum[2],
        native.kinetic,
    );
    assert_eq!(
        native.particles as usize,
        params.num_particles(),
        "conservation"
    );

    let dynamic = run_charm(
        params.clone(),
        Runtime::new(pes)
            .backend(Backend::Sim(MachineModel::bluewaters(8)))
            .dispatch(DispatchMode::Dynamic),
    );
    println!(
        "  dynamic : {:8.3} ms/step (CharmPy-analog overhead {:+.1}%)",
        dynamic.time_per_step_ms,
        (dynamic.time_per_step_ms / native.time_per_step_ms - 1.0) * 100.0,
    );
    assert_eq!(
        native.kinetic.to_bits(),
        dynamic.kinetic.to_bits(),
        "same physics"
    );
    println!("  physics identical across dispatch modes");
}
