//! The paper's §III use case: a distributed parallel map with concurrent
//! asynchronous jobs on a master-worker pool.
//!
//! Mirrors the paper's user-facing listing: create the pool, launch two
//! jobs at once, block on both futures at the end. Tasks of wildly
//! different cost balance automatically because the master hands tasks to
//! idle workers dynamically.
//!
//! Run with: `cargo run --release --example parallel_map`

use std::time::{Duration, Instant};

use charm_rs::core::prelude::*;
use charm_rs::pool::{register_pool, register_task, PoolHandle};

fn main() {
    // def f(x): return x * x
    let f = register_task(|x: i64| x * x);
    // A deliberately lumpy job: task cost is the value itself (ms).
    let lumpy = register_task(|ms: u64| {
        std::thread::sleep(Duration::from_millis(ms));
        ms * 10
    });

    let report = register_pool(Runtime::new(5)).run(move |co| {
        let pool = PoolHandle::create(co.ctx());

        // pool.map_async(f, 2, tasks1, f1); pool.map_async(f, 2, tasks2, f2)
        let j1 = pool.map_async(co.ctx(), f, 2, &[1, 2, 3, 4, 5]);
        let j2 = pool.map_async(co.ctx(), f, 2, &[1, 3, 5, 7, 9]);
        println!("two jobs launched; main is free to do other work...");
        println!("final results are {:?} {:?}", j1.get(co), j2.get(co));

        // Dynamic load balancing across disparate task costs (§III): one
        // 100ms task plus many 10ms tasks on 4 workers finishes near the
        // 100ms critical path rather than the 220ms sum.
        let mut tasks = vec![100u64];
        tasks.extend(std::iter::repeat_n(10, 12));
        let t0 = Instant::now();
        let j3 = pool.map_async(co.ctx(), lumpy, 4, &tasks);
        let out = j3.get(co);
        println!(
            "lumpy job: {} tasks (sum of costs 220 ms) finished in {:?}",
            out.len(),
            t0.elapsed()
        );
        co.ctx().exit();
    });
    println!("done: {} messages, wall {:?}", report.msgs, report.wall);
}
