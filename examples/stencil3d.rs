//! The stencil3d mini-app (paper §V-A/§V-B), runnable end to end.
//!
//! Runs the same problem three ways and cross-checks the results:
//!  1. charm-rs, native dispatch (the Charm++ analog),
//!  2. charm-rs, dynamic dispatch (the CharmPy analog),
//!  3. minimpi ranks (the mpi4py analog),
//!
//! then repeats an imbalanced configuration with and without GreedyLB.
//!
//! Run with: `cargo run --release --example stencil3d`
//! Knobs: CHARMRS_PES (default 4), CHARMRS_ITERS (default 50)

use std::sync::Arc;

use charm_rs::apps::stencil3d::{charm::run_charm, mpi::run_mpi, StencilParams};
use charm_rs::core::{Backend, DispatchMode, Runtime};
use charm_rs::lb::GreedyLb;
use charm_rs::sim::MachineModel;

fn env(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let pes = env("CHARMRS_PES", 4);
    let iters = env("CHARMRS_ITERS", 50) as u32;
    let params = StencilParams::new([16 * pes, 32, 32], [pes, 1, 1], iters);
    let sim = || Backend::Sim(MachineModel::local(pes));

    println!(
        "stencil3d: grid {:?}, {} blocks, {iters} iters, {pes} simulated PEs",
        params.grid,
        params.num_blocks()
    );

    let native = run_charm(params.clone(), Runtime::new(pes).backend(sim()));
    println!(
        "  charm-rs native  : {:8.3} ms/step  checksum {:.6e}",
        native.time_per_step_ms, native.checksum.0
    );

    let dynamic = run_charm(
        params.clone(),
        Runtime::new(pes)
            .backend(sim())
            .dispatch(DispatchMode::Dynamic),
    );
    println!(
        "  charm-rs dynamic : {:8.3} ms/step  checksum {:.6e}",
        dynamic.time_per_step_ms, dynamic.checksum.0
    );

    let mpi = run_mpi(params.clone(), Runtime::new(pes).backend(sim()));
    println!(
        "  minimpi          : {:8.3} ms/step  checksum {:.6e}",
        mpi.time_per_step_ms, mpi.checksum.0
    );

    assert!((native.checksum.1 - mpi.checksum.1).abs() < 1e-6 * native.checksum.1.abs());
    assert!((native.checksum.1 - dynamic.checksum.1).abs() < 1e-6 * native.checksum.1.abs());
    println!("  all three implementations agree bit-for-bit on the result");

    // §V-B: synthetic imbalance, 4 blocks/PE, load balancing every 30 iters.
    let mut imb = StencilParams::new([16 * pes, 32, 32], [4 * pes, 1, 1], iters.max(120));
    imb.imbalance = Some(pes);
    imb.sync_every = 1;
    imb.nominal_kernel_s = Some(100e-6);
    let no_lb = run_charm(
        imb.clone(),
        Runtime::new(pes).backend(sim()).meter_compute(false),
    );
    imb.lb_every = Some(30);
    let with_lb = run_charm(
        imb,
        Runtime::new(pes)
            .backend(sim())
            .meter_compute(false)
            .lb_strategy(Arc::new(GreedyLb)),
    );
    println!(
        "  imbalanced: {:8.3} ms/step without LB, {:8.3} with GreedyLB ({:.2}x speedup, {} migrations)",
        no_lb.time_per_step_ms,
        with_lb.time_per_step_ms,
        no_lb.time_per_step_ms / with_lb.time_per_step_ms,
        with_lb.report.migrations,
    );
}
