//! Task Bench in a dozen lines: run one dependency pattern over a
//! `width × steps` task grid, print the checksum, the per-message overhead
//! counters, and the efficiency at the chosen grain.
//!
//! Run with: `cargo run --release --example taskbench -- [pattern]`
//! where pattern is one of `trivial`, `stencil`, `fft`, `random`, `tree`
//! (default `stencil`). Knobs mirror the METG bench: width/steps/grain are
//! edited here rather than flagged — it is an example, not the harness.

use charm_rs::apps::taskbench::{expected, run_taskbench, Pattern, TaskBenchParams};
use charm_rs::core::{Backend, Runtime};
use charm_rs::sim::MachineModel;

const NPES: usize = 4;

fn main() {
    let pattern = std::env::args()
        .nth(1)
        .and_then(|s| Pattern::parse(&s))
        .unwrap_or(Pattern::Stencil);
    let params = TaskBenchParams {
        pattern,
        width: 32,
        steps: 16,
        grain_ns: 10_000,
        fanout: 3,
        seed: 7,
    };
    let (oracle, tasks) = expected(&params);
    let ideal_ns = params.total_tasks() * params.grain_ns / NPES as u64;

    let rt = Runtime::new(NPES)
        .backend(Backend::Sim(MachineModel::local(NPES)))
        .meter_compute(false);
    let r = run_taskbench(params.clone(), rt);
    assert_eq!((r.checksum, r.tasks), (oracle, tasks), "result mismatch");

    let actual_ns = r.report.time.as_nanos() as u64;
    println!("pattern   : {}", pattern.name());
    println!(
        "grid      : {} columns x {} steps on {NPES} PEs",
        params.width, params.steps
    );
    println!("checksum  : {} ({} tasks)", r.checksum, r.tasks);
    println!(
        "messages  : {} ({} bytes crossed PEs)",
        r.report.msgs, r.report.bytes
    );
    println!(
        "efficiency: {:.1}% at {} ns grain (ideal {ideal_ns} ns, actual {actual_ns} ns)",
        100.0 * ideal_ns as f64 / actual_ns.max(1) as f64,
        params.grain_ns
    );
    let inline: u64 = r.report.pe_stats.iter().map(|p| p.inline_payloads).sum();
    let disp: u64 = r.report.pe_stats.iter().map(|p| p.dispatch_hits).sum();
    println!("fast paths: {inline} payloads inlined, {disp} dispatch-cache hits");
}
