//! `charm-perf` — analyze charm-rs trace artifacts from the command line.
//!
//! ```text
//! charm-perf summary   <file>           # charm-summary v1 artifact
//! charm-perf telemetry <file> [--top N] # charm-telemetry v1 artifact
//! charm-perf chrome    <file> [--top N] # Chrome trace-event JSON
//! ```

#![forbid(unsafe_code)]

use std::process::ExitCode;

const USAGE: &str = "usage: charm-perf <summary|telemetry|chrome> <file> [--top N]";

fn run() -> Result<String, String> {
    let mut args = std::env::args().skip(1);
    let mode = args.next().ok_or(USAGE)?;
    let path = args.next().ok_or(USAGE)?;
    let mut top_n = 10usize;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--top" => {
                top_n = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--top needs a positive integer")?;
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    let text = std::fs::read_to_string(&path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    match mode.as_str() {
        "summary" => Ok(charm_perf::summary_report(&charm_perf::parse_summary(
            &text,
        )?)),
        "telemetry" => Ok(charm_perf::telemetry_report(
            &charm_perf::parse_telemetry(&text)?,
            top_n,
        )),
        "chrome" => Ok(charm_perf::chrome_report(
            &charm_perf::parse_chrome(&text)?,
            top_n,
        )),
        other => Err(format!("unknown mode `{other}`\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("charm-perf: {e}");
            ExitCode::FAILURE
        }
    }
}
