//! # charm-perf — post-mortem analyzer for charm-rs trace artifacts
//!
//! Projections ships with an analyzer GUI; this is the charm-rs text
//! equivalent. It ingests the three artifact kinds the runtime exports and
//! turns them into load-imbalance reports, hot-chare tables, and text
//! timelines:
//!
//! * **`charm-summary v1`** ([`parse_summary`]) — the bounded time-binned
//!   profile written by `TraceReport::write_summary_artifact` at
//!   `TraceLevel::Summary`. Per PE: wall/busy/idle/overhead totals plus one
//!   bin per wall-clock quantum. [`summary_report`] re-derives the per-PE
//!   totals from the bins and cross-checks them against the header (the
//!   runtime's `RunReport::pe_stats` values), then prints per-quantum
//!   max/avg utilization and the imbalance factor λ = max/avg.
//! * **`charm-telemetry v1`** ([`parse_telemetry`]) — the in-band metric
//!   frames reduced over the PE spanning tree at a quiescence cadence
//!   (`Runtime::telemetry`). [`telemetry_report`] prints the utilization
//!   time series, queue depths, p50/p99 execution and latency quantiles,
//!   and the top-K hot chares of the final frame.
//! * **Chrome trace JSON** ([`parse_chrome`]) — full event capture.
//!   [`chrome_report`] sums `"X"` span durations per track into busy/idle
//!   time, ranks entry methods by total duration, and surfaces the
//!   `charm_stats` health metadata (ring drops, encode-slab hit rate).
//!
//! Everything is line-oriented plain text in and out, so artifacts survive
//! copy-paste through job logs. The parsers are strict: unknown line heads
//! and malformed fields are errors, not skips — a truncated artifact should
//! fail loudly, not silently produce a rosier report.

#![forbid(unsafe_code)]

use charm_trace::json::{self, Value};
use charm_trace::Hist;

/// One time bin of a summary-mode profile (`bin` line).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SummaryBinRec {
    /// Entry-execution time in this quantum (ns).
    pub busy_ns: u64,
    /// Idle wait in this quantum (ns).
    pub idle_ns: u64,
    /// Runtime overhead in this quantum (ns).
    pub overhead_ns: u64,
    /// Entry activations in this quantum.
    pub entries: u64,
    /// Messages processed in this quantum.
    pub msgs: u64,
    /// Payload bytes handled in this quantum.
    pub bytes: u64,
}

/// One PE's summary-mode profile (`pe` header + its `bin` lines).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SummaryPe {
    /// PE number.
    pub pe: usize,
    /// Wall time the PE observed (ns).
    pub wall_ns: u64,
    /// Quantum width (ns per bin before any pairwise merges).
    pub quantum_ns: u64,
    /// Pairwise bin merges performed to stay within the bin budget.
    pub merges: u64,
    /// Header busy total — equals the runtime's `PePerf::busy_ns`.
    pub busy_ns: u64,
    /// Header idle total — equals the runtime's `PePerf::idle_ns`.
    pub idle_ns: u64,
    /// Header overhead total — equals the runtime's `PePerf::overhead_ns`.
    pub overhead_ns: u64,
    /// The time bins, oldest first.
    pub bins: Vec<SummaryBinRec>,
}

impl SummaryPe {
    /// Re-derive the per-class totals by summing the bins.
    pub fn bin_totals(&self) -> (u64, u64, u64) {
        let mut t = (0, 0, 0);
        for b in &self.bins {
            t.0 += b.busy_ns;
            t.1 += b.idle_ns;
            t.2 += b.overhead_ns;
        }
        t
    }

    /// Busy fraction of attributed time for bin `i`.
    pub fn bin_util(&self, i: usize) -> f64 {
        let b = &self.bins[i];
        let wall = b.busy_ns + b.idle_ns + b.overhead_ns;
        if wall == 0 {
            0.0
        } else {
            b.busy_ns as f64 / wall as f64
        }
    }
}

/// One telemetry frame parsed back from a `charm-telemetry v1` artifact.
///
/// The histograms are rebuilt by replaying each bucket's lower bound
/// `count` times into a fresh [`Hist`] on the same grid, so quantile
/// queries keep the recorded bounded relative error (exact min/max inside
/// the extreme buckets are not persisted).
#[derive(Debug, Clone, Default)]
pub struct FrameRec {
    /// Sweep sequence number.
    pub seq: u64,
    /// PEs merged into the frame.
    pub pes: u64,
    /// Root PE-clock timestamp of the sample (ns).
    pub at_ns: u64,
    /// Cluster-wide busy total (ns).
    pub busy_ns: u64,
    /// Cluster-wide idle total (ns).
    pub idle_ns: u64,
    /// Cluster-wide overhead total (ns).
    pub overhead_ns: u64,
    /// Lowest per-PE utilization.
    pub util_min: f64,
    /// Highest per-PE utilization.
    pub util_max: f64,
    /// Sum of per-PE utilizations (avg = sum / pes).
    pub util_sum: f64,
    /// Sum of squared per-PE utilizations (for σ).
    pub util_sumsq: f64,
    /// Messages sent so far.
    pub msgs_sent: u64,
    /// Messages processed so far.
    pub msgs_processed: u64,
    /// Entry activations so far.
    pub entries: u64,
    /// Remote payload bytes so far.
    pub bytes_remote: u64,
    /// Buffered messages at the sample point.
    pub queue: u64,
    /// High-water buffered-message mark.
    pub queue_max: u64,
    /// Entry execution-time histogram (ns).
    pub exec: Hist,
    /// Send→deliver latency histogram (ns).
    pub latency: Hist,
    /// Hot chares, heaviest first: (label, weight_ns, max_overestimate).
    pub top: Vec<(String, u64, u64)>,
}

impl FrameRec {
    /// Mean per-PE utilization.
    pub fn util_avg(&self) -> f64 {
        if self.pes == 0 {
            0.0
        } else {
            self.util_sum / self.pes as f64
        }
    }

    /// Population standard deviation of per-PE utilization.
    pub fn util_sigma(&self) -> f64 {
        if self.pes == 0 {
            return 0.0;
        }
        let n = self.pes as f64;
        let mean = self.util_sum / n;
        (self.util_sumsq / n - mean * mean).max(0.0).sqrt()
    }
}

fn field<'a>(tok: &'a str, key: &str) -> Result<&'a str, String> {
    match tok.split_once('=') {
        Some((k, v)) if k == key => Ok(v),
        _ => Err(format!("expected `{key}=...`, got `{tok}`")),
    }
}

fn num<T: std::str::FromStr>(tok: &str, key: &str) -> Result<T, String> {
    field(tok, key)?
        .parse()
        .map_err(|_| format!("bad numeric field `{tok}`"))
}

/// Parse a `charm-summary v1` artifact.
pub fn parse_summary(text: &str) -> Result<Vec<SummaryPe>, String> {
    let mut lines = text.lines();
    if lines.next() != Some("charm-summary v1") {
        return Err("not a charm-summary v1 artifact".into());
    }
    let mut pes: Vec<SummaryPe> = Vec::new();
    for (no, line) in lines.enumerate() {
        let no = no + 2;
        let mut t = line.split_whitespace();
        match t.next() {
            Some("pe") => {
                let mut p = SummaryPe {
                    pe: t
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or(format!("line {no}: bad pe number"))?,
                    ..SummaryPe::default()
                };
                let err = |e| format!("line {no}: {e}");
                p.wall_ns = num(t.next().unwrap_or(""), "wall_ns").map_err(err)?;
                p.quantum_ns = num(t.next().unwrap_or(""), "quantum_ns").map_err(err)?;
                p.merges = num(t.next().unwrap_or(""), "merges").map_err(err)?;
                let bins: usize = num(t.next().unwrap_or(""), "bins").map_err(err)?;
                p.busy_ns = num(t.next().unwrap_or(""), "busy_ns").map_err(err)?;
                p.idle_ns = num(t.next().unwrap_or(""), "idle_ns").map_err(err)?;
                p.overhead_ns = num(t.next().unwrap_or(""), "overhead_ns").map_err(err)?;
                p.bins.reserve(bins);
                pes.push(p);
            }
            Some("bin") => {
                let p = pes
                    .last_mut()
                    .ok_or(format!("line {no}: bin before any pe header"))?;
                let idx: usize = t
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or(format!("line {no}: bad bin index"))?;
                if idx != p.bins.len() {
                    return Err(format!(
                        "line {no}: bin index {idx} out of order (expected {})",
                        p.bins.len()
                    ));
                }
                let err = |e| format!("line {no}: {e}");
                p.bins.push(SummaryBinRec {
                    busy_ns: num(t.next().unwrap_or(""), "busy_ns").map_err(err)?,
                    idle_ns: num(t.next().unwrap_or(""), "idle_ns").map_err(err)?,
                    overhead_ns: num(t.next().unwrap_or(""), "overhead_ns").map_err(err)?,
                    entries: num(t.next().unwrap_or(""), "entries").map_err(err)?,
                    msgs: num(t.next().unwrap_or(""), "msgs").map_err(err)?,
                    bytes: num(t.next().unwrap_or(""), "bytes").map_err(err)?,
                });
            }
            None => continue,
            Some(head) => return Err(format!("line {no}: unknown line head `{head}`")),
        }
    }
    Ok(pes)
}

/// Parse a `charm-telemetry v1` artifact.
pub fn parse_telemetry(text: &str) -> Result<Vec<FrameRec>, String> {
    let mut lines = text.lines();
    if lines.next() != Some("charm-telemetry v1") {
        return Err("not a charm-telemetry v1 artifact".into());
    }
    let mut frames: Vec<FrameRec> = Vec::new();
    for (no, line) in lines.enumerate() {
        let no = no + 2;
        let mut t = line.split_whitespace();
        let err = |e| format!("line {no}: {e}");
        match t.next() {
            Some("frame") => {
                let mut f = FrameRec::default();
                f.seq = num(t.next().unwrap_or(""), "seq").map_err(err)?;
                f.pes = num(t.next().unwrap_or(""), "pes").map_err(err)?;
                f.at_ns = num(t.next().unwrap_or(""), "at_ns").map_err(err)?;
                f.busy_ns = num(t.next().unwrap_or(""), "busy_ns").map_err(err)?;
                f.idle_ns = num(t.next().unwrap_or(""), "idle_ns").map_err(err)?;
                f.overhead_ns = num(t.next().unwrap_or(""), "overhead_ns").map_err(err)?;
                f.util_min = num(t.next().unwrap_or(""), "util_min").map_err(err)?;
                f.util_max = num(t.next().unwrap_or(""), "util_max").map_err(err)?;
                f.util_sum = num(t.next().unwrap_or(""), "util_sum").map_err(err)?;
                f.util_sumsq = num(t.next().unwrap_or(""), "util_sumsq").map_err(err)?;
                f.msgs_sent = num(t.next().unwrap_or(""), "msgs_sent").map_err(err)?;
                f.msgs_processed = num(t.next().unwrap_or(""), "msgs_processed").map_err(err)?;
                f.entries = num(t.next().unwrap_or(""), "entries").map_err(err)?;
                f.bytes_remote = num(t.next().unwrap_or(""), "bytes_remote").map_err(err)?;
                f.queue = num(t.next().unwrap_or(""), "queue").map_err(err)?;
                f.queue_max = num(t.next().unwrap_or(""), "queue_max").map_err(err)?;
                frames.push(f);
            }
            Some("hist") => {
                let f = frames
                    .last_mut()
                    .ok_or(format!("line {no}: hist before any frame"))?;
                let which = t.next().ok_or(format!("line {no}: hist missing name"))?;
                let sub_bits: u32 = num(t.next().unwrap_or(""), "sub_bits").map_err(err)?;
                let mut h = Hist::new(sub_bits);
                for bucket in t {
                    let (lo, n) = bucket
                        .split_once(':')
                        .ok_or(format!("line {no}: bad bucket `{bucket}`"))?;
                    let lo: u64 = lo
                        .parse()
                        .map_err(|_| format!("line {no}: bad bucket `{bucket}`"))?;
                    let n: u64 = n
                        .parse()
                        .map_err(|_| format!("line {no}: bad bucket `{bucket}`"))?;
                    // A bucket's lower bound re-buckets to itself, so the
                    // rebuilt histogram sits on the original grid.
                    h.record_n(lo, n);
                }
                match which {
                    "exec" => f.exec = h,
                    "latency" => f.latency = h,
                    other => return Err(format!("line {no}: unknown hist `{other}`")),
                }
            }
            Some("top") => {
                let f = frames
                    .last_mut()
                    .ok_or(format!("line {no}: top before any frame"))?;
                let label = field(t.next().unwrap_or(""), "label")
                    .map_err(err)?
                    .to_string();
                let weight = num(t.next().unwrap_or(""), "weight").map_err(err)?;
                let e = num(t.next().unwrap_or(""), "err").map_err(err)?;
                f.top.push((label, weight, e));
            }
            None => continue,
            Some(head) => return Err(format!("line {no}: unknown line head `{head}`")),
        }
    }
    Ok(frames)
}

/// One track's span totals from a Chrome trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChromeTrack {
    /// Track id (`tid` — the PE number).
    pub tid: u64,
    /// Total `"X"` span time with category `entry` (µs).
    pub entry_us: f64,
    /// Total `"X"` span time with category `idle` (µs).
    pub idle_us: f64,
    /// `charm_stats` metadata: event-ring drops on this PE.
    pub events_dropped: u64,
    /// `charm_stats` metadata: encode-slab hit rate on this PE.
    pub slab_hit_rate: f64,
}

/// A Chrome trace reduced to per-track totals plus a per-entry-name
/// duration ranking (name, total µs, span count), heaviest first.
#[derive(Debug, Clone, Default)]
pub struct ChromeProfile {
    /// Per-PE tracks in tid order.
    pub tracks: Vec<ChromeTrack>,
    /// Entry spans ranked by total duration.
    pub entries: Vec<(String, f64, u64)>,
}

/// Parse Chrome trace-event JSON (array form, as written by
/// `TraceReport::write_chrome`) into per-track totals.
pub fn parse_chrome(text: &str) -> Result<ChromeProfile, String> {
    let doc = json::parse(text)?;
    let arr = doc.as_arr().ok_or("chrome trace is not a JSON array")?;
    let mut tracks: std::collections::BTreeMap<u64, ChromeTrack> = Default::default();
    let mut entries: std::collections::BTreeMap<String, (f64, u64)> = Default::default();
    for ev in arr {
        let tid = ev.get("tid").and_then(Value::as_f64).unwrap_or(0.0) as u64;
        let ph = ev.get("ph").and_then(Value::as_str).unwrap_or("");
        let name = ev.get("name").and_then(Value::as_str).unwrap_or("");
        let track = tracks.entry(tid).or_insert_with(|| ChromeTrack {
            tid,
            ..ChromeTrack::default()
        });
        match ph {
            "M" if name == "charm_stats" => {
                if let Some(args) = ev.get("args") {
                    track.events_dropped = args
                        .get("events_dropped")
                        .and_then(Value::as_f64)
                        .unwrap_or(0.0) as u64;
                    track.slab_hit_rate = args
                        .get("slab_hit_rate")
                        .and_then(Value::as_f64)
                        .unwrap_or(0.0);
                }
            }
            "X" => {
                let dur = ev.get("dur").and_then(Value::as_f64).unwrap_or(0.0);
                match ev.get("cat").and_then(Value::as_str) {
                    Some("entry") => {
                        track.entry_us += dur;
                        let e = entries.entry(name.to_string()).or_insert((0.0, 0));
                        e.0 += dur;
                        e.1 += 1;
                    }
                    Some("idle") => track.idle_us += dur,
                    _ => {}
                }
            }
            _ => {}
        }
    }
    let mut ranked: Vec<(String, f64, u64)> =
        entries.into_iter().map(|(n, (d, c))| (n, d, c)).collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    Ok(ChromeProfile {
        tracks: tracks.into_values().collect(),
        entries: ranked,
    })
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Utilization ramp for the text timeline: ten steps from blank to full.
fn util_glyph(u: f64) -> char {
    const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    RAMP[((u * 10.0) as usize).min(9)]
}

/// Load-imbalance report over a summary-mode profile: cross-checks each
/// PE's bin totals against its header, then prints per-quantum max/avg
/// utilization, σ, and the imbalance factor λ = max/avg (the Projections
/// measure of how much a perfect balancer could save).
pub fn summary_report(pes: &[SummaryPe]) -> String {
    let mut out = String::new();
    if pes.is_empty() {
        out.push_str("summary: no PEs at summary level\n");
        return out;
    }
    out.push_str("PE  wall_ms  busy_ms  idle_ms  ovhd_ms  util   bins merges totals\n");
    for p in pes {
        let (b, i, o) = p.bin_totals();
        let ok = b == p.busy_ns && i == p.idle_ns && o == p.overhead_ns;
        let wall = p.busy_ns + p.idle_ns + p.overhead_ns;
        let util = if wall == 0 {
            0.0
        } else {
            p.busy_ns as f64 / wall as f64
        };
        out.push_str(&format!(
            "{:<3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>5.1}% {:>5} {:>6} {}\n",
            p.pe,
            ms(p.wall_ns),
            ms(p.busy_ns),
            ms(p.idle_ns),
            ms(p.overhead_ns),
            100.0 * util,
            p.bins.len(),
            p.merges,
            if ok { "exact" } else { "MISMATCH" },
        ));
    }
    let quanta = pes.iter().map(|p| p.bins.len()).max().unwrap_or(0);
    if quanta > 0 {
        out.push_str("\nquantum  util_max  util_avg  sigma   lambda\n");
        for q in 0..quanta {
            let utils: Vec<f64> = pes
                .iter()
                .filter(|p| q < p.bins.len())
                .map(|p| p.bin_util(q))
                .collect();
            let n = utils.len() as f64;
            let max = utils.iter().cloned().fold(0.0, f64::max);
            let avg = utils.iter().sum::<f64>() / n;
            let sigma = (utils.iter().map(|u| (u - avg) * (u - avg)).sum::<f64>() / n).sqrt();
            let lambda = if avg > 0.0 { max / avg } else { 0.0 };
            out.push_str(&format!(
                "{:<8} {:>7.1}% {:>8.1}% {:>6.3} {:>7.3}\n",
                q,
                100.0 * max,
                100.0 * avg,
                sigma,
                lambda,
            ));
        }
        out.push('\n');
        out.push_str(&timeline(pes));
    }
    out
}

/// Text timeline: one row per PE, one utilization glyph per quantum.
pub fn timeline(pes: &[SummaryPe]) -> String {
    let mut out = String::from("timeline (utilization per quantum; ' '=0% .. '@'=100%)\n");
    for p in pes {
        out.push_str(&format!("PE {:<3} |", p.pe));
        for q in 0..p.bins.len() {
            out.push(util_glyph(p.bin_util(q)));
        }
        out.push_str("|\n");
    }
    out
}

/// Telemetry time-series report: per-frame utilization spread, queue
/// depths, exec/latency quantiles, then the final frame's hot chares.
pub fn telemetry_report(frames: &[FrameRec], top_n: usize) -> String {
    let mut out = String::new();
    if frames.is_empty() {
        out.push_str("telemetry: no frames\n");
        return out;
    }
    out.push_str(
        "seq  at_ms      util_avg util_min util_max sigma  queue qmax  exec_p50 exec_p99 lat_p50 lat_p99\n",
    );
    for f in frames {
        let q = |h: &Hist, q: f64| h.quantile(q).unwrap_or(0);
        out.push_str(&format!(
            "{:<4} {:>10.3} {:>7.1}% {:>7.1}% {:>7.1}% {:>6.3} {:>5} {:>4} {:>8} {:>8} {:>7} {:>7}\n",
            f.seq,
            ms(f.at_ns),
            100.0 * f.util_avg(),
            100.0 * f.util_min,
            100.0 * f.util_max,
            f.util_sigma(),
            f.queue,
            f.queue_max,
            q(&f.exec, 0.5),
            q(&f.exec, 0.99),
            q(&f.latency, 0.5),
            q(&f.latency, 0.99),
        ));
    }
    let last = frames.last().expect("non-empty");
    if !last.top.is_empty() {
        out.push_str(&format!("\nhot chares (final frame, top {top_n}):\n"));
        for (label, weight, err) in last.top.iter().take(top_n) {
            out.push_str(&format!(
                "  {label:<24} {:>10.3} ms (+/- {:.3})\n",
                ms(*weight),
                ms(*err),
            ));
        }
    }
    out
}

/// Chrome-trace report: per-track span totals plus the entry ranking and
/// capture-health metadata.
pub fn chrome_report(profile: &ChromeProfile, top_n: usize) -> String {
    let mut out = String::from("PE  entry_ms  idle_ms  dropped slab_hit\n");
    for t in &profile.tracks {
        out.push_str(&format!(
            "{:<3} {:>8.3} {:>8.3} {:>8} {:>7.1}%\n",
            t.tid,
            t.entry_us / 1e3,
            t.idle_us / 1e3,
            t.events_dropped,
            100.0 * t.slab_hit_rate,
        ));
    }
    if !profile.entries.is_empty() {
        out.push_str(&format!("\nentries by total time (top {top_n}):\n"));
        for (name, dur, count) in profile.entries.iter().take(top_n) {
            out.push_str(&format!("  {name:<32} {:>10.3} ms  x{count}\n", dur / 1e3));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_summary() -> String {
        concat!(
            "charm-summary v1\n",
            "pe 0 wall_ns=3000 quantum_ns=1000 merges=0 bins=3 busy_ns=1500 idle_ns=900 overhead_ns=600\n",
            "bin 0 busy_ns=1000 idle_ns=0 overhead_ns=0 entries=2 msgs=2 bytes=64\n",
            "bin 1 busy_ns=500 idle_ns=400 overhead_ns=100 entries=1 msgs=1 bytes=32\n",
            "bin 2 busy_ns=0 idle_ns=500 overhead_ns=500 entries=0 msgs=0 bytes=0\n",
            "pe 1 wall_ns=3000 quantum_ns=1000 merges=1 bins=1 busy_ns=3000 idle_ns=0 overhead_ns=0\n",
            "bin 0 busy_ns=3000 idle_ns=0 overhead_ns=0 entries=4 msgs=4 bytes=128\n",
        )
        .to_string()
    }

    #[test]
    fn summary_round_trip_and_totals() {
        let pes = parse_summary(&sample_summary()).expect("parses");
        assert_eq!(pes.len(), 2);
        assert_eq!(pes[0].bins.len(), 3);
        assert_eq!(pes[0].bin_totals(), (1500, 900, 600));
        assert_eq!(pes[1].merges, 1);
        let report = summary_report(&pes);
        assert!(report.contains("exact"), "totals cross-check: {report}");
        assert!(!report.contains("MISMATCH"));
        assert!(report.contains("lambda"));
        assert!(report.contains("timeline"));
    }

    #[test]
    fn summary_rejects_corruption() {
        assert!(parse_summary("nope\n").is_err());
        let mut bad = sample_summary();
        bad.push_str("mystery 1 2 3\n");
        assert!(parse_summary(&bad)
            .unwrap_err()
            .contains("unknown line head"));
        let gap =
            "charm-summary v1\nbin 0 busy_ns=1 idle_ns=0 overhead_ns=0 entries=0 msgs=0 bytes=0\n";
        assert!(parse_summary(gap).unwrap_err().contains("before any pe"));
    }

    #[test]
    fn summary_report_flags_total_mismatch() {
        let mut pes = parse_summary(&sample_summary()).expect("parses");
        pes[0].busy_ns += 1;
        assert!(summary_report(&pes).contains("MISMATCH"));
    }

    #[test]
    fn telemetry_round_trip_via_trace_writer() {
        use charm_trace::MetricFrame;
        let mut f = MetricFrame::default();
        f.seq = 3;
        f.pes = 4;
        f.busy_ns = 1000;
        f.util_min = 0.25;
        f.util_max = 0.75;
        f.util_sum = 2.0;
        f.util_sumsq = 1.125;
        f.queue_depth = 7;
        for v in [10, 100, 1000, 10_000] {
            f.exec.record(v);
        }
        f.top.push(charm_trace::TopItem {
            label: "Worker[3]".into(),
            weight: 900,
            err: 0,
        });
        let text = charm_trace::frames_artifact(&[f.clone()]);
        let frames = parse_telemetry(&text).expect("parses");
        assert_eq!(frames.len(), 1);
        let r = &frames[0];
        assert_eq!((r.seq, r.pes, r.busy_ns, r.queue), (3, 4, 1000, 7));
        assert!((r.util_avg() - 0.5).abs() < 1e-9);
        assert_eq!(r.exec.count(), 4);
        // Replayed bucket lows stay within the recorded relative error.
        let p50 = r.exec.quantile(0.5).expect("quantile") as f64;
        let orig = f.exec.quantile(0.5).expect("quantile") as f64;
        let tol = f.exec.max_rel_error() * 2.0;
        assert!((p50 - orig).abs() <= orig * tol + 1.0, "{p50} vs {orig}");
        assert_eq!(r.top, vec![("Worker[3]".to_string(), 900, 0)]);
        let report = telemetry_report(&frames, 5);
        assert!(report.contains("Worker[3]"));
        assert!(report.contains("exec_p50"));
    }

    #[test]
    fn telemetry_rejects_corruption() {
        assert!(parse_telemetry("charm-summary v1\n").is_err());
        let orphan = "charm-telemetry v1\nhist exec sub_bits=5 0:1\n";
        assert!(parse_telemetry(orphan)
            .unwrap_err()
            .contains("before any frame"));
        let text = charm_trace::frames_artifact(&[charm_trace::MetricFrame::default()]);
        let broken = text.replace("busy_ns=", "busy_ns=x");
        assert!(parse_telemetry(&broken).is_err());
    }

    #[test]
    fn chrome_profile_sums_spans_and_reads_stats() {
        let trace = r#"[
            {"ph":"M","pid":1,"tid":0,"name":"thread_name","args":{"name":"PE 0"}},
            {"ph":"M","pid":1,"tid":0,"name":"charm_stats","args":{"events_dropped":5,"slab_hit_rate":0.8}},
            {"ph":"X","pid":1,"tid":0,"ts":0.0,"dur":10.5,"name":"Worker::receive","cat":"entry"},
            {"ph":"X","pid":1,"tid":0,"ts":20.0,"dur":4.5,"name":"Worker::receive","cat":"entry"},
            {"ph":"X","pid":1,"tid":0,"ts":30.0,"dur":7.0,"name":"idle","cat":"idle"},
            {"ph":"i","pid":1,"tid":0,"ts":40.0,"s":"t","name":"mark","cat":"mark"}
        ]"#;
        let p = parse_chrome(trace).expect("parses");
        assert_eq!(p.tracks.len(), 1);
        let t = &p.tracks[0];
        assert!((t.entry_us - 15.0).abs() < 1e-9);
        assert!((t.idle_us - 7.0).abs() < 1e-9);
        assert_eq!(t.events_dropped, 5);
        assert_eq!(p.entries, vec![("Worker::receive".to_string(), 15.0, 2)]);
        let report = chrome_report(&p, 3);
        assert!(report.contains("Worker::receive"));
        assert!(report.contains("80.0%"));
        assert!(parse_chrome("{}").is_err());
    }

    #[test]
    fn timeline_glyphs_cover_the_ramp() {
        assert_eq!(util_glyph(0.0), ' ');
        assert_eq!(util_glyph(0.55), '+');
        assert_eq!(util_glyph(1.0), '@');
    }
}
