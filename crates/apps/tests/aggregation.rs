//! Mini-apps under TRAM-style aggregation (`--features analyze`,
//! DESIGN.md §9): the 3D stencil and histogram sort must compute the same
//! results with per-destination coalescing on, under permuted delivery
//! schedules, with the dynamic race detector armed throughout.

#![cfg(feature = "analyze")]

use charm_apps::histo::{run_histo, HistoParams};
use charm_apps::stencil3d::{charm::run_charm, StencilParams};
use charm_core::{AggCfg, Backend, Runtime};
use charm_sim::MachineModel;

fn sim(npes: usize) -> Runtime {
    Runtime::new(npes)
        .backend(Backend::Sim(MachineModel::local(npes)))
        .meter_compute(false)
}

fn batches(report: &charm_core::RunReport) -> u64 {
    report.pe_stats.iter().map(|p| p.batches_sent).sum()
}

/// Histogram sort: every observable is an integer (key count, wrapping key
/// sum, sortedness), so an aggregated run must be *bit-identical* to the
/// aggregation-off baseline under each of 16 permuted schedules — and the
/// armed detector must stay silent.
#[test]
fn histo_bit_identical_with_aggregation_under_permuted_schedules() {
    let params = HistoParams::small();
    let (rt, probe) = sim(4).analyze_probe();
    let base = run_histo(params.clone(), rt);
    assert!(base.sorted, "baseline did not sort");
    assert!(
        probe.findings().is_empty(),
        "baseline findings: {:?}",
        probe.findings()
    );
    assert_eq!(batches(&base.report), 0, "aggregation-off sent batches");

    for seed in [None].into_iter().chain((1..=16).map(Some)) {
        let (mut rt, probe) = sim(4).analyze_probe();
        rt = rt.aggregation(AggCfg::count(8));
        if let Some(s) = seed {
            rt = rt.permute_schedule(s);
        }
        let r = run_histo(params.clone(), rt);
        assert!(
            probe.findings().is_empty(),
            "seed {seed:?}: detector findings: {:?}",
            probe.findings()
        );
        assert_eq!(
            (r.total_keys, r.key_sum, r.sorted),
            (base.total_keys, base.key_sum, base.sorted),
            "seed {seed:?}: aggregated histo diverged from baseline"
        );
        assert_eq!(
            r.report.entries, base.report.entries,
            "seed {seed:?}: logical entry count changed under aggregation"
        );
        assert!(batches(&r.report) > 0, "seed {seed:?}: no batches formed");
    }
}

/// 3D stencil: the physics is deterministic, but the final checksum flows
/// through an incremental floating-point reduction that combines partials
/// in arrival order, so (exactly like the rest of the stencil suite) the
/// comparison is to 1e-9 relative tolerance rather than to the bit. Entry
/// counts are integers and must match exactly.
#[test]
fn stencil_matches_baseline_with_aggregation_under_permuted_schedules() {
    let params = StencilParams::new([8, 8, 8], [2, 2, 2], 6);
    let (rt, probe) = sim(4).analyze_probe();
    let base = run_charm(params.clone(), rt);
    assert!(
        probe.findings().is_empty(),
        "baseline findings: {:?}",
        probe.findings()
    );
    assert_eq!(batches(&base.report), 0, "aggregation-off sent batches");

    let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()));
    for seed in [None].into_iter().chain((1..=16).map(Some)) {
        let (mut rt, probe) = sim(4).analyze_probe();
        rt = rt.aggregation(AggCfg::count(8));
        if let Some(s) = seed {
            rt = rt.permute_schedule(s);
        }
        let r = run_charm(params.clone(), rt);
        assert!(
            probe.findings().is_empty(),
            "seed {seed:?}: detector findings: {:?}",
            probe.findings()
        );
        assert!(
            close(r.checksum.0, base.checksum.0) && close(r.checksum.1, base.checksum.1),
            "seed {seed:?}: aggregated stencil {:?} vs baseline {:?}",
            r.checksum,
            base.checksum
        );
        assert_eq!(
            r.report.entries, base.report.entries,
            "seed {seed:?}: logical entry count changed under aggregation"
        );
        assert!(batches(&r.report) > 0, "seed {seed:?}: no batches formed");
    }
}
