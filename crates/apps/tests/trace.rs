//! Acceptance test for the tracing subsystem (ISSUE: observability):
//! a 2-PE stencil3d run under full capture must yield a parseable Chrome
//! trace with one track per PE and a rich event mix, and the per-PE
//! busy/idle/overhead decomposition must account for the wall clock.

use charm_apps::stencil3d::{charm::run_charm, StencilParams};
use charm_core::{Runtime, TraceConfig};
use charm_sim::MachineModel;
use charm_trace::json::{parse, Value};

const NPES: usize = 2;

fn traced_stencil() -> charm_core::RunReport {
    let params = StencilParams::new([8, 8, 8], [2, 2, 1], 4);
    let rt = Runtime::new(NPES)
        .simulated(MachineModel::local(NPES))
        .trace(TraceConfig::full());
    run_charm(params, rt).report
}

#[test]
fn stencil_trace_decomposes_and_exports() {
    let report = traced_stencil();
    assert!(report.clean_exit);

    // --- decomposition: busy + idle + overhead within 5% of wall, per PE.
    assert_eq!(report.pe_stats.len(), NPES);
    for p in &report.pe_stats {
        assert!(p.wall_ns > 0, "PE {} never ticked", p.pe);
        let sum = p.busy_ns + p.idle_ns + p.overhead_ns;
        let gap = (sum as i128 - p.wall_ns as i128).unsigned_abs() as u64;
        assert!(
            gap * 20 <= p.wall_ns,
            "PE {}: busy {} + idle {} + overhead {} = {} strays >5% from wall {}",
            p.pe,
            p.busy_ns,
            p.idle_ns,
            p.overhead_ns,
            sum,
            p.wall_ns
        );
        assert!(
            p.busy_ns > 0,
            "PE {} ran stencil steps, busy must be > 0",
            p.pe
        );
    }

    // --- event rings are well-formed and varied.
    let trace = report.trace.expect("full capture must carry a trace");
    trace.validate().expect("event rings must be well-formed");
    let kinds = trace.event_kind_names();
    assert!(
        kinds.len() >= 6,
        "expected ≥6 distinct event kinds in a stencil run, got {kinds:?}"
    );

    // --- Chrome export parses and names one track per PE.
    let doc = parse(&trace.chrome_json()).expect("exporter must emit valid JSON");
    let arr = doc.as_arr().expect("top level is an array");
    let track_names: Vec<&str> = arr
        .iter()
        .filter(|o| o.get("name").and_then(Value::as_str) == Some("thread_name"))
        .filter_map(|o| {
            o.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Value::as_str)
        })
        .collect();
    assert_eq!(track_names.len(), NPES, "one metadata track per PE");
    for pe in 0..NPES {
        assert!(track_names.contains(&format!("PE {pe}").as_str()));
    }
    // Entry spans are complete events on some PE's track.
    assert!(arr.iter().any(|o| {
        o.get("ph").and_then(Value::as_str) == Some("X")
            && o.get("cat").and_then(Value::as_str) == Some("entry")
    }));
}

#[test]
fn summary_reports_every_pe_and_an_entry_table() {
    let report = traced_stencil();
    let trace = report.trace.expect("full capture must carry a trace");
    let text = trace.summary();
    for pe in 0..NPES {
        let row = format!("\n{pe:>4}  ");
        assert!(text.contains(&row), "summary lacks a row for PE {pe}");
    }
    assert!(
        text.contains("Block") || text.contains("stencil"),
        "entry table should name the stencil chare type:\n{text}"
    );
}
