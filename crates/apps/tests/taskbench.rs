//! Task Bench end-to-end: every dependency pattern against the sequential
//! oracle, on both backends, both dispatch modes, fast paths on and off.

use charm_apps::taskbench::{expected, run_taskbench, Pattern, TaskBenchParams};
use charm_core::{Backend, DispatchMode, Runtime};
use charm_sim::MachineModel;

fn sim(npes: usize) -> Runtime {
    Runtime::new(npes)
        .backend(Backend::Sim(MachineModel::local(npes)))
        .meter_compute(false)
}

#[test]
fn every_pattern_matches_the_oracle_on_sim() {
    for pattern in Pattern::ALL {
        let params = TaskBenchParams::small_with(pattern);
        let (sum, tasks) = expected(&params);
        let r = run_taskbench(params, sim(4));
        assert_eq!((r.checksum, r.tasks), (sum, tasks), "{pattern:?}");
    }
}

#[test]
fn threads_backend_matches_fast_on_and_off() {
    for pattern in Pattern::ALL {
        let mut params = TaskBenchParams::small_with(pattern);
        params.grain_ns = 0; // threads charge real time; keep the test quick
        let (sum, tasks) = expected(&params);
        let on = run_taskbench(params.clone(), Runtime::new(3).fast_paths(true));
        let off = run_taskbench(params.clone(), Runtime::new(3).fast_paths(false));
        assert_eq!((on.checksum, on.tasks), (sum, tasks), "{pattern:?} fast on");
        assert_eq!(
            (off.checksum, off.tasks),
            (sum, tasks),
            "{pattern:?} fast off"
        );
    }
}

#[test]
fn dynamic_dispatch_matches_the_oracle() {
    let params = TaskBenchParams::small_with(Pattern::Fft);
    let (sum, tasks) = expected(&params);
    let r = run_taskbench(params, sim(2).dispatch(DispatchMode::Dynamic));
    assert_eq!((r.checksum, r.tasks), (sum, tasks));
}

#[test]
fn wider_random_grid_executes_every_task() {
    let params = TaskBenchParams {
        pattern: Pattern::Random,
        width: 32,
        steps: 10,
        grain_ns: 500,
        fanout: 4,
        seed: 11,
    };
    let (sum, tasks) = expected(&params);
    let r = run_taskbench(params, sim(4));
    assert_eq!((r.checksum, r.tasks), (sum, tasks));
    assert_eq!(tasks, 320);
}

#[test]
fn fast_path_counters_show_up_in_pe_stats() {
    let params = TaskBenchParams {
        pattern: Pattern::Stencil,
        width: 16,
        steps: 8,
        ..TaskBenchParams::small()
    };
    let r = run_taskbench(params, sim(4));
    let inline: u64 = r.report.pe_stats.iter().map(|p| p.inline_payloads).sum();
    let disp: u64 = r.report.pe_stats.iter().map(|p| p.dispatch_hits).sum();
    // Dep payloads are tiny (two ints) and cross PEs: they must inline,
    // and steady-state decode must hit the devirtualized cache.
    assert!(inline > 0, "no payload inlined: {:?}", r.report.pe_stats);
    assert!(
        disp > 0,
        "dispatch cache never hit: {:?}",
        r.report.pe_stats
    );

    let off = run_taskbench(
        TaskBenchParams {
            pattern: Pattern::Stencil,
            width: 16,
            steps: 8,
            ..TaskBenchParams::small()
        },
        sim(4).fast_paths(false),
    );
    let inline_off: u64 = off.report.pe_stats.iter().map(|p| p.inline_payloads).sum();
    let disp_off: u64 = off.report.pe_stats.iter().map(|p| p.dispatch_hits).sum();
    assert_eq!(
        (inline_off, disp_off),
        (0, 0),
        "fast-paths-off still counted"
    );
}
