//! LeanMD correctness: conservation laws, determinism, dispatch-mode
//! equivalence, particle migration, across backends.

use charm_apps::leanmd::{charm::run_charm, MdParams};
use charm_core::{Backend, DispatchMode, Runtime};
use charm_sim::MachineModel;

fn sim_rt(npes: usize) -> Runtime {
    Runtime::new(npes)
        .backend(Backend::Sim(MachineModel::local(npes)))
        .meter_compute(false)
}

#[test]
fn particles_conserved_with_migration() {
    let params = MdParams {
        steps: 24,
        migrate_every: 4,
        dt: 0.02, // large enough that particles actually change cells
        ..MdParams::small()
    };
    let n0 = params.num_particles() as u64;
    let r = run_charm(params, sim_rt(4));
    assert_eq!(r.particles, n0, "no particle may be lost or duplicated");
}

#[test]
fn momentum_conserved() {
    let params = MdParams {
        steps: 30,
        dt: 0.005,
        ..MdParams::small()
    };
    let r = run_charm(params, sim_rt(3));
    for k in 0..3 {
        assert!(
            r.momentum[k].abs() < 1e-9,
            "momentum must stay ~0 (pairwise forces): {:?}",
            r.momentum
        );
    }
}

#[test]
fn energy_is_finite_and_motion_happens() {
    let r = run_charm(MdParams::small(), sim_rt(2));
    assert!(r.kinetic.is_finite() && r.kinetic > 0.0);
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let r = run_charm(MdParams::small(), sim_rt(4));
        (
            r.particles,
            r.kinetic.to_bits(),
            [
                r.momentum[0].to_bits(),
                r.momentum[1].to_bits(),
                r.momentum[2].to_bits(),
            ],
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn pe_count_does_not_change_physics() {
    let k1 = run_charm(MdParams::small(), sim_rt(1)).kinetic;
    let k4 = run_charm(MdParams::small(), sim_rt(4)).kinetic;
    // Same reduction tree ordering is not guaranteed across PE counts, so
    // allow FP-roundoff-level differences only.
    assert!((k1 - k4).abs() < 1e-9 * (1.0 + k1.abs()), "{k1} vs {k4}");
}

#[test]
fn dynamic_dispatch_same_physics() {
    let native = run_charm(MdParams::small(), sim_rt(2));
    let dynamic = run_charm(MdParams::small(), sim_rt(2).dispatch(DispatchMode::Dynamic));
    assert_eq!(native.particles, dynamic.particles);
    assert!((native.kinetic - dynamic.kinetic).abs() < 1e-12);
}

#[test]
fn threads_backend_agrees_with_sim() {
    let sim = run_charm(MdParams::small(), sim_rt(3));
    let thr = run_charm(MdParams::small(), Runtime::new(3));
    assert_eq!(sim.particles, thr.particles);
    assert!((sim.kinetic - thr.kinetic).abs() < 1e-9 * (1.0 + sim.kinetic.abs()));
}

#[test]
fn degenerate_two_cell_grid() {
    let params = MdParams {
        cells: [2, 1, 1],
        per_cell: 6,
        steps: 10,
        ..MdParams::small()
    };
    let n0 = params.num_particles() as u64;
    let r = run_charm(params, sim_rt(2));
    assert_eq!(r.particles, n0);
}

#[test]
fn fine_grained_many_chares_per_pe() {
    // 4^3 cells + ~hundreds of computes on 2 PEs: the fine-grained regime.
    let params = MdParams {
        cells: [4, 4, 4],
        per_cell: 4,
        steps: 6,
        ..MdParams::small()
    };
    let r = run_charm(params.clone(), sim_rt(2));
    assert_eq!(r.particles, params.num_particles() as u64);
    // Cells + computes comfortably exceed 100 chares per PE.
    let computes = params.all_computes().len();
    assert!(computes > 200, "expected fine-grained: {computes} computes");
}
