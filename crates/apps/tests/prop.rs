//! Property-based tests of the mini-apps: randomized decompositions of the
//! distributed stencil always match the naive reference, and LeanMD
//! conserves particles and momentum for arbitrary (sane) parameters.

use charm_apps::leanmd::{charm::run_charm as run_leanmd, MdParams};
use charm_apps::stencil3d::{charm::run_charm as run_stencil, kernel, StencilParams};
use charm_core::{Backend, Runtime};
use charm_sim::MachineModel;
use proptest::prelude::*;

fn sim_rt(npes: usize) -> Runtime {
    Runtime::new(npes)
        .backend(Backend::Sim(MachineModel::local(npes)))
        .meter_compute(false)
}

fn reference_checksum(params: &StencilParams) -> (f64, f64) {
    let [gx, gy, gz] = params.grid;
    let mut grid = vec![0.0; gx * gy * gz];
    for x in 0..gx {
        for y in 0..gy {
            for z in 0..gz {
                grid[(x * gy + y) * gz + z] = charm_apps::stencil3d::init_value(x, y, z);
            }
        }
    }
    let out = kernel::naive_jacobi(&grid, params.grid, params.iters as usize);
    let [bx, by, bz] = params.block_dims();
    let mut s_total = 0.0;
    let mut w_total = 0.0;
    for cx in 0..params.chares[0] {
        for cy in 0..params.chares[1] {
            for cz in 0..params.chares[2] {
                let mut b = kernel::Block::zeros(bx, by, bz);
                b.fill(|x, y, z| {
                    let g = [cx * bx + x, cy * by + y, cz * bz + z];
                    out[(g[0] * gy + g[1]) * gz + g[2]]
                });
                let (s, w) = b.checksum();
                s_total += s;
                w_total += w;
            }
        }
    }
    (s_total, w_total)
}

proptest! {
    // Each case runs a full simulated parallel job; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn any_decomposition_matches_reference(
        bx in 1usize..4,
        by in 1usize..3,
        bz in 1usize..3,
        block in 2usize..5,
        iters in 0u32..7,
        npes in 1usize..5,
    ) {
        let params = StencilParams::new(
            [bx * block, by * block, bz * block],
            [bx, by, bz],
            iters,
        );
        let want = reference_checksum(&params);
        let got = run_stencil(params, sim_rt(npes)).checksum;
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()));
        prop_assert!(close(got.0, want.0) && close(got.1, want.1),
            "got {got:?}, want {want:?}");
    }

    #[test]
    fn leanmd_conserves_for_random_params(
        cells in 2usize..4,
        per_cell in 1usize..10,
        steps in 1u32..12,
        migrate_every in 1u32..5,
        seed in any::<u64>(),
    ) {
        let params = MdParams {
            cells: [cells, cells, cells],
            per_cell,
            cell_size: 4.0,
            cutoff: 4.0,
            dt: 0.004,
            steps,
            migrate_every,
            seed,
        };
        let n0 = params.num_particles() as u64;
        let r = run_leanmd(params, sim_rt(2));
        prop_assert_eq!(r.particles, n0, "particles conserved");
        for k in 0..3 {
            prop_assert!(r.momentum[k].abs() < 1e-9,
                "momentum conserved: {:?}", r.momentum);
        }
        prop_assert!(r.kinetic.is_finite());
    }
}
