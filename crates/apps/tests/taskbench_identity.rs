//! Detector-armed bit-identity suite for the scheduler fast paths
//! (`--features analyze`, DESIGN.md §10).
//!
//! The fast paths — small-payload inlining, slab publish, dispatch-cache
//! devirtualization, the threaded receive ring — are pure representation
//! changes: with them on or off, Task Bench must produce bit-identical
//! checksums and identical logical counters under every dependency
//! pattern, ≥16 permuted sim schedules and aggregation `{off, count(64)}`,
//! with the dynamic race detector armed throughout.

#![cfg(feature = "analyze")]

use charm_apps::taskbench::{expected, run_taskbench, Pattern, TaskBenchParams};
use charm_core::{AggCfg, Backend, Runtime};
use charm_sim::MachineModel;

const NPES: usize = 4;

fn sim() -> Runtime {
    Runtime::new(NPES)
        .backend(Backend::Sim(MachineModel::local(NPES)))
        .meter_compute(false)
}

#[test]
fn taskbench_fast_paths_bit_identical_across_patterns_schedules_aggregation() {
    for pattern in Pattern::ALL {
        let params = TaskBenchParams::small_with(pattern);
        let (oracle_sum, oracle_tasks) = expected(&params);

        // Baseline: fast paths OFF (the pre-fast-path runtime), detector
        // armed, no aggregation, natural schedule.
        let (rt, probe) = sim().analyze_probe();
        let base = run_taskbench(params.clone(), rt.fast_paths(false));
        assert!(
            probe.findings().is_empty(),
            "{pattern:?} baseline findings: {:?}",
            probe.findings()
        );
        assert_eq!(
            (base.checksum, base.tasks),
            (oracle_sum, oracle_tasks),
            "{pattern:?}: fast-paths-off baseline diverged from the oracle"
        );
        let base_key = (base.report.entries, base.report.msgs);

        for agg in [None, Some(AggCfg::count(64))] {
            for seed in [None].into_iter().chain((1..=16).map(Some)) {
                let (mut rt, probe) = sim().analyze_probe();
                if let Some(cfg) = agg {
                    rt = rt.aggregation(cfg);
                }
                if let Some(s) = seed {
                    rt = rt.permute_schedule(s);
                }
                // Fast paths ON (the default, stated explicitly).
                let r = run_taskbench(params.clone(), rt.fast_paths(true));
                assert!(
                    probe.findings().is_empty(),
                    "{pattern:?} agg={agg:?} seed={seed:?}: findings: {:?}",
                    probe.findings()
                );
                assert_eq!(
                    (r.checksum, r.tasks),
                    (base.checksum, base.tasks),
                    "{pattern:?} agg={agg:?} seed={seed:?}: fast paths changed the result"
                );
                assert_eq!(
                    (r.report.entries, r.report.msgs),
                    base_key,
                    "{pattern:?} agg={agg:?} seed={seed:?}: logical counters moved"
                );
            }
        }
    }
}
