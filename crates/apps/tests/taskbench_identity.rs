//! Detector-armed bit-identity suite for the scheduler fast paths
//! (`--features analyze`, DESIGN.md §10).
//!
//! The fast paths — small-payload inlining, slab publish, dispatch-cache
//! devirtualization, the threaded receive ring — are pure representation
//! changes: with them on or off, Task Bench must produce bit-identical
//! checksums and identical logical counters under every dependency
//! pattern, ≥16 permuted sim schedules and aggregation `{off, count(64)}`,
//! with the dynamic race detector armed throughout.

#![cfg(feature = "analyze")]

use charm_apps::taskbench::{expected, run_taskbench, Pattern, TaskBenchParams, TaskCol, TaskMsg};
use charm_core::{AggCfg, Backend, CheckCfg, RedData, Runtime};
use charm_sim::MachineModel;

const NPES: usize = 4;

fn sim() -> Runtime {
    Runtime::new(NPES)
        .backend(Backend::Sim(MachineModel::local(NPES)))
        .meter_compute(false)
}

#[test]
fn taskbench_fast_paths_bit_identical_across_patterns_schedules_aggregation() {
    for pattern in Pattern::ALL {
        let params = TaskBenchParams::small_with(pattern);
        let (oracle_sum, oracle_tasks) = expected(&params);

        // Baseline: fast paths OFF (the pre-fast-path runtime), detector
        // armed, no aggregation, natural schedule.
        let (rt, probe) = sim().analyze_probe();
        let base = run_taskbench(params.clone(), rt.fast_paths(false));
        assert!(
            probe.findings().is_empty(),
            "{pattern:?} baseline findings: {:?}",
            probe.findings()
        );
        assert_eq!(
            (base.checksum, base.tasks),
            (oracle_sum, oracle_tasks),
            "{pattern:?}: fast-paths-off baseline diverged from the oracle"
        );
        let base_key = (base.report.entries, base.report.msgs);

        for agg in [None, Some(AggCfg::count(64))] {
            for seed in [None].into_iter().chain((1..=16).map(Some)) {
                let (mut rt, probe) = sim().analyze_probe();
                if let Some(cfg) = agg {
                    rt = rt.aggregation(cfg);
                }
                if let Some(s) = seed {
                    rt = rt.permute_schedule(s);
                }
                // Fast paths ON (the default, stated explicitly).
                let r = run_taskbench(params.clone(), rt.fast_paths(true));
                assert!(
                    probe.findings().is_empty(),
                    "{pattern:?} agg={agg:?} seed={seed:?}: findings: {:?}",
                    probe.findings()
                );
                assert_eq!(
                    (r.checksum, r.tasks),
                    (base.checksum, base.tasks),
                    "{pattern:?} agg={agg:?} seed={seed:?}: fast paths changed the result"
                );
                assert_eq!(
                    (r.report.entries, r.report.msgs),
                    base_key,
                    "{pattern:?} agg={agg:?} seed={seed:?}: logical counters moved"
                );
            }
        }
    }
}

/// Schedule coverage, upgraded from sampling to proof for one
/// configuration: where the identity test above samples ≥16 permuted
/// schedules per pattern, `Runtime::check` explores *every* delivery
/// interleaving of a tiny trivial-pattern grid on 2 PEs up to
/// happens-before equivalence (DESIGN.md §11), fast paths on, detector
/// armed. The entry asserts the reduction result against the sequential
/// oracle, so any schedule-dependent checksum is a counterexample;
/// `truncated == false` means the whole space was covered.
#[test]
fn taskbench_trivial_is_clean_under_exhaustive_exploration() {
    const CHECK_NPES: usize = 2;
    let params = TaskBenchParams {
        pattern: Pattern::Trivial,
        width: CHECK_NPES as u32,
        steps: 2,
        grain_ns: 0,
        fanout: 1,
        seed: 3,
    };
    let (oracle_sum, oracle_tasks) = expected(&params);

    let rt = Runtime::new(CHECK_NPES)
        .backend(Backend::Sim(MachineModel::local(CHECK_NPES)))
        .meter_compute(false)
        .fast_paths(true)
        .register::<TaskCol>();
    let report = rt.check(
        CheckCfg {
            max_executions: 200_000,
            ..CheckCfg::default()
        },
        move |co| {
            let arr = co
                .ctx()
                .create_array::<TaskCol>(&[params.width as i32], params.clone());
            let done = co.ctx().create_future::<RedData>();
            arr.send(co.ctx(), TaskMsg::Start { done });
            assert_eq!(
                co.get(&done),
                RedData::VecI64(vec![oracle_sum, oracle_tasks as i64]),
                "taskbench result is schedule-dependent"
            );
            co.ctx().exit();
        },
    );
    assert!(
        !report.truncated,
        "taskbench exploration did not exhaust the space in {} executions",
        report.executions
    );
    assert!(
        report.counterexample.is_none(),
        "taskbench produced a counterexample: {:?}",
        report.counterexample
    );
    println!(
        "taskbench trivial: {} executions over {} equivalence classes",
        report.executions, report.equivalence_classes
    );
}
