//! stencil3d correctness: the charm and minimpi implementations must agree
//! with each other and with the naive single-grid reference, across
//! backends, decompositions, dispatch modes and load balancing.

use std::sync::Arc;

use charm_apps::stencil3d::{charm::run_charm, kernel, mpi::run_mpi, StencilParams};
use charm_core::{Backend, DispatchMode, Runtime};
use charm_lb::GreedyLb;
use charm_sim::MachineModel;

fn sim_rt(npes: usize) -> Runtime {
    Runtime::new(npes)
        .backend(Backend::Sim(MachineModel::local(npes)))
        .meter_compute(false)
}

fn reference_checksum(params: &StencilParams) -> (f64, f64) {
    // Build the global grid, run the naive solver, checksum per-block in
    // the same order the distributed versions do.
    let [gx, gy, gz] = params.grid;
    let mut grid = vec![0.0; gx * gy * gz];
    for x in 0..gx {
        for y in 0..gy {
            for z in 0..gz {
                grid[(x * gy + y) * gz + z] = charm_apps::stencil3d::init_value(x, y, z);
            }
        }
    }
    let out = kernel::naive_jacobi(&grid, params.grid, params.iters as usize);
    // Per-block checksums summed, exactly like the distributed reduction.
    let [bx, by, bz] = params.block_dims();
    let mut s_total = 0.0;
    let mut w_total = 0.0;
    for cx in 0..params.chares[0] {
        for cy in 0..params.chares[1] {
            for cz in 0..params.chares[2] {
                let mut b = kernel::Block::zeros(bx, by, bz);
                b.fill(|x, y, z| {
                    let g = [cx * bx + x, cy * by + y, cz * bz + z];
                    out[(g[0] * gy + g[1]) * gz + g[2]]
                });
                let (s, w) = b.checksum();
                s_total += s;
                w_total += w;
            }
        }
    }
    (s_total, w_total)
}

fn close(a: (f64, f64), b: (f64, f64)) -> bool {
    let rel = |x: f64, y: f64| (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs()));
    rel(a.0, b.0) && rel(a.1, b.1)
}

#[test]
fn charm_matches_naive_reference() {
    let params = StencilParams::new([8, 8, 8], [2, 2, 2], 6);
    let want = reference_checksum(&params);
    let got = run_charm(params, sim_rt(4));
    assert!(
        close(got.checksum, want),
        "charm {:?} vs reference {want:?}",
        got.checksum
    );
}

#[test]
fn mpi_matches_naive_reference() {
    let params = StencilParams::new([8, 8, 8], [2, 2, 2], 6);
    let want = reference_checksum(&params);
    let got = run_mpi(params, sim_rt(8));
    assert!(
        close(got.checksum, want),
        "mpi {:?} vs reference {want:?}",
        got.checksum
    );
}

#[test]
fn charm_and_mpi_agree_threads_backend() {
    let params = StencilParams::new([12, 6, 6], [2, 1, 3], 8);
    let a = run_charm(params.clone(), Runtime::new(3));
    let b = run_mpi(params, Runtime::new(6));
    assert!(
        close(a.checksum, b.checksum),
        "{:?} vs {:?}",
        a.checksum,
        b.checksum
    );
}

#[test]
fn finer_decomposition_than_pes_is_fine() {
    // The tunable-decomposition claim: 27 chares on 2 PEs, same physics.
    let params = StencilParams::new([9, 9, 9], [3, 3, 3], 5);
    let want = reference_checksum(&params);
    let got = run_charm(params, sim_rt(2));
    assert!(close(got.checksum, want));
}

#[test]
fn single_chare_degenerate_case() {
    let params = StencilParams::new([6, 6, 6], [1, 1, 1], 4);
    let want = reference_checksum(&params);
    let got = run_charm(params, sim_rt(2));
    assert!(close(got.checksum, want));
}

#[test]
fn dynamic_dispatch_same_physics() {
    let params = StencilParams::new([8, 8, 8], [2, 2, 2], 5);
    let native = run_charm(params.clone(), sim_rt(4));
    let dynamic = run_charm(params, sim_rt(4).dispatch(DispatchMode::Dynamic));
    assert!(
        close(native.checksum, dynamic.checksum),
        "dispatch mode must not change results"
    );
}

#[test]
fn load_balancing_preserves_results() {
    let mut params = StencilParams::new([8, 8, 8], [2, 2, 2], 12);
    params.lb_every = Some(4);
    params.imbalance = Some(4);
    let want = {
        let mut p = params.clone();
        p.lb_every = None;
        p.imbalance = None;
        reference_checksum(&p)
    };
    let got = run_charm(params, sim_rt(4).lb_strategy(Arc::new(GreedyLb)));
    assert!(
        close(got.checksum, want),
        "LB run {:?} vs reference {want:?}",
        got.checksum
    );
    assert!(
        got.report.lb_epochs >= 2,
        "expected LB epochs, got {}",
        got.report.lb_epochs
    );
    assert!(got.report.migrations > 0);
}

#[test]
fn imbalanced_run_slower_than_balanced_and_lb_recovers() {
    // The §V-B shape on a small scale, in virtual time with metering on.
    // Blocks are sized so the (alpha-scaled) kernel dominates messaging.
    let base = StencilParams::new([32, 32, 32], [2, 2, 1], 12);
    let balanced = run_charm(
        base.clone(),
        Runtime::new(4).backend(Backend::Sim(MachineModel::local(4))),
    );
    let mut imb = base.clone();
    imb.imbalance = Some(4); // one coarse block per PE, alpha in {10, 45}
    let imbalanced = run_charm(
        imb.clone(),
        Runtime::new(4).backend(Backend::Sim(MachineModel::local(4))),
    );
    assert!(
        imbalanced.total_time_s > 3.0 * balanced.total_time_s,
        "synthetic imbalance must dominate: {} vs {}",
        imbalanced.total_time_s,
        balanced.total_time_s
    );
    // With a 4-blocks-per-PE decomposition + greedy LB tracking the moving
    // hotspot, time drops substantially (paper: 1.9x-2.27x at scale; this
    // 4-PE miniature reaches ~1.4x — assert a conservative 1.25x).
    let mut fine = StencilParams::new([32, 32, 32], [4, 2, 2], 16);
    fine.imbalance = Some(16);
    let fine_nolb = run_charm(
        fine.clone(),
        Runtime::new(4).backend(Backend::Sim(MachineModel::local(4))),
    );
    fine.lb_every = Some(4);
    let lb = run_charm(
        fine,
        Runtime::new(4)
            .backend(Backend::Sim(MachineModel::local(4)))
            .lb_strategy(Arc::new(GreedyLb)),
    );
    let speedup = fine_nolb.total_time_s / lb.total_time_s;
    assert!(
        speedup > 1.25,
        "LB should speed up the imbalanced run substantially: {speedup:.2}x \
         ({} vs {})",
        fine_nolb.total_time_s,
        lb.total_time_s
    );
}

#[test]
fn weak_scaling_time_roughly_flat_in_virtual_time() {
    // Fixed block per PE; more PEs → similar time per step (Fig 1's shape).
    let t = |npes: usize, chares: [usize; 3]| {
        // Best of three runs: this test shares the host with the rest of
        // the (parallel) test suite, and metered virtual time inherits that
        // noise.
        (0..3)
            .map(|_| {
                let params =
                    StencilParams::new([8 * chares[0], 8 * chares[1], 8 * chares[2]], chares, 10);
                run_charm(
                    params,
                    Runtime::new(npes).backend(Backend::Sim(MachineModel::local(npes))),
                )
                .time_per_step_ms
            })
            .fold(f64::INFINITY, f64::min)
    };
    let t1 = t(1, [1, 1, 1]);
    let t8 = t(8, [2, 2, 2]);
    assert!(
        t8 < t1 * 4.0,
        "weak scaling should be roughly flat: 1 PE {t1} ms vs 8 PEs {t8} ms"
    );
}
