//! Histogram sort end-to-end: sortedness, conservation, balance, and
//! dispatch/backend invariance.

use charm_apps::histo::{run_histo, HistoParams};
use charm_core::{Backend, DispatchMode, Runtime};
use charm_sim::MachineModel;

fn sim(npes: usize) -> Runtime {
    Runtime::new(npes)
        .backend(Backend::Sim(MachineModel::local(npes)))
        .meter_compute(false)
}

fn input_key_sum(params: &HistoParams) -> (u64, u64) {
    // Recompute the deterministic input directly.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut total = 0u64;
    let mut sum = 0u64;
    for c in 0..params.chares as u64 {
        let mut rng = StdRng::seed_from_u64(params.seed ^ c.wrapping_mul(0x9E3779B9));
        for _ in 0..params.keys_per_chare {
            let u: f64 = rng.gen();
            let k = ((u * u) * params.key_max as f64) as u64;
            total += 1;
            sum = sum.wrapping_add(k);
        }
    }
    (total, sum)
}

#[test]
fn sorts_and_conserves() {
    let params = HistoParams::small();
    let (n0, sum0) = input_key_sum(&params);
    let r = run_histo(params, sim(4));
    assert!(r.sorted, "global order must hold");
    assert_eq!(r.total_keys, n0, "no key lost or duplicated");
    assert_eq!(r.key_sum, sum0, "key values unchanged");
}

#[test]
fn histogram_splitters_balance_the_skewed_keys() {
    let r = run_histo(
        HistoParams {
            chares: 16,
            keys_per_chare: 1000,
            bins: 256,
            ..HistoParams::small()
        },
        sim(4),
    );
    assert!(r.sorted);
    // With quadratic-skewed keys, uniform splitters would give the first
    // chare several times the average; histogram splitters stay close.
    assert!(r.imbalance < 1.5, "imbalance {}", r.imbalance);
}

#[test]
fn backend_and_dispatch_invariance() {
    let params = HistoParams::small();
    let a = run_histo(params.clone(), sim(3));
    let b = run_histo(params.clone(), Runtime::new(3));
    let c = run_histo(params, sim(3).dispatch(DispatchMode::Dynamic));
    for r in [&a, &b, &c] {
        assert!(r.sorted);
        assert_eq!(r.total_keys, a.total_keys);
        assert_eq!(r.key_sum, a.key_sum);
    }
}

#[test]
fn single_chare_degenerate() {
    let r = run_histo(
        HistoParams {
            chares: 1,
            bins: 1,
            keys_per_chare: 100,
            ..HistoParams::small()
        },
        sim(2),
    );
    assert!(r.sorted);
    assert_eq!(r.total_keys, 100);
}
