//! # charm-apps — the CharmPy paper's mini-apps, reimplemented
//!
//! * [`stencil3d`] — 7-point stencil on a 3D grid (paper §V-A), in both a
//!   charm-rs version (chares, `when`-guards, optional load balancing) and
//!   a `minimpi` version (the mpi4py baseline), sharing one kernel and one
//!   initial condition so results are directly comparable.
//! * [`leanmd`] — a Lennard-Jones molecular dynamics mini-app (paper §V-C)
//!   with the LeanMD structure: a dense 3D array of cells and a sparse
//!   array of pair-compute chares, fine-grained enough for hundreds of
//!   chares per PE.
//! * [`histo`] — histogram sort, the canonical Charm++ example, added as a
//!   third scenario exercising reductions, broadcasts and all-to-all key
//!   exchange in one program.
//! * [`taskbench`] — the Task Bench overhead benchmark: a `width × steps`
//!   task grid under five dependency patterns with a tunable per-task
//!   grain, used by `benches/metg.rs` to measure the runtime's minimum
//!   effective task granularity.

#![forbid(unsafe_code)]

pub mod histo;
pub mod leanmd;
pub mod stencil3d;
pub mod taskbench;
