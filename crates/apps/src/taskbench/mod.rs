//! Task Bench — the parameterized overhead benchmark of Slaughter et al.,
//! as a charm-rs mini-app.
//!
//! The workload is a `width × steps` grid of tasks. Each task busy-charges
//! `grain_ns` of compute, mixes the values of its dependencies into its
//! own, and feeds the tasks of the next step according to a configurable
//! dependency [`Pattern`]. Because the useful work per task is a knob, the
//! grid isolates exactly one quantity: the runtime's per-message overhead.
//! Sweeping the grain downward until efficiency drops below 50% yields the
//! METG (minimum effective task granularity) reported by `benches/metg.rs`.
//!
//! Every arrival is folded through a commutative wrapping sum before the
//! value mix, so results are bit-identical under any delivery order — the
//! property the analyze-armed identity suite pins across permuted
//! schedules, aggregation modes and fast-path settings.

pub mod patterns;

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use charm_core::prelude::*;
use charm_core::Runtime;
use serde::{Deserialize, Serialize};

pub use patterns::Pattern;
use patterns::{dependents, indegree, task_value};

/// Task Bench parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskBenchParams {
    /// Dependency pattern between consecutive steps.
    pub pattern: Pattern,
    /// Columns (chare array elements).
    pub width: u32,
    /// Steps (rows of the task grid).
    pub steps: u32,
    /// Useful work per task, charged via `ctx.charge` (virtual time under
    /// sim, real busy time under threads). `0` = pure overhead.
    pub grain_ns: u64,
    /// Out-edges per task for [`Pattern::Random`] (self edge included).
    pub fanout: u32,
    /// Seed for the random pattern's draws and the value mixing.
    pub seed: u64,
}

impl TaskBenchParams {
    /// A small stencil configuration (tests, smoke runs).
    pub fn small() -> TaskBenchParams {
        TaskBenchParams {
            pattern: Pattern::Stencil,
            width: 8,
            steps: 6,
            grain_ns: 1_000,
            fanout: 3,
            seed: 7,
        }
    }

    /// [`small`](TaskBenchParams::small) with a different pattern.
    pub fn small_with(pattern: Pattern) -> TaskBenchParams {
        TaskBenchParams {
            pattern,
            ..TaskBenchParams::small()
        }
    }

    /// Tasks in the grid (every column executes every step).
    pub fn total_tasks(&self) -> u64 {
        self.width as u64 * self.steps as u64
    }
}

/// Result of a Task Bench run.
#[derive(Debug, Clone)]
pub struct TaskBenchResult {
    /// Sum of every column's final-step value (order-independent).
    pub checksum: i64,
    /// Tasks executed (must equal `width × steps`).
    pub tasks: u64,
    /// Runtime report (timings, message counts, per-PE stats).
    pub report: charm_core::RunReport,
}

/// One column of the task grid.
#[derive(Serialize, Deserialize)]
pub struct TaskCol {
    params: TaskBenchParams,
    /// Arrival ledger per step: `(messages received, wrapping value sum)`.
    /// A `HashMap` because columns without a self edge (tree) can receive
    /// for a later step before executing an earlier one.
    pending: HashMap<u32, (u32, u64)>,
    /// Tasks this column has executed.
    executed: u64,
    /// Final-step value, once computed. Contribution waits until *every*
    /// step of the column has run, whatever order readiness arrived in.
    final_val: Option<u64>,
    done: Option<Future<RedData>>,
}

/// Task column entry methods.
#[derive(Serialize, Deserialize)]
pub enum TaskMsg {
    /// Kick off step 0 and register the completion future.
    Start {
        /// Receives `[checksum, tasks]` summed over all columns.
        done: Future<RedData>,
    },
    /// One dependency edge's value for this column's task at `step`.
    Dep {
        /// Destination step (row) of the edge.
        step: u32,
        /// The producing task's value.
        val: u64,
    },
}

impl TaskCol {
    fn col(&self, ctx: &Ctx) -> u32 {
        ctx.my_index().first() as u32
    }

    /// Run task `(step, col)` with dependency sum `acc`: charge the grain,
    /// mix the value, feed the next step (or record the final value).
    fn execute(&mut self, step: u32, acc: u64, ctx: &mut Ctx) {
        let p = self.params.clone();
        let col = self.col(ctx);
        if p.grain_ns > 0 {
            ctx.charge(Duration::from_nanos(p.grain_ns));
        }
        self.executed += 1;
        let val = task_value(p.seed, step, col, acc);
        if step + 1 == p.steps {
            self.final_val = Some(val);
        } else {
            let me = ctx.this_proxy::<TaskCol>();
            for d in dependents(p.pattern, p.width, step, col, p.seed, p.fanout) {
                me.elem(d as i32).send(
                    ctx,
                    TaskMsg::Dep {
                        step: step + 1,
                        val,
                    },
                );
            }
        }
        if self.executed == p.steps as u64 {
            if let Some(v) = self.final_val {
                let done = self.done.expect("taskbench column finished without Start");
                ctx.contribute(
                    RedData::VecI64(vec![v as i64, self.executed as i64]),
                    Reducer::Sum,
                    RedTarget::Future(done.id()),
                );
            }
        }
    }
}

impl Chare for TaskCol {
    type Msg = TaskMsg;
    type Init = TaskBenchParams;

    fn create(params: TaskBenchParams, _ctx: &mut Ctx) -> Self {
        TaskCol {
            params,
            pending: HashMap::new(),
            executed: 0,
            final_val: None,
            done: None,
        }
    }

    fn receive(&mut self, msg: TaskMsg, ctx: &mut Ctx) {
        match msg {
            TaskMsg::Start { done } => {
                self.done = Some(done);
                self.execute(0, 0, ctx);
            }
            TaskMsg::Dep { step, val } => {
                let p = self.params.clone();
                let col = self.col(ctx);
                let entry = self.pending.entry(step).or_insert((0, 0));
                entry.0 += 1;
                entry.1 = entry.1.wrapping_add(val);
                if entry.0 == indegree(p.pattern, p.width, step, col, p.seed, p.fanout) {
                    let (_, acc) = self.pending.remove(&step).unwrap();
                    self.execute(step, acc, ctx);
                }
            }
        }
    }
}

/// Sequential oracle: the `(checksum, tasks)` a correct run must produce.
/// Pure and allocation-light — the identity tests compare every runtime
/// configuration against this.
pub fn expected(params: &TaskBenchParams) -> (i64, u64) {
    let w = params.width as usize;
    let mut accs = vec![0u64; w];
    let mut vals = vec![0u64; w];
    for step in 0..params.steps {
        for col in 0..params.width {
            vals[col as usize] = task_value(params.seed, step, col, accs[col as usize]);
        }
        accs.iter_mut().for_each(|a| *a = 0);
        if step + 1 < params.steps {
            for col in 0..params.width {
                for d in dependents(
                    params.pattern,
                    params.width,
                    step,
                    col,
                    params.seed,
                    params.fanout,
                ) {
                    accs[d as usize] = accs[d as usize].wrapping_add(vals[col as usize]);
                }
            }
        }
    }
    let checksum = vals.iter().map(|&v| v as i64).sum();
    (checksum, params.total_tasks())
}

/// Run Task Bench; the caller supplies the runtime (backend, dispatch
/// mode, PE count, aggregation, fast paths).
pub fn run_taskbench(params: TaskBenchParams, rt: Runtime) -> TaskBenchResult {
    assert!(params.width >= 1 && params.steps >= 1);
    let out: Arc<Mutex<Option<RedData>>> = Arc::new(Mutex::new(None));
    let out2 = Arc::clone(&out);
    let p = params.clone();
    let report = rt.register::<TaskCol>().run(move |co| {
        let arr = co
            .ctx()
            .create_array::<TaskCol>(&[p.width as i32], p.clone());
        let done = co.ctx().create_future::<RedData>();
        arr.send(co.ctx(), TaskMsg::Start { done });
        *out2.lock().unwrap() = Some(co.get(&done));
        co.ctx().exit();
    });
    let reduced = out
        .lock()
        .unwrap()
        .take()
        .expect("taskbench produced no result");
    let v = reduced.as_vec_i64().to_vec();
    TaskBenchResult {
        checksum: v[0],
        tasks: v[1] as u64,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_is_deterministic_and_counts_every_task() {
        for pattern in Pattern::ALL {
            let p = TaskBenchParams::small_with(pattern);
            let (c1, t1) = expected(&p);
            let (c2, t2) = expected(&p);
            assert_eq!((c1, t1), (c2, t2));
            assert_eq!(t1, p.total_tasks());
            assert!(c1 > 0, "{pattern:?} checksum degenerate");
        }
    }

    #[test]
    fn oracle_distinguishes_patterns_and_seeds() {
        let base = expected(&TaskBenchParams::small_with(Pattern::Stencil)).0;
        let tree = expected(&TaskBenchParams::small_with(Pattern::Tree)).0;
        assert_ne!(base, tree);
        let mut p = TaskBenchParams::small();
        p.seed = 8;
        assert_ne!(base, expected(&p).0);
    }

    #[test]
    fn single_column_single_step_is_one_mix() {
        let p = TaskBenchParams {
            pattern: Pattern::Trivial,
            width: 1,
            steps: 1,
            grain_ns: 0,
            fanout: 1,
            seed: 3,
        };
        let (c, t) = expected(&p);
        assert_eq!(t, 1);
        assert_eq!(c, task_value(3, 0, 0, 0) as i64);
    }
}
