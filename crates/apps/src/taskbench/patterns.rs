//! Task Bench dependency patterns (Slaughter et al.): pure, deterministic
//! functions describing which tasks of step `s+1` consume the output of
//! task `(s, i)`.
//!
//! Everything here is side-effect free and shared between the chare app,
//! the sequential oracle and the tests: the runtime never gets a chance to
//! disagree with the oracle about the graph.

use serde::{Deserialize, Serialize};

/// A Task Bench dependency pattern. The graph is `width` columns by
/// `steps` rows; edges always go from step `s` to step `s+1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pattern {
    /// Each column chains to itself — no cross-task communication. The
    /// floor: pure per-message scheduling overhead on the same-PE path.
    Trivial,
    /// 1-D stencil: column `i` feeds `{i-1, i, i+1}` clamped to the grid.
    Stencil,
    /// FFT butterfly: column `i` feeds itself and `i ^ (1 << (s % log2 w))`
    /// — the communication distance doubles every step.
    Fft,
    /// Seeded random fan-out: a self edge (keeps every column live) plus
    /// `fanout - 1` pseudo-random targets drawn per `(seed, step, column)`.
    Random,
    /// Binary tree: column `i` feeds its heap children `{2i+1, 2i+2}`;
    /// the root also feeds itself so every column has a producer.
    Tree,
}

impl Pattern {
    /// All patterns, in the order the benches sweep them.
    pub const ALL: [Pattern; 5] = [
        Pattern::Trivial,
        Pattern::Stencil,
        Pattern::Fft,
        Pattern::Random,
        Pattern::Tree,
    ];

    /// Short display name (bench tables, CLI knobs).
    pub fn name(self) -> &'static str {
        match self {
            Pattern::Trivial => "trivial",
            Pattern::Stencil => "stencil",
            Pattern::Fft => "fft",
            Pattern::Random => "random",
            Pattern::Tree => "tree",
        }
    }

    /// Parse a pattern from its [`name`](Pattern::name).
    pub fn parse(s: &str) -> Option<Pattern> {
        Pattern::ALL.into_iter().find(|p| p.name() == s)
    }
}

/// SplitMix64 — the deterministic mixer behind task values and the random
/// pattern's target draws.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The value task `(step, col)` produces from the wrapping sum `acc` of its
/// dependencies' values. Masked to 32 bits so a whole run's reduction sum
/// stays far from `i64` overflow.
pub fn task_value(seed: u64, step: u32, col: u32, acc: u64) -> u64 {
    splitmix64(seed ^ acc ^ ((step as u64) << 32) ^ col as u64) & 0xFFFF_FFFF
}

fn log2_floor(w: u32) -> u32 {
    31 - w.leading_zeros()
}

/// Columns of step `step + 1` that consume the output of task
/// `(step, col)`. Duplicate targets are meaningful (two messages).
pub fn dependents(
    pattern: Pattern,
    width: u32,
    step: u32,
    col: u32,
    seed: u64,
    fanout: u32,
) -> Vec<u32> {
    debug_assert!(width >= 1 && col < width);
    match pattern {
        Pattern::Trivial => vec![col],
        Pattern::Stencil => {
            let mut out = Vec::with_capacity(3);
            if col > 0 {
                out.push(col - 1);
            }
            out.push(col);
            if col + 1 < width {
                out.push(col + 1);
            }
            out
        }
        Pattern::Fft => {
            let mut out = vec![col];
            if width > 1 {
                let partner = col ^ (1 << (step % log2_floor(width).max(1)));
                if partner < width {
                    out.push(partner);
                }
            }
            out
        }
        Pattern::Random => {
            let mut out = Vec::with_capacity(fanout.max(1) as usize);
            out.push(col);
            for k in 1..fanout.max(1) {
                let draw = splitmix64(
                    seed ^ 0xA5A5_5A5A_0000_0000
                        ^ ((step as u64) << 40)
                        ^ ((col as u64) << 16)
                        ^ k as u64,
                );
                out.push((draw % width as u64) as u32);
            }
            out
        }
        Pattern::Tree => {
            let mut out = Vec::with_capacity(3);
            if col == 0 {
                out.push(0);
            }
            if 2 * col + 1 < width {
                out.push(2 * col + 1);
            }
            if 2 * col + 2 < width {
                out.push(2 * col + 2);
            }
            out
        }
    }
}

/// How many messages task `(step, col)` expects from step `step - 1`
/// (counting multiplicity). Every pattern keeps this ≥ 1 for every column,
/// so the whole grid executes — `width × steps` tasks exactly.
pub fn indegree(pattern: Pattern, width: u32, step: u32, col: u32, seed: u64, fanout: u32) -> u32 {
    debug_assert!(step >= 1);
    let prev = step - 1;
    match pattern {
        // Cheap closed forms where the edge relation inverts trivially.
        Pattern::Trivial => 1,
        Pattern::Stencil => 1 + u32::from(col > 0) + u32::from(col + 1 < width),
        Pattern::Fft => {
            let mut n = 1;
            if width > 1 {
                let partner = col ^ (1 << (prev % log2_floor(width).max(1)));
                if partner < width {
                    n += 1;
                }
            }
            n
        }
        // Tree: every non-root column has exactly its heap parent (which
        // is on-grid whenever the column is); the root feeds itself.
        Pattern::Tree => 1,
        // Random has no closed inverse: count over the senders. Widths in
        // the benches are small enough that this O(width · fanout) scan is
        // noise next to the messaging it models.
        Pattern::Random => {
            let mut n = 0;
            for src in 0..width {
                n += dependents(pattern, width, prev, src, seed, fanout)
                    .into_iter()
                    .filter(|&d| d == col)
                    .count() as u32;
            }
            n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// For every pattern: dependents stay on the grid, the receiver-side
    /// expectation matches the sender-side edge multiset, and every column
    /// keeps at least one producer (the grid never stalls).
    #[test]
    fn indegree_matches_dependents_and_never_starves() {
        for pattern in Pattern::ALL {
            for width in [1u32, 2, 5, 8, 16] {
                for step in 0..4u32 {
                    let mut counted = vec![0u32; width as usize];
                    for col in 0..width {
                        for d in dependents(pattern, width, step, col, 7, 3) {
                            assert!(d < width, "{pattern:?} off-grid dependent");
                            counted[d as usize] += 1;
                        }
                    }
                    for col in 0..width {
                        let expect = indegree(pattern, width, step + 1, col, 7, 3);
                        assert_eq!(
                            counted[col as usize], expect,
                            "{pattern:?} w={width} s={step} col={col}"
                        );
                        assert!(expect >= 1, "{pattern:?} starves column {col}");
                    }
                }
            }
        }
    }

    #[test]
    fn random_pattern_is_seed_deterministic() {
        let a = dependents(Pattern::Random, 16, 3, 5, 42, 4);
        let b = dependents(Pattern::Random, 16, 3, 5, 42, 4);
        let c = dependents(Pattern::Random, 16, 3, 5, 43, 4);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds draw different targets");
        assert_eq!(a[0], 5, "self edge first");
    }

    #[test]
    fn task_value_is_masked_and_mixes() {
        let v = task_value(1, 2, 3, 4);
        assert!(v <= 0xFFFF_FFFF);
        assert_ne!(task_value(1, 2, 3, 4), task_value(1, 2, 3, 5));
        assert_ne!(task_value(1, 2, 3, 4), task_value(2, 2, 3, 4));
    }

    #[test]
    fn pattern_names_round_trip() {
        for p in Pattern::ALL {
            assert_eq!(Pattern::parse(p.name()), Some(p));
        }
        assert_eq!(Pattern::parse("nope"), None);
    }
}
