//! The 7-point Jacobi kernel and ghost-face plumbing.
//!
//! A block stores `(nx+2)·(ny+2)·(nz+2)` doubles: the interior plus one
//! ghost layer per face. Indexing is row-major `[x][y][z]` with `z`
//! fastest. The kernel is what Numba JIT-compiles in the paper — here it is
//! plain Rust, the same "machine-optimized code" end state.

use serde::{Deserialize, Serialize};

/// The six faces of a block, in the fixed exchange order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Face {
    /// −x neighbor.
    XM = 0,
    /// +x neighbor.
    XP = 1,
    /// −y neighbor.
    YM = 2,
    /// +y neighbor.
    YP = 3,
    /// −z neighbor.
    ZM = 4,
    /// +z neighbor.
    ZP = 5,
}

/// All faces, in order.
pub const FACES: [Face; 6] = [Face::XM, Face::XP, Face::YM, Face::YP, Face::ZM, Face::ZP];

impl Face {
    /// Decode from its `u8` discriminant.
    pub fn from_u8(v: u8) -> Face {
        FACES[v as usize]
    }

    /// The opposite face (the one the receiving neighbor applies).
    pub fn opposite(self) -> Face {
        match self {
            Face::XM => Face::XP,
            Face::XP => Face::XM,
            Face::YM => Face::YP,
            Face::YP => Face::YM,
            Face::ZM => Face::ZP,
            Face::ZP => Face::ZM,
        }
    }

    /// Unit offset in block coordinates.
    pub fn offset(self) -> [i32; 3] {
        match self {
            Face::XM => [-1, 0, 0],
            Face::XP => [1, 0, 0],
            Face::YM => [0, -1, 0],
            Face::YP => [0, 1, 0],
            Face::ZM => [0, 0, -1],
            Face::ZP => [0, 0, 1],
        }
    }
}

/// A block with ghost layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Interior extent in x.
    pub nx: usize,
    /// Interior extent in y.
    pub ny: usize,
    /// Interior extent in z.
    pub nz: usize,
    /// `(nx+2)(ny+2)(nz+2)` values, ghosts included.
    pub data: Vec<f64>,
}

impl Block {
    /// A zero block of the given interior size.
    pub fn zeros(nx: usize, ny: usize, nz: usize) -> Block {
        Block {
            nx,
            ny,
            nz,
            data: vec![0.0; (nx + 2) * (ny + 2) * (nz + 2)],
        }
    }

    /// Linear index of padded coordinates (ghosts at 0 and n+1).
    #[inline]
    pub fn at(&self, x: usize, y: usize, z: usize) -> usize {
        (x * (self.ny + 2) + y) * (self.nz + 2) + z
    }

    /// Fill the interior from a function of *global-ish* coordinates.
    pub fn fill(&mut self, mut f: impl FnMut(usize, usize, usize) -> f64) {
        for x in 1..=self.nx {
            for y in 1..=self.ny {
                for z in 1..=self.nz {
                    let i = self.at(x, y, z);
                    self.data[i] = f(x - 1, y - 1, z - 1);
                }
            }
        }
    }

    /// Copy one interior boundary plane out, for sending to a neighbor.
    pub fn extract_face(&self, face: Face) -> Vec<f64> {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let mut out = Vec::with_capacity(match face {
            Face::XM | Face::XP => ny * nz,
            Face::YM | Face::YP => nx * nz,
            Face::ZM | Face::ZP => nx * ny,
        });
        match face {
            Face::XM | Face::XP => {
                let x = if face == Face::XM { 1 } else { nx };
                for y in 1..=ny {
                    for z in 1..=nz {
                        out.push(self.data[self.at(x, y, z)]);
                    }
                }
            }
            Face::YM | Face::YP => {
                let y = if face == Face::YM { 1 } else { ny };
                for x in 1..=nx {
                    for z in 1..=nz {
                        out.push(self.data[self.at(x, y, z)]);
                    }
                }
            }
            Face::ZM | Face::ZP => {
                let z = if face == Face::ZM { 1 } else { nz };
                for x in 1..=nx {
                    for y in 1..=ny {
                        out.push(self.data[self.at(x, y, z)]);
                    }
                }
            }
        }
        out
    }

    /// Write a received neighbor plane into this block's ghost layer on
    /// `face`.
    pub fn apply_ghost(&mut self, face: Face, ghost: &[f64]) {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let mut it = ghost.iter();
        match face {
            Face::XM | Face::XP => {
                assert_eq!(ghost.len(), ny * nz, "ghost size mismatch on {face:?}");
                let x = if face == Face::XM { 0 } else { nx + 1 };
                for y in 1..=ny {
                    for z in 1..=nz {
                        let i = self.at(x, y, z);
                        self.data[i] = *it.next().unwrap();
                    }
                }
            }
            Face::YM | Face::YP => {
                assert_eq!(ghost.len(), nx * nz, "ghost size mismatch on {face:?}");
                let y = if face == Face::YM { 0 } else { ny + 1 };
                for x in 1..=nx {
                    for z in 1..=nz {
                        let i = self.at(x, y, z);
                        self.data[i] = *it.next().unwrap();
                    }
                }
            }
            Face::ZM | Face::ZP => {
                assert_eq!(ghost.len(), nx * ny, "ghost size mismatch on {face:?}");
                let z = if face == Face::ZM { 0 } else { nz + 1 };
                for x in 1..=nx {
                    for y in 1..=ny {
                        let i = self.at(x, y, z);
                        self.data[i] = *it.next().unwrap();
                    }
                }
            }
        }
    }

    /// One Jacobi sweep: every interior point becomes the average of itself
    /// and its six neighbors. Returns the new block data; ghost layers are
    /// copied through unchanged.
    pub fn jacobi_step(&self) -> Vec<f64> {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let mut next = self.data.clone();
        let syz = (ny + 2) * (nz + 2);
        let sz = nz + 2;
        let d = &self.data;
        for x in 1..=nx {
            for y in 1..=ny {
                let row = x * syz + y * sz;
                for z in 1..=nz {
                    let i = row + z;
                    next[i] = (d[i]
                        + d[i - syz]
                        + d[i + syz]
                        + d[i - sz]
                        + d[i + sz]
                        + d[i - 1]
                        + d[i + 1])
                        / 7.0;
                }
            }
        }
        next
    }

    /// Sum and an index-weighted sum over the interior — a cheap
    /// permutation-sensitive checksum for cross-implementation validation.
    pub fn checksum(&self) -> (f64, f64) {
        let mut s = 0.0;
        let mut w = 0.0;
        let mut k = 0u64;
        for x in 1..=self.nx {
            for y in 1..=self.ny {
                for z in 1..=self.nz {
                    let v = self.data[self.at(x, y, z)];
                    s += v;
                    w += v * ((k % 97) as f64 + 1.0);
                    k += 1;
                }
            }
        }
        (s, w)
    }
}

/// Reference implementation of the full-grid Jacobi sweep (no blocking),
/// used by tests to validate the distributed versions. Boundary is
/// Dirichlet-zero, matching the block version's untouched edge ghosts.
pub fn naive_jacobi(grid: &[f64], dims: [usize; 3], iters: usize) -> Vec<f64> {
    let [gx, gy, gz] = dims;
    let mut cur = grid.to_vec();
    let mut next = vec![0.0; cur.len()];
    let at = |x: i64, y: i64, z: i64, g: &[f64]| -> f64 {
        if x < 0 || y < 0 || z < 0 || x >= gx as i64 || y >= gy as i64 || z >= gz as i64 {
            0.0
        } else {
            g[(x as usize * gy + y as usize) * gz + z as usize]
        }
    };
    for _ in 0..iters {
        for x in 0..gx as i64 {
            for y in 0..gy as i64 {
                for z in 0..gz as i64 {
                    let v = at(x, y, z, &cur)
                        + at(x - 1, y, z, &cur)
                        + at(x + 1, y, z, &cur)
                        + at(x, y - 1, z, &cur)
                        + at(x, y + 1, z, &cur)
                        + at(x, y, z - 1, &cur)
                        + at(x, y, z + 1, &cur);
                    next[(x as usize * gy + y as usize) * gz + z as usize] = v / 7.0;
                }
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn face_opposites() {
        for f in FACES {
            assert_eq!(f.opposite().opposite(), f);
            let o = f.offset();
            let oo = f.opposite().offset();
            assert_eq!([o[0] + oo[0], o[1] + oo[1], o[2] + oo[2]], [0, 0, 0]);
        }
    }

    #[test]
    fn extract_apply_roundtrip() {
        let mut a = Block::zeros(3, 4, 5);
        a.fill(|x, y, z| (x * 100 + y * 10 + z) as f64);
        let mut b = Block::zeros(3, 4, 5);
        for f in FACES {
            let face = a.extract_face(f);
            // The neighbor on face f applies it to its opposite ghost.
            b.apply_ghost(f.opposite(), &face);
        }
        // Spot-check: a's XP interior plane equals b's XM ghost plane.
        for y in 1..=4 {
            for z in 1..=5 {
                assert_eq!(b.data[b.at(0, y, z)], a.data[a.at(3, y, z)]);
            }
        }
    }

    #[test]
    fn jacobi_uniform_block_stays_uniform_inside() {
        let mut b = Block::zeros(4, 4, 4);
        b.fill(|_, _, _| 7.0);
        // Fill the ghosts as if surrounded by identical blocks.
        for f in FACES {
            let plane = b.extract_face(f);
            let same: Vec<f64> = plane.iter().map(|_| 7.0).collect();
            b.apply_ghost(f, &same);
        }
        let next = b.jacobi_step();
        for x in 1..=4usize {
            for y in 1..=4usize {
                for z in 1..=4usize {
                    let i = b.at(x, y, z);
                    assert!((next[i] - 7.0).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn single_block_matches_naive_reference() {
        // One block covering the whole grid with zero ghosts must equal the
        // naive Dirichlet solver.
        let dims = [4usize, 3, 5];
        let mut b = Block::zeros(dims[0], dims[1], dims[2]);
        let mut flat = vec![0.0; dims[0] * dims[1] * dims[2]];
        let mut k = 0;
        b.fill(|x, y, z| {
            let v = ((x * 31 + y * 17 + z * 7) % 13) as f64;
            flat[(x * dims[1] + y) * dims[2] + z] = v;
            k += 1;
            v
        });
        assert_eq!(k, 60);
        let mut cur = b.clone();
        for _ in 0..5 {
            cur.data = cur.jacobi_step();
        }
        let reference = naive_jacobi(&flat, dims, 5);
        for x in 0..dims[0] {
            for y in 0..dims[1] {
                for z in 0..dims[2] {
                    let got = cur.data[cur.at(x + 1, y + 1, z + 1)];
                    let want = reference[(x * dims[1] + y) * dims[2] + z];
                    assert!(
                        (got - want).abs() < 1e-12,
                        "mismatch at ({x},{y},{z}): {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn checksum_detects_permutation() {
        let mut a = Block::zeros(2, 2, 2);
        a.fill(|x, y, z| (x + 2 * y + 4 * z) as f64);
        let mut b = Block::zeros(2, 2, 2);
        b.fill(|x, y, z| (z + 2 * y + 4 * x) as f64); // same multiset, permuted
        assert_eq!(a.checksum().0, b.checksum().0);
        assert_ne!(a.checksum().1, b.checksum().1);
    }
}
