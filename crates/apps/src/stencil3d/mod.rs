//! stencil3d — the paper's first mini-app (§V-A/§V-B): a 7-point stencil
//! on a 3D grid decomposed into equal blocks, implemented twice:
//!
//! * [`charm`] — chares with `when`-guarded ghost exchange, arbitrary
//!   blocks-per-PE decomposition, optional AtSync load balancing;
//! * [`mpi`] — one rank per PE over `minimpi`, the mpi4py baseline.
//!
//! Both share [`kernel`] (the Numba-compiled part of the paper) and the
//! same deterministic initial condition, so their results are comparable
//! bit-for-bit — which the integration tests check.

pub mod charm;
pub mod kernel;
pub mod mpi;

use serde::{Deserialize, Serialize};

pub use kernel::{Block, Face, FACES};

/// Parameters shared by both implementations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StencilParams {
    /// Global grid extent.
    pub grid: [usize; 3],
    /// Chare/rank grid (must divide `grid`; the MPI driver requires its
    /// product to equal the PE count).
    pub chares: [usize; 3],
    /// Iterations to run.
    pub iters: u32,
    /// Load balance every N iterations (charm version only; paper: 30).
    pub lb_every: Option<u32>,
    /// Synthetic imbalance (§V-B): `Some(n)` keys the per-block load factor
    /// to an `n`-block coarse (MPI-equivalent) decomposition.
    pub imbalance: Option<usize>,
    /// Globally synchronize every N iterations (0 = never). Stencil codes
    /// commonly reduce a residual every step; with a moving hotspot this
    /// coupling is what makes per-iteration imbalance visible (and load
    /// balancing worthwhile) instead of being pipelined away.
    pub sync_every: u32,
    /// Modeled kernel time in seconds (per block-step). When set, the
    /// compute cost is *charged* instead of measured — combine with the
    /// runtime's `meter_compute(false)` for fully deterministic virtual
    /// times (used by the LB figure, where measured-noise × alpha would
    /// otherwise dominate).
    pub nominal_kernel_s: Option<f64>,
}

impl StencilParams {
    /// A balanced configuration with one block per listed chare slot.
    pub fn new(grid: [usize; 3], chares: [usize; 3], iters: u32) -> StencilParams {
        for d in 0..3 {
            assert!(
                grid[d].is_multiple_of(chares[d]),
                "chare grid {chares:?} must divide grid {grid:?}"
            );
        }
        StencilParams {
            grid,
            chares,
            iters,
            lb_every: None,
            imbalance: None,
            sync_every: 0,
            nominal_kernel_s: None,
        }
    }

    /// Interior block extent.
    pub fn block_dims(&self) -> [usize; 3] {
        [
            self.grid[0] / self.chares[0],
            self.grid[1] / self.chares[1],
            self.grid[2] / self.chares[2],
        ]
    }

    /// Total number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.chares.iter().product()
    }

    /// Row-major linear id of a block coordinate.
    pub fn linear(&self, c: [usize; 3]) -> usize {
        (c[0] * self.chares[1] + c[1]) * self.chares[2] + c[2]
    }

    /// The coarse (MPI-equivalent) block a chare belongs to under the
    /// imbalance keying: chares are grouped by the same contiguous block
    /// distribution the runtime's `Placement::Block` uses.
    pub fn coarse_block_of(&self, c: [usize; 3]) -> usize {
        let n = self.imbalance.unwrap_or(1).max(1);
        let lin = self.linear(c) as u64;
        ((lin * n as u64) / self.num_blocks() as u64) as usize
    }
}

/// Deterministic initial condition, shared by every implementation.
#[inline]
pub fn init_value(gx: usize, gy: usize, gz: usize) -> f64 {
    // A mix of low-frequency structure and index hash, so errors anywhere
    // shift the checksum.
    let h =
        (gx.wrapping_mul(73856093) ^ gy.wrapping_mul(19349663) ^ gz.wrapping_mul(83492791)) % 1000;
    (h as f64) / 100.0 + ((gx + 2 * gy + 3 * gz) % 7) as f64
}

/// The synthetic per-block load factor α (§V-B): blocks in the first and
/// last fifth of the coarse decomposition carry a fixed α = 10; the middle
/// band oscillates with the iteration so the hot spot *moves*, which is
/// what makes periodic re-balancing worthwhile.
///
/// Calibration notes: the paper's exact formula is unreadable in the
/// scanned source; this one reproduces its two *reported* properties —
/// max/avg load ≈ 2.1, and an oscillation slow relative to the 30-iteration
/// LB period (so a measured-load balancer can track the moving hotspot, the
/// regime in which the paper observes 1.9–2.27× speedups).
pub fn alpha(coarse_i: usize, coarse_n: usize, iter: u32) -> f64 {
    let n = coarse_n.max(1) as f64;
    let i = coarse_i as f64;
    if i < 0.2 * n || i > 0.8 * n {
        10.0
    } else {
        // Time advances at iter/256: the hotspot drifts only ~10 degrees per
        // 30-iteration LB window, so a measured-load balancer can track it —
        // the regime of the paper's large-N runs, where the phase coefficient
        // 4pi/N is small. (A fast-moving hotspot makes *any* measured-load
        // balancer stale within its own window.)
        95.0 + 45.0 * (4.0 * std::f64::consts::PI * (iter as f64 / 256.0 + i) / n).sin()
    }
}

/// Result of one stencil run.
#[derive(Debug, Clone)]
pub struct StencilResult {
    /// Total time of the iteration loop, seconds (virtual under sim).
    pub total_time_s: f64,
    /// Time per step, milliseconds.
    pub time_per_step_ms: f64,
    /// Global (sum, weighted-sum) checksum over the final grid.
    pub checksum: (f64, f64),
    /// The runtime's run report.
    pub report: charm_core::RunReport,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_validate_divisibility() {
        let p = StencilParams::new([8, 8, 8], [2, 2, 2], 10);
        assert_eq!(p.block_dims(), [4, 4, 4]);
        assert_eq!(p.num_blocks(), 8);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn bad_decomposition_panics() {
        StencilParams::new([8, 8, 8], [3, 2, 2], 1);
    }

    #[test]
    fn alpha_matches_paper_shape() {
        let n = 64;
        // Edges fixed at 10.
        assert_eq!(alpha(0, n, 0), 10.0);
        assert_eq!(alpha(62, n, 17), 10.0);
        // The middle band oscillates within [50, 140] and moves with iter.
        let mid = alpha(30, n, 0);
        assert!((50.0..=140.0).contains(&mid));
        assert_ne!(alpha(30, n, 0), alpha(30, n, 7));
        // Aggregate imbalance ratio ≈ 2.1 as reported in §V-B (load ∝ 1+α).
        let loads: Vec<f64> = (0..n).map(|i| 1.0 + alpha(i, n, 0)).collect();
        let max = loads.iter().cloned().fold(0.0, f64::max);
        let avg: f64 = loads.iter().sum::<f64>() / n as f64;
        let ratio = max / avg;
        assert!(
            (1.9..=2.5).contains(&ratio),
            "imbalance ratio {ratio} should be near the paper's 2.1"
        );
    }

    #[test]
    fn coarse_block_groups_consecutive_chares() {
        let mut p = StencilParams::new([16, 4, 4], [16, 1, 1], 1);
        p.imbalance = Some(4);
        // 16 chares onto 4 coarse blocks → runs of 4.
        let groups: Vec<usize> = (0..16).map(|i| p.coarse_block_of([i, 0, 0])).collect();
        assert_eq!(groups, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3]);
    }

    #[test]
    fn init_value_deterministic() {
        assert_eq!(init_value(3, 4, 5), init_value(3, 4, 5));
        assert_ne!(init_value(0, 0, 0), init_value(1, 0, 0));
    }
}
