//! The charm-rs stencil3d implementation: one chare per block, ghost
//! exchange with `when`-guarded iteration matching, optional synthetic
//! imbalance and AtSync load balancing — the program of paper §V-A/§V-B.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use charm_core::prelude::*;
use charm_core::Runtime;
use charm_wire::Buf;
use serde::{Deserialize, Serialize};

use super::kernel::{Block, Face, FACES};
use super::{alpha, init_value, StencilParams, StencilResult};

/// One grid block.
#[derive(Serialize, Deserialize)]
pub struct BlockChare {
    params: StencilParams,
    coords: [usize; 3],
    block: Block,
    iter: u32,
    got: u8,
    expected: u8,
    started: bool,
    /// Between contributing the per-iteration sync barrier and receiving
    /// its result, ghost delivery is deferred (part of the when-condition;
    /// without it a fast neighbor's ghosts could push this block past the
    /// barrier and its own ghosts would carry the wrong iteration).
    waiting_sync: bool,
    /// Smoothed kernel time (seconds) for the synthetic-imbalance charge —
    /// an EWMA so one glitched host measurement is not amplified by alpha.
    t_kernel_ewma: f64,
    done: Option<Future<RedData>>,
}

/// Block entry methods.
#[derive(Serialize, Deserialize)]
pub enum BlockMsg {
    /// Begin iterating; `done` receives the final `[sum, wsum]` checksum.
    Start {
        /// Completion/checksum reduction target.
        done: Future<RedData>,
    },
    /// A neighbor's boundary plane.
    Ghost {
        /// Iteration the plane belongs to.
        iter: u32,
        /// Face of *this* block the plane applies to.
        face: u8,
        /// The plane (zero-copy buffer — the NumPy path).
        data: Buf<f64>,
    },
}

impl BlockChare {
    fn neighbors(&self) -> Vec<(Face, [usize; 3])> {
        let c = self.coords;
        let dims = self.params.chares;
        FACES
            .iter()
            .filter_map(|&f| {
                let o = f.offset();
                let n = [
                    c[0] as i64 + o[0] as i64,
                    c[1] as i64 + o[1] as i64,
                    c[2] as i64 + o[2] as i64,
                ];
                if (0..3).all(|d| n[d] >= 0 && n[d] < dims[d] as i64) {
                    Some((f, [n[0] as usize, n[1] as usize, n[2] as usize]))
                } else {
                    None
                }
            })
            .collect()
    }

    fn send_ghosts(&self, ctx: &mut Ctx) {
        let me = ctx.this_proxy::<BlockChare>();
        for (face, ncoords) in self.neighbors() {
            let data = Buf::from_vec(self.block.extract_face(face));
            me.elem([ncoords[0] as i32, ncoords[1] as i32, ncoords[2] as i32])
                .send(
                    ctx,
                    BlockMsg::Ghost {
                        iter: self.iter,
                        // The neighbor applies it on the opposite side.
                        face: face.opposite() as u8,
                        data,
                    },
                );
        }
    }

    fn step(&mut self, ctx: &mut Ctx) {
        let t0 = Instant::now();
        self.block.data = self.block.jacobi_step();
        let kernel_time = t0.elapsed().as_secs_f64();
        self.t_kernel_ewma = if self.t_kernel_ewma == 0.0 {
            kernel_time
        } else {
            0.8 * self.t_kernel_ewma + 0.2 * kernel_time
        };
        // Modeled-compute mode: charge a deterministic kernel cost.
        let t_base = match self.params.nominal_kernel_s {
            Some(t) => {
                ctx.charge(Duration::from_secs_f64(t));
                t
            }
            None => self.t_kernel_ewma,
        };
        // Synthetic imbalance (§V-B): extend this block's compute by
        // alpha × kernel-time, exactly as the paper does with sleep.
        if let Some(n) = self.params.imbalance {
            let a = alpha(self.params.coarse_block_of(self.coords), n, self.iter);
            ctx.charge(Duration::from_secs_f64(t_base * a));
        }
        self.iter += 1;
        self.got = 0;
        if self.iter == self.params.iters {
            let (s, w) = self.block.checksum();
            let done = self.done.expect("finished without Start");
            ctx.contribute(
                RedData::VecF64(vec![s, w]),
                Reducer::Sum,
                RedTarget::Future(done.id()),
            );
            return;
        }
        // Periodic load balancing (paper: every 30 iterations).
        if let Some(every) = self.params.lb_every {
            if self.iter.is_multiple_of(every) {
                ctx.at_sync();
                return; // resume_from_sync continues the loop
            }
        }
        // Per-iteration global synchronization (residual-style reduction).
        if self.params.sync_every > 0 && self.iter.is_multiple_of(self.params.sync_every) {
            self.waiting_sync = true;
            let target = ctx.this_proxy::<BlockChare>().reduction_target(TAG_SYNC);
            ctx.contribute_barrier(target);
            return; // reduced(TAG_SYNC) continues the loop
        }
        self.send_ghosts(ctx);
    }
}

/// Shared-slot type used to pass results out of the runtime closure.
pub(crate) type StencilOut = Arc<Mutex<Option<(f64, (f64, f64))>>>;

/// Reduction tag for the per-iteration synchronization barrier.
const TAG_SYNC: u32 = 0x57EC;

impl Chare for BlockChare {
    type Msg = BlockMsg;
    type Init = StencilParams;

    fn create(params: StencilParams, ctx: &mut Ctx) -> Self {
        let ix = ctx.my_index();
        let coords = [
            ix.coords()[0] as usize,
            ix.coords()[1] as usize,
            ix.coords()[2] as usize,
        ];
        let [bx, by, bz] = params.block_dims();
        let mut block = Block::zeros(bx, by, bz);
        let base = [coords[0] * bx, coords[1] * by, coords[2] * bz];
        block.fill(|x, y, z| init_value(base[0] + x, base[1] + y, base[2] + z));
        let mut me = BlockChare {
            params,
            coords,
            block,
            iter: 0,
            got: 0,
            expected: 0,
            started: false,
            waiting_sync: false,
            t_kernel_ewma: 0.0,
            done: None,
        };
        me.expected = me.neighbors().len() as u8;
        me
    }

    // The paper's @when('self.iter == iter'): ghosts for future iterations
    // buffer until this block catches up; nothing runs before Start.
    fn guard(&self, msg: &BlockMsg) -> bool {
        match msg {
            BlockMsg::Start { .. } => true,
            BlockMsg::Ghost { iter, .. } => {
                self.started && !self.waiting_sync && *iter == self.iter
            }
        }
    }

    fn receive(&mut self, msg: BlockMsg, ctx: &mut Ctx) {
        match msg {
            BlockMsg::Start { done } => {
                self.started = true;
                self.done = Some(done);
                if self.params.iters == 0 {
                    let (s, w) = self.block.checksum();
                    ctx.contribute(
                        RedData::VecF64(vec![s, w]),
                        Reducer::Sum,
                        RedTarget::Future(done.id()),
                    );
                    return;
                }
                self.send_ghosts(ctx);
                if self.expected == 0 {
                    // Single-block degenerate case: no neighbors to wait on.
                    while self.iter < self.params.iters {
                        self.step(ctx);
                    }
                }
            }
            BlockMsg::Ghost { face, data, .. } => {
                self.block.apply_ghost(Face::from_u8(face), &data);
                self.got += 1;
                if self.got == self.expected {
                    self.step(ctx);
                }
            }
        }
    }

    fn reduced(&mut self, tag: u32, _data: RedData, ctx: &mut Ctx) {
        assert_eq!(tag, TAG_SYNC);
        self.waiting_sync = false;
        self.send_ghosts(ctx);
    }

    fn resume_from_sync(&mut self, ctx: &mut Ctx) {
        // LB epoch finished (possibly on a new PE): next iteration.
        self.send_ghosts(ctx);
    }
}

/// Run the charm-rs stencil on the given runtime. The runtime's PE count is
/// independent of the chare grid (that is the point — §V-B uses 4 chares
/// per PE).
pub fn run_charm(params: StencilParams, rt: Runtime) -> StencilResult {
    let out: StencilOut = Arc::new(Mutex::new(None));
    let out2 = Arc::clone(&out);
    let use_lb = params.lb_every.is_some();
    let iters = params.iters.max(1) as f64;
    let report = rt.register_migratable::<BlockChare>().run(move |co| {
        let dims = [
            params.chares[0] as i32,
            params.chares[1] as i32,
            params.chares[2] as i32,
        ];
        let arr = co.ctx().create_array_with::<BlockChare>(
            &dims,
            params.clone(),
            ArrayOpts {
                placement: Placement::Block,
                use_lb,
            },
        );
        let done = co.ctx().create_future::<RedData>();
        let t0 = co.ctx().now();
        arr.send(co.ctx(), BlockMsg::Start { done });
        let cs = co.get(&done);
        let t1 = co.ctx().now();
        let cs = cs.as_vec_f64();
        *out2.lock().unwrap() = Some((t1 - t0, (cs[0], cs[1])));
        co.ctx().exit();
    });
    let (total, checksum) = out
        .lock()
        .unwrap()
        .take()
        .expect("stencil run produced no result");
    StencilResult {
        total_time_s: total,
        time_per_step_ms: total * 1e3 / iters,
        checksum,
        report,
    }
}
