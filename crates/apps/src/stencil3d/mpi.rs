//! The minimpi stencil3d implementation — the mpi4py baseline of §V-A.
//!
//! One rank per PE, one block per rank, the same kernel and initial
//! condition as the charm version. Ghost exchange uses eager sends plus
//! tag-matched receives (tags carry the face; per-link FIFO keeps
//! iterations ordered, exactly as MPI guarantees).

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use charm_core::{RedData, Reducer, Runtime};
use charm_wire::Buf;
use minimpi::Rank;

use super::kernel::{Block, FACES};
use super::{alpha, init_value, StencilParams, StencilResult};

fn coords_of(rank: usize, dims: [usize; 3]) -> [usize; 3] {
    [
        rank / (dims[1] * dims[2]),
        (rank / dims[2]) % dims[1],
        rank % dims[2],
    ]
}

fn rank_of(c: [usize; 3], dims: [usize; 3]) -> usize {
    (c[0] * dims[1] + c[1]) * dims[2] + c[2]
}

fn rank_main(params: &StencilParams, rank: &mut Rank<'_>, out: &Mutex<Option<(f64, (f64, f64))>>) {
    let me = rank.rank();
    let dims = params.chares;
    let coords = coords_of(me, dims);
    let [bx, by, bz] = params.block_dims();
    let mut block = Block::zeros(bx, by, bz);
    let base = [coords[0] * bx, coords[1] * by, coords[2] * bz];
    block.fill(|x, y, z| init_value(base[0] + x, base[1] + y, base[2] + z));

    // Face neighbors in rank space.
    let neighbors: Vec<(super::Face, usize)> = FACES
        .iter()
        .filter_map(|&f| {
            let o = f.offset();
            let n = [
                coords[0] as i64 + o[0] as i64,
                coords[1] as i64 + o[1] as i64,
                coords[2] as i64 + o[2] as i64,
            ];
            if (0..3).all(|d| n[d] >= 0 && n[d] < dims[d] as i64) {
                Some((
                    f,
                    rank_of([n[0] as usize, n[1] as usize, n[2] as usize], dims),
                ))
            } else {
                None
            }
        })
        .collect();

    rank.barrier();
    let t0 = rank.wtime();
    let mut t_kernel_ewma = 0.0f64;
    for iter in 0..params.iters {
        // Post all sends, then receive all faces (tag = face to apply at
        // the receiver; FIFO per (src, tag) keeps iterations in order).
        for &(f, nbr) in &neighbors {
            let plane = Buf::from_vec(block.extract_face(f));
            rank.send(nbr, f.opposite() as i32, &plane);
        }
        for &(f, nbr) in &neighbors {
            let (plane, _) = rank.recv::<Buf<f64>>(Some(nbr), Some(f as i32));
            block.apply_ghost(f, &plane);
        }
        let t_k = Instant::now();
        block.data = block.jacobi_step();
        let kernel_time = t_k.elapsed().as_secs_f64();
        t_kernel_ewma = if t_kernel_ewma == 0.0 {
            kernel_time
        } else {
            0.8 * t_kernel_ewma + 0.2 * kernel_time
        };
        let t_base = match params.nominal_kernel_s {
            Some(t) => {
                rank.charge(Duration::from_secs_f64(t));
                t
            }
            None => t_kernel_ewma,
        };
        if let Some(n) = params.imbalance {
            // MPI cannot rebalance: every rank simply stalls for its alpha.
            let a = alpha(params.coarse_block_of(coords), n, iter);
            rank.charge(Duration::from_secs_f64(t_base * a));
        }
        if params.sync_every > 0 && (iter + 1) % params.sync_every == 0 {
            rank.barrier();
        }
    }
    rank.barrier();
    let t1 = rank.wtime();

    let (s, w) = block.checksum();
    let total = rank.allreduce(RedData::VecF64(vec![s, w]), Reducer::Sum);
    if me == 0 {
        let cs = total.as_vec_f64();
        *out.lock().unwrap() = Some((t1 - t0, (cs[0], cs[1])));
    }
}

/// Run the MPI stencil. The runtime's PE count must equal the block count
/// (one block per rank — the fixed decomposition that is MPI's limitation
/// in the paper's §V-B comparison).
pub fn run_mpi(params: StencilParams, rt: Runtime) -> StencilResult {
    assert_eq!(
        rt.npes(),
        params.num_blocks(),
        "mpi stencil needs exactly one rank per block"
    );
    let out: super::charm::StencilOut = Arc::new(Mutex::new(None));
    let out2 = Arc::clone(&out);
    let iters = params.iters.max(1) as f64;
    let report = minimpi::run_on(rt, move |rank| rank_main(&params, rank, &out2));
    let (total, checksum) = out
        .lock()
        .unwrap()
        .take()
        .expect("mpi stencil produced no result");
    StencilResult {
        total_time_s: total,
        time_per_step_ms: total * 1e3 / iters,
        checksum,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_coordinate_mapping_roundtrips() {
        let dims = [3, 4, 5];
        for r in 0..60 {
            assert_eq!(rank_of(coords_of(r, dims), dims), r);
        }
    }
}
