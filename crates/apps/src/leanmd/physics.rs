//! Lennard-Jones physics: pairwise short-range forces with a cutoff and
//! minimum-image periodic boundaries, plus leapfrog integration — the
//! computation the paper describes as mimicking NAMD's short-range
//! non-bonded force kernel (the Numba-compiled part of LeanMD).

use serde::{Deserialize, Serialize};

/// One particle (unit mass).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Particle {
    /// Stable identity (for conservation checks).
    pub id: u64,
    /// Position (inside the periodic box).
    pub pos: [f64; 3],
    /// Velocity.
    pub vel: [f64; 3],
}

/// Minimum-image displacement `a - b` in a periodic box.
#[inline]
pub fn min_image(a: [f64; 3], b: [f64; 3], boxd: [f64; 3]) -> [f64; 3] {
    let mut d = [0.0; 3];
    for k in 0..3 {
        let mut x = a[k] - b[k];
        if x > boxd[k] * 0.5 {
            x -= boxd[k];
        } else if x < -boxd[k] * 0.5 {
            x += boxd[k];
        }
        d[k] = x;
    }
    d
}

/// LJ force on particle at displacement `d` (from its partner), with
/// parameters σ=1, ε=1 and the given cutoff. Returns `(force, potential)`.
/// The force is applied along `+d` to the first particle; Newton's third
/// law gives the partner `-force`.
#[inline]
pub fn lj(d: [f64; 3], cutoff: f64) -> ([f64; 3], f64) {
    let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
    if r2 >= cutoff * cutoff || r2 == 0.0 {
        return ([0.0; 3], 0.0);
    }
    // Softening floor keeps overlapping initial conditions finite.
    let r2 = r2.max(0.25);
    let inv_r2 = 1.0 / r2;
    let sr2 = inv_r2; // sigma = 1
    let sr6 = sr2 * sr2 * sr2;
    let sr12 = sr6 * sr6;
    // U = 4 (sr12 - sr6);  F = 24 (2 sr12 - sr6) / r^2 * d
    let fmag = 24.0 * (2.0 * sr12 - sr6) * inv_r2;
    ([fmag * d[0], fmag * d[1], fmag * d[2]], 4.0 * (sr12 - sr6))
}

/// Forces between two disjoint particle sets (one per cell). Returns the
/// per-particle forces for each set and the pair potential energy.
pub fn pair_forces(
    a: &[[f64; 3]],
    b: &[[f64; 3]],
    boxd: [f64; 3],
    cutoff: f64,
) -> (Vec<[f64; 3]>, Vec<[f64; 3]>, f64) {
    let mut fa = vec![[0.0; 3]; a.len()];
    let mut fb = vec![[0.0; 3]; b.len()];
    let mut energy = 0.0;
    for (i, &pa) in a.iter().enumerate() {
        for (j, &pb) in b.iter().enumerate() {
            let d = min_image(pa, pb, boxd);
            let (f, u) = lj(d, cutoff);
            for k in 0..3 {
                fa[i][k] += f[k];
                fb[j][k] -= f[k];
            }
            energy += u;
        }
    }
    (fa, fb, energy)
}

/// Forces among particles of one cell (each unordered pair once).
pub fn self_forces(a: &[[f64; 3]], boxd: [f64; 3], cutoff: f64) -> (Vec<[f64; 3]>, f64) {
    let mut fa = vec![[0.0; 3]; a.len()];
    let mut energy = 0.0;
    for i in 0..a.len() {
        for j in (i + 1)..a.len() {
            let d = min_image(a[i], a[j], boxd);
            let (f, u) = lj(d, cutoff);
            for k in 0..3 {
                fa[i][k] += f[k];
                fa[j][k] -= f[k];
            }
            energy += u;
        }
    }
    (fa, energy)
}

/// One leapfrog step for the particles of a cell; positions wrap into the
/// periodic box.
pub fn integrate(particles: &mut [Particle], forces: &[[f64; 3]], dt: f64, boxd: [f64; 3]) {
    assert_eq!(particles.len(), forces.len());
    for (p, f) in particles.iter_mut().zip(forces) {
        for k in 0..3 {
            p.vel[k] += f[k] * dt; // unit mass
            p.pos[k] += p.vel[k] * dt;
            // Wrap into [0, box).
            if p.pos[k] < 0.0 {
                p.pos[k] += boxd[k];
            } else if p.pos[k] >= boxd[k] {
                p.pos[k] -= boxd[k];
            }
        }
    }
}

/// Total momentum of a particle set.
pub fn momentum(particles: &[Particle]) -> [f64; 3] {
    let mut p = [0.0; 3];
    for q in particles {
        for (pk, vk) in p.iter_mut().zip(&q.vel) {
            *pk += vk;
        }
    }
    p
}

/// Total kinetic energy (unit mass).
pub fn kinetic(particles: &[Particle]) -> f64 {
    particles
        .iter()
        .map(|p| 0.5 * (p.vel[0].powi(2) + p.vel[1].powi(2) + p.vel[2].powi(2)))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_image_wraps() {
        let boxd = [10.0, 10.0, 10.0];
        let d = min_image([9.5, 0.0, 0.0], [0.5, 0.0, 0.0], boxd);
        assert!((d[0] - -1.0).abs() < 1e-12, "wraps to -1, got {}", d[0]);
        let d = min_image([3.0, 0.0, 0.0], [1.0, 0.0, 0.0], boxd);
        assert_eq!(d[0], 2.0);
    }

    #[test]
    fn lj_zero_beyond_cutoff() {
        let (f, u) = lj([3.0, 0.0, 0.0], 2.5);
        assert_eq!(f, [0.0; 3]);
        assert_eq!(u, 0.0);
    }

    #[test]
    fn lj_repulsive_close_attractive_far() {
        // Inside sigma: repulsive (force pushes the first particle along +d).
        let (f_close, _) = lj([0.9, 0.0, 0.0], 10.0);
        assert!(f_close[0] > 0.0, "repulsion at r<2^1/6: {f_close:?}");
        // Beyond the minimum (r = 2^(1/6) ≈ 1.122): attractive.
        let (f_far, _) = lj([1.5, 0.0, 0.0], 10.0);
        assert!(f_far[0] < 0.0, "attraction at r>2^1/6: {f_far:?}");
        // Potential minimum depth is -1 at r = 2^(1/6).
        let (_, u_min) = lj([2f64.powf(1.0 / 6.0), 0.0, 0.0], 10.0);
        assert!((u_min - -1.0).abs() < 1e-9);
    }

    #[test]
    fn pair_forces_obey_newtons_third_law() {
        let a = vec![[1.0, 1.0, 1.0], [2.0, 1.5, 1.0]];
        let b = vec![[1.5, 2.0, 1.2], [2.5, 2.5, 2.5], [0.5, 0.5, 0.9]];
        let (fa, fb, _) = pair_forces(&a, &b, [20.0; 3], 5.0);
        let mut sum = [0.0; 3];
        for f in fa.iter().chain(fb.iter()) {
            for (sk, fk) in sum.iter_mut().zip(f) {
                *sk += fk;
            }
        }
        for k in 0..3 {
            assert!(sum[k].abs() < 1e-10, "net force must vanish: {sum:?}");
        }
    }

    #[test]
    fn self_forces_sum_to_zero() {
        let a = vec![[1.0, 1.0, 1.0], [2.0, 1.0, 1.0], [1.5, 1.9, 1.3]];
        let (fa, _) = self_forces(&a, [20.0; 3], 5.0);
        let mut sum = [0.0; 3];
        for f in &fa {
            for k in 0..3 {
                sum[k] += f[k];
            }
        }
        for s in &sum {
            assert!(s.abs() < 1e-10);
        }
    }

    #[test]
    fn split_computation_matches_monolithic() {
        // Self(A∪B) == Self(A) + Self(B) + Pair(A,B): the decomposition
        // invariant the distributed version rests on.
        let a = vec![[1.0, 1.0, 1.0], [2.2, 1.1, 0.8]];
        let b = vec![[3.0, 2.0, 1.5], [1.4, 2.6, 2.0]];
        let boxd = [30.0; 3];
        let cutoff = 6.0;
        let mut all = a.clone();
        all.extend(&b);
        let (f_all, e_all) = self_forces(&all, boxd, cutoff);
        let (f_a, e_a) = self_forces(&a, boxd, cutoff);
        let (f_b, e_b) = self_forces(&b, boxd, cutoff);
        let (p_a, p_b, e_ab) = pair_forces(&a, &b, boxd, cutoff);
        assert!((e_all - (e_a + e_b + e_ab)).abs() < 1e-10);
        for i in 0..a.len() {
            for k in 0..3 {
                assert!((f_all[i][k] - (f_a[i][k] + p_a[i][k])).abs() < 1e-10);
            }
        }
        for j in 0..b.len() {
            for k in 0..3 {
                assert!((f_all[a.len() + j][k] - (f_b[j][k] + p_b[j][k])).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn integrate_conserves_momentum_under_zero_force() {
        let mut ps = vec![
            Particle {
                id: 0,
                pos: [1.0, 1.0, 1.0],
                vel: [0.5, -0.25, 0.1],
            },
            Particle {
                id: 1,
                pos: [2.0, 2.0, 2.0],
                vel: [-0.5, 0.25, -0.1],
            },
        ];
        let m0 = momentum(&ps);
        integrate(&mut ps, &[[0.0; 3]; 2], 0.01, [10.0; 3]);
        let m1 = momentum(&ps);
        for k in 0..3 {
            assert!((m0[k] - m1[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn integrate_wraps_positions() {
        let mut ps = vec![Particle {
            id: 0,
            pos: [9.99, 0.0, 5.0],
            vel: [10.0, -10.0, 0.0],
        }];
        integrate(&mut ps, &[[0.0; 3]], 0.1, [10.0; 3]);
        assert!(ps[0].pos[0] >= 0.0 && ps[0].pos[0] < 10.0);
        assert!(ps[0].pos[1] >= 0.0 && ps[0].pos[1] < 10.0);
    }
}
