//! The LeanMD chare program: a dense cell array plus a sparse 6D array of
//! pair computes, with guarded iteration matching and periodic particle
//! migration between cells.

use std::sync::{Arc, Mutex};

use charm_core::prelude::*;
use charm_core::Runtime;
use serde::{Deserialize, Serialize};

use super::physics::{self, Particle};
use super::{Cell, MdParams, MdResult};

fn cell_index(c: Cell) -> Index {
    Index::new(&[c[0] as i32, c[1] as i32, c[2] as i32])
}

fn pair_index(p: (Cell, Cell)) -> Index {
    Index::new(&[
        p.0[0] as i32,
        p.0[1] as i32,
        p.0[2] as i32,
        p.1[0] as i32,
        p.1[1] as i32,
        p.1[2] as i32,
    ])
}

/// Which step phase a cell is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Phase {
    /// Waiting for force contributions from the pair computes.
    Forces,
    /// Waiting for migrant-particle lists from neighbor cells.
    Migrate,
}

/// Constructor argument of a cell.
#[derive(Clone, Serialize, Deserialize)]
pub struct CellInit {
    /// Simulation parameters.
    pub params: MdParams,
    /// The sparse pair-compute array.
    pub computes: Proxy<ComputeChare>,
}

/// A spatial cell holding particles.
#[derive(Serialize, Deserialize)]
pub struct CellChare {
    params: MdParams,
    computes: Proxy<ComputeChare>,
    c: Cell,
    particles: Vec<Particle>,
    iter: u32,
    phase: Phase,
    forces: Vec<[f64; 3]>,
    forces_got: usize,
    expected_computes: usize,
    migr_got: usize,
    expected_neighbors: usize,
    potential: f64,
    started: bool,
    done: Option<Future<RedData>>,
}

/// Cell entry methods.
#[derive(Serialize, Deserialize)]
pub enum CellMsg {
    /// Begin the simulation.
    Start {
        /// Receives the final `[count, px, py, pz, kinetic, potential]`.
        done: Future<RedData>,
    },
    /// Forces for this cell's particles from one pair compute.
    Forces {
        /// Step the forces belong to.
        iter: u32,
        /// Per-particle forces, aligned with the positions this cell sent.
        forces: Vec<[f64; 3]>,
        /// Pair potential energy (attributed to the first cell only).
        energy: f64,
    },
    /// Particles that crossed into this cell from a neighbor.
    Migrants {
        /// Step of the exchange.
        iter: u32,
        /// The particles (possibly none).
        particles: Vec<Particle>,
    },
}

impl CellChare {
    fn send_positions(&self, ctx: &mut Ctx) {
        let pos: Vec<[f64; 3]> = self.particles.iter().map(|p| p.pos).collect();
        for pair in self.params.computes_of(self.c) {
            let which = if pair.0 == self.c { 0u8 } else { 1u8 };
            self.computes.elem(pair_index(pair)).send(
                ctx,
                ComputeMsg::Positions {
                    iter: self.iter,
                    which,
                    pos: pos.clone(),
                },
            );
        }
    }

    fn begin_step(&mut self, ctx: &mut Ctx) {
        self.phase = Phase::Forces;
        self.forces = vec![[0.0; 3]; self.particles.len()];
        self.forces_got = 0;
        self.potential = 0.0;
        self.send_positions(ctx);
    }

    fn finish(&mut self, ctx: &mut Ctx) {
        let m = physics::momentum(&self.particles);
        let ke = physics::kinetic(&self.particles);
        let done = self.done.expect("finish without Start");
        ctx.contribute(
            RedData::VecF64(vec![
                self.particles.len() as f64,
                m[0],
                m[1],
                m[2],
                ke,
                self.potential,
            ]),
            Reducer::Sum,
            RedTarget::Future(done.id()),
        );
    }

    fn after_forces(&mut self, ctx: &mut Ctx) {
        physics::integrate(
            &mut self.particles,
            &self.forces,
            self.params.dt,
            self.params.box_dims(),
        );
        let stepped = self.iter + 1;
        if stepped.is_multiple_of(self.params.migrate_every) && stepped < self.params.steps {
            self.exchange_particles(ctx);
            return;
        }
        self.advance(ctx);
    }

    fn exchange_particles(&mut self, ctx: &mut Ctx) {
        self.phase = Phase::Migrate;
        self.migr_got = 0;
        let me = ctx.this_proxy::<CellChare>();
        let neighbors = self.params.neighbor_cells(self.c);
        let mut outgoing: Vec<Vec<Particle>> = vec![Vec::new(); neighbors.len()];
        let mut keep = Vec::with_capacity(self.particles.len());
        for p in self.particles.drain(..) {
            let owner = self.params.cell_of(p.pos);
            if owner == self.c {
                keep.push(p);
            } else {
                let slot = neighbors
                    .iter()
                    .position(|n| *n == owner)
                    .unwrap_or_else(|| {
                        panic!(
                            "particle {} jumped from cell {:?} to non-adjacent {:?}; \
                             reduce dt or migrate_every",
                            p.id, self.c, owner
                        )
                    });
                outgoing[slot].push(p);
            }
        }
        self.particles = keep;
        for (n, list) in neighbors.into_iter().zip(outgoing) {
            me.elem(cell_index(n)).send(
                ctx,
                CellMsg::Migrants {
                    iter: self.iter,
                    particles: list,
                },
            );
        }
    }

    fn advance(&mut self, ctx: &mut Ctx) {
        self.iter += 1;
        if self.iter >= self.params.steps {
            self.finish(ctx);
        } else {
            self.begin_step(ctx);
        }
    }
}

impl Chare for CellChare {
    type Msg = CellMsg;
    type Init = CellInit;

    fn create(init: CellInit, ctx: &mut Ctx) -> Self {
        let ix = ctx.my_index();
        let c = [
            ix.coords()[0] as usize,
            ix.coords()[1] as usize,
            ix.coords()[2] as usize,
        ];
        let params = init.params;
        let particles = params.init_particles(c);
        let expected_computes = params.computes_of(c).len();
        let expected_neighbors = params.neighbor_cells(c).len();
        CellChare {
            computes: init.computes,
            c,
            particles,
            iter: 0,
            phase: Phase::Forces,
            forces: Vec::new(),
            forces_got: 0,
            expected_computes,
            migr_got: 0,
            expected_neighbors,
            potential: 0.0,
            started: false,
            done: None,
            params,
        }
    }

    // when-conditions: each message kind only lands in its phase and step.
    fn guard(&self, msg: &CellMsg) -> bool {
        match msg {
            CellMsg::Start { .. } => true,
            CellMsg::Forces { iter, .. } => {
                self.started && self.phase == Phase::Forces && *iter == self.iter
            }
            CellMsg::Migrants { iter, .. } => {
                self.started && self.phase == Phase::Migrate && *iter == self.iter
            }
        }
    }

    fn receive(&mut self, msg: CellMsg, ctx: &mut Ctx) {
        match msg {
            CellMsg::Start { done } => {
                self.started = true;
                self.done = Some(done);
                if self.params.steps == 0 {
                    self.finish(ctx);
                } else {
                    self.begin_step(ctx);
                }
            }
            CellMsg::Forces { forces, energy, .. } => {
                assert_eq!(
                    forces.len(),
                    self.particles.len(),
                    "force vector misaligned at cell {:?}",
                    self.c
                );
                for (acc, f) in self.forces.iter_mut().zip(&forces) {
                    for k in 0..3 {
                        acc[k] += f[k];
                    }
                }
                self.potential += energy;
                self.forces_got += 1;
                if self.forces_got == self.expected_computes {
                    self.after_forces(ctx);
                }
            }
            CellMsg::Migrants { particles, .. } => {
                self.particles.extend(particles);
                self.migr_got += 1;
                if self.migr_got == self.expected_neighbors {
                    // Deterministic ordering regardless of arrival order.
                    self.particles.sort_by_key(|p| p.id);
                    self.advance(ctx);
                }
            }
        }
    }
}

/// Constructor argument of a pair compute.
#[derive(Clone, Serialize, Deserialize)]
pub struct ComputeInit {
    /// Simulation parameters.
    pub params: MdParams,
    /// The cell array, for returning forces.
    pub cells: Proxy<CellChare>,
}

/// A pair compute: evaluates LJ forces between two adjacent cells (or
/// within one, for self-pairs).
pub struct ComputeChare {
    params: MdParams,
    cells: Proxy<CellChare>,
    c1: Cell,
    c2: Cell,
    iter: u32,
    pos1: Option<Vec<[f64; 3]>>,
    pos2: Option<Vec<[f64; 3]>>,
}

/// Compute entry methods.
#[derive(Serialize, Deserialize)]
pub enum ComputeMsg {
    /// One cell's particle positions for a step.
    Positions {
        /// The step.
        iter: u32,
        /// 0 = first cell of the pair, 1 = second.
        which: u8,
        /// Positions, in the cell's particle order.
        pos: Vec<[f64; 3]>,
    },
}

impl Chare for ComputeChare {
    type Msg = ComputeMsg;
    type Init = ComputeInit;

    fn create(init: ComputeInit, ctx: &mut Ctx) -> Self {
        let ix = ctx.my_index();
        let v = ix.coords();
        ComputeChare {
            params: init.params,
            cells: init.cells,
            c1: [v[0] as usize, v[1] as usize, v[2] as usize],
            c2: [v[3] as usize, v[4] as usize, v[5] as usize],
            iter: 0,
            pos1: None,
            pos2: None,
        }
    }

    fn guard(&self, msg: &ComputeMsg) -> bool {
        let ComputeMsg::Positions { iter, .. } = msg;
        *iter == self.iter
    }

    fn receive(&mut self, msg: ComputeMsg, ctx: &mut Ctx) {
        let ComputeMsg::Positions { which, pos, .. } = msg;
        match which {
            0 => self.pos1 = Some(pos),
            _ => self.pos2 = Some(pos),
        }
        let is_self = self.c1 == self.c2;
        let ready = self.pos1.is_some() && (is_self || self.pos2.is_some());
        if !ready {
            return;
        }
        let boxd = self.params.box_dims();
        let cutoff = self.params.cutoff;
        let iter = self.iter;
        if is_self {
            let a = self.pos1.take().unwrap();
            let (fa, energy) = physics::self_forces(&a, boxd, cutoff);
            self.cells.elem(cell_index(self.c1)).send(
                ctx,
                CellMsg::Forces {
                    iter,
                    forces: fa,
                    energy,
                },
            );
        } else {
            let a = self.pos1.take().unwrap();
            let b = self.pos2.take().unwrap();
            let (fa, fb, energy) = physics::pair_forces(&a, &b, boxd, cutoff);
            self.cells.elem(cell_index(self.c1)).send(
                ctx,
                CellMsg::Forces {
                    iter,
                    forces: fa,
                    energy, // attribute pair energy to the first cell only
                },
            );
            self.cells.elem(cell_index(self.c2)).send(
                ctx,
                CellMsg::Forces {
                    iter,
                    forces: fb,
                    energy: 0.0,
                },
            );
        }
        self.iter += 1;
    }
}

/// Shared-slot type used to pass results out of the runtime closure.
type MdOut = Arc<Mutex<Option<(f64, Vec<f64>)>>>;

/// Run LeanMD on the given runtime.
pub fn run_charm(params: MdParams, mut rt: Runtime) -> MdResult {
    assert!(
        params.cell_size >= params.cutoff,
        "cell size must cover the cutoff so neighbor cells suffice"
    );
    // Computes are placed with their first cell (locality, as in LeanMD).
    let p2 = params.clone();
    let placement = rt.add_placement(move |ix, npes| {
        let v = ix.coords();
        let lin = (v[0] as usize * p2.cells[1] + v[1] as usize) * p2.cells[2] + v[2] as usize;
        (lin * npes) / p2.num_cells().max(1)
    });
    let out: MdOut = Arc::new(Mutex::new(None));
    let out2 = Arc::clone(&out);
    let steps = params.steps.max(1) as f64;
    let report = rt
        .register_migratable::<CellChare>()
        .register::<ComputeChare>()
        .run(move |co| {
            let computes = co.ctx().create_sparse::<ComputeChare>(ArrayOpts {
                placement,
                use_lb: false,
            });
            let dims = [
                params.cells[0] as i32,
                params.cells[1] as i32,
                params.cells[2] as i32,
            ];
            let cells = co.ctx().create_array_with::<CellChare>(
                &dims,
                CellInit {
                    params: params.clone(),
                    computes,
                },
                ArrayOpts {
                    placement: Placement::Block,
                    use_lb: false,
                },
            );
            for pair in params.all_computes() {
                computes.insert(
                    co.ctx(),
                    pair_index(pair),
                    ComputeInit {
                        params: params.clone(),
                        cells,
                    },
                    None,
                );
            }
            computes.done_inserting(co.ctx());
            let done = co.ctx().create_future::<RedData>();
            let t0 = co.ctx().now();
            cells.send(co.ctx(), CellMsg::Start { done });
            let stats = co.get(&done);
            let t1 = co.ctx().now();
            *out2.lock().unwrap() = Some((t1 - t0, stats.as_vec_f64().to_vec()));
            co.ctx().exit();
        });
    let (total, stats) = out
        .lock()
        .unwrap()
        .take()
        .expect("leanmd run produced no result");
    MdResult {
        total_time_s: total,
        time_per_step_ms: total * 1e3 / steps,
        particles: stats[0] as u64,
        momentum: [stats[1], stats[2], stats[3]],
        kinetic: stats[4],
        report,
    }
}
