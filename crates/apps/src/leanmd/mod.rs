//! LeanMD — the paper's molecular dynamics mini-app (§V-C).
//!
//! Structure follows the Charm++ original: a dense 3D chare array of
//! *cells* (spatial boxes holding particles) and a *sparse* 6D chare array
//! of *pair computes*, one per adjacent cell pair (self-pairs included).
//! Each timestep every cell sends its particle positions to the computes it
//! participates in; computes evaluate Lennard-Jones forces and return them;
//! cells integrate and periodically exchange particles that crossed cell
//! boundaries. The decomposition is deliberately fine-grained — hundreds of
//! chares per PE at scale — which is exactly the regime where the paper
//! reports CharmPy's ~20% runtime overhead over Charm++.

pub mod charm;
pub mod physics;

use serde::{Deserialize, Serialize};

pub use physics::Particle;

/// Cell coordinates.
pub type Cell = [usize; 3];

/// Simulation parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MdParams {
    /// Cell grid extent.
    pub cells: [usize; 3],
    /// Particles initially placed in each cell.
    pub per_cell: usize,
    /// Edge length of one cell (must be ≥ the force cutoff).
    pub cell_size: f64,
    /// Force cutoff radius.
    pub cutoff: f64,
    /// Timestep.
    pub dt: f64,
    /// Steps to run.
    pub steps: u32,
    /// Exchange boundary-crossing particles every this many steps.
    pub migrate_every: u32,
    /// RNG seed for initial velocities.
    pub seed: u64,
}

impl MdParams {
    /// A small, stable default configuration.
    pub fn small() -> MdParams {
        MdParams {
            cells: [3, 3, 3],
            per_cell: 8,
            cell_size: 4.0,
            cutoff: 4.0,
            dt: 0.002,
            steps: 20,
            migrate_every: 5,
            seed: 42,
        }
    }

    /// Simulation box dimensions.
    pub fn box_dims(&self) -> [f64; 3] {
        [
            self.cells[0] as f64 * self.cell_size,
            self.cells[1] as f64 * self.cell_size,
            self.cells[2] as f64 * self.cell_size,
        ]
    }

    /// Total number of cells.
    pub fn num_cells(&self) -> usize {
        self.cells.iter().product()
    }

    /// Total particles.
    pub fn num_particles(&self) -> usize {
        self.num_cells() * self.per_cell
    }

    /// The cell owning a position.
    pub fn cell_of(&self, pos: [f64; 3]) -> Cell {
        let mut c = [0usize; 3];
        for k in 0..3 {
            let idx = (pos[k] / self.cell_size).floor() as i64;
            c[k] = idx.rem_euclid(self.cells[k] as i64) as usize;
        }
        c
    }

    /// The 26 periodic neighbor cells of `c`, deduplicated (degenerate
    /// small grids fold several offsets onto one cell), sorted, excluding
    /// `c` itself.
    pub fn neighbor_cells(&self, c: Cell) -> Vec<Cell> {
        let mut out = Vec::new();
        for dx in -1i64..=1 {
            for dy in -1i64..=1 {
                for dz in -1i64..=1 {
                    if dx == 0 && dy == 0 && dz == 0 {
                        continue;
                    }
                    let n = [
                        (c[0] as i64 + dx).rem_euclid(self.cells[0] as i64) as usize,
                        (c[1] as i64 + dy).rem_euclid(self.cells[1] as i64) as usize,
                        (c[2] as i64 + dz).rem_euclid(self.cells[2] as i64) as usize,
                    ];
                    if n != c {
                        out.push(n);
                    }
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// All pair computes, as sorted unique `(c1, c2)` with `c1 <= c2`;
    /// `c1 == c2` are the self-computes. This enumeration is shared by the
    /// driver (which inserts the sparse array) and the cells (which count
    /// how many force messages to expect).
    pub fn all_computes(&self) -> Vec<(Cell, Cell)> {
        let mut out = Vec::new();
        for x in 0..self.cells[0] {
            for y in 0..self.cells[1] {
                for z in 0..self.cells[2] {
                    let c = [x, y, z];
                    out.push((c, c));
                    for n in self.neighbor_cells(c) {
                        if c <= n {
                            out.push((c, n));
                        }
                    }
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// The computes a given cell participates in.
    pub fn computes_of(&self, c: Cell) -> Vec<(Cell, Cell)> {
        let mut out = vec![(c, c)];
        for n in self.neighbor_cells(c) {
            out.push(if c <= n { (c, n) } else { (n, c) });
        }
        out.sort();
        out.dedup();
        out
    }

    /// Deterministic initial particles for one cell: a jittered lattice
    /// with small pseudo-random velocities (net momentum exactly zero per
    /// particle pair, so the global momentum starts at zero).
    pub fn init_particles(&self, c: Cell) -> Vec<Particle> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let lin = (c[0] * self.cells[1] + c[1]) * self.cells[2] + c[2];
        let mut rng = StdRng::seed_from_u64(self.seed ^ (lin as u64).wrapping_mul(0x9E3779B9));
        let base = [
            c[0] as f64 * self.cell_size,
            c[1] as f64 * self.cell_size,
            c[2] as f64 * self.cell_size,
        ];
        // Lattice side: smallest k with k^3 >= per_cell.
        let mut k = 1usize;
        while k * k * k < self.per_cell {
            k += 1;
        }
        let spacing = self.cell_size / k as f64;
        let mut out = Vec::with_capacity(self.per_cell);
        let mut placed = 0;
        'outer: for i in 0..k {
            for j in 0..k {
                for l in 0..k {
                    if placed >= self.per_cell {
                        break 'outer;
                    }
                    let mut jitter = || (rng.gen::<f64>() - 0.5) * spacing * 0.1;
                    let pos = [
                        base[0] + (i as f64 + 0.5) * spacing + jitter(),
                        base[1] + (j as f64 + 0.5) * spacing + jitter(),
                        base[2] + (l as f64 + 0.5) * spacing + jitter(),
                    ];
                    let mut vel = || (rng.gen::<f64>() - 0.5) * 0.2;
                    out.push(Particle {
                        id: (lin * self.per_cell + placed) as u64,
                        pos,
                        vel: [vel(), vel(), vel()],
                    });
                    placed += 1;
                }
            }
        }
        // Zero the cell's net momentum so the global total starts at 0.
        let m = physics::momentum(&out);
        let n = out.len() as f64;
        for p in &mut out {
            for (vk, mk) in p.vel.iter_mut().zip(&m) {
                *vk -= mk / n;
            }
        }
        out
    }
}

/// Result of one LeanMD run.
#[derive(Debug, Clone)]
pub struct MdResult {
    /// Iteration-loop time, seconds (virtual under sim).
    pub total_time_s: f64,
    /// Time per step, milliseconds.
    pub time_per_step_ms: f64,
    /// Final particle count (conservation check).
    pub particles: u64,
    /// Final total momentum (conservation check; ≈ 0).
    pub momentum: [f64; 3],
    /// Final kinetic energy.
    pub kinetic: f64,
    /// The runtime's report.
    pub report: charm_core::RunReport,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbor_cells_full_grid() {
        let p = MdParams {
            cells: [4, 4, 4],
            ..MdParams::small()
        };
        let n = p.neighbor_cells([1, 1, 1]);
        assert_eq!(n.len(), 26);
        assert!(!n.contains(&[1, 1, 1]));
    }

    #[test]
    fn neighbor_cells_degenerate_grid_dedup() {
        let p = MdParams {
            cells: [2, 2, 2],
            ..MdParams::small()
        };
        // On a 2³ torus the 26 offsets fold onto the 7 other cells.
        let n = p.neighbor_cells([0, 0, 0]);
        assert_eq!(n.len(), 7);
    }

    #[test]
    fn computes_cover_every_adjacent_pair_once() {
        let p = MdParams {
            cells: [3, 3, 3],
            ..MdParams::small()
        };
        let all = p.all_computes();
        // Uniqueness.
        let mut dedup = all.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len());
        // Every cell's compute list is a subset, and each pair names it.
        for x in 0..3 {
            for y in 0..3 {
                for z in 0..3 {
                    let c = [x, y, z];
                    for pair in p.computes_of(c) {
                        assert!(all.contains(&pair), "{pair:?} missing");
                        assert!(pair.0 == c || pair.1 == c);
                    }
                }
            }
        }
        // 27 self + 27*26/2 unordered neighbor pairs on a 3³ torus (every
        // pair of distinct cells is adjacent there).
        assert_eq!(all.len(), 27 + 27 * 26 / 2);
    }

    #[test]
    fn cell_of_wraps_positions() {
        let p = MdParams::small(); // 3 cells of size 4 per axis
        assert_eq!(p.cell_of([0.5, 5.0, 11.9]), [0, 1, 2]);
        assert_eq!(p.cell_of([-0.5, 12.1, 4.0]), [2, 0, 1]);
    }

    #[test]
    fn init_particles_deterministic_zero_momentum() {
        let p = MdParams::small();
        let a = p.init_particles([1, 2, 0]);
        let b = p.init_particles([1, 2, 0]);
        assert_eq!(a, b);
        assert_eq!(a.len(), p.per_cell);
        let m = physics::momentum(&a);
        for mk in &m {
            assert!(mk.abs() < 1e-12);
        }
        // Particles start inside their cell.
        for q in &a {
            assert_eq!(p.cell_of(q.pos), [1, 2, 0]);
        }
    }

    #[test]
    fn ids_globally_unique() {
        let p = MdParams::small();
        let mut ids = Vec::new();
        for x in 0..3 {
            for y in 0..3 {
                for z in 0..3 {
                    ids.extend(p.init_particles([x, y, z]).iter().map(|q| q.id));
                }
            }
        }
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), p.num_particles());
    }
}
