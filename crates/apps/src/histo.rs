//! Histogram sort — the canonical Charm++ example application, added here
//! as a third mini-app. Each chare holds random keys; a histogram
//! reduction picks splitters; chares exchange key ranges all-to-all and
//! sort locally, yielding a globally sorted distribution.
//!
//! Exercises, in one program: vector reductions, reduction-to-broadcast
//! targets, `when`-guarded phases, and element-to-element traffic.

use std::sync::{Arc, Mutex};

use charm_core::prelude::*;
use charm_core::Runtime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Sort parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistoParams {
    /// Number of sorter chares.
    pub chares: usize,
    /// Keys per chare (initially).
    pub keys_per_chare: usize,
    /// Number of histogram probe bins (≥ chares).
    pub bins: usize,
    /// Key space is `[0, key_max)`.
    pub key_max: u64,
    /// RNG seed.
    pub seed: u64,
}

impl HistoParams {
    /// A small default configuration.
    pub fn small() -> HistoParams {
        HistoParams {
            chares: 8,
            keys_per_chare: 500,
            bins: 64,
            key_max: 1 << 20,
            seed: 99,
        }
    }
}

/// Result of a sort run.
#[derive(Debug, Clone)]
pub struct HistoResult {
    /// Keys in the system after sorting (must equal the input count).
    pub total_keys: u64,
    /// Sum of all keys (conservation check).
    pub key_sum: u64,
    /// Whether the global distribution is sorted (chare i's max ≤ chare
    /// i+1's min, and each chare locally sorted).
    pub sorted: bool,
    /// Largest chare's share divided by the average (balance metric).
    pub imbalance: f64,
    /// Runtime report.
    pub report: charm_core::RunReport,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Phase {
    Histogram,
    Exchange,
}

/// One sorter chare.
#[derive(Serialize, Deserialize)]
pub struct Sorter {
    params: HistoParams,
    keys: Vec<u64>,
    phase: Phase,
    splitters: Vec<u64>,
    recv_count: usize,
    done: Option<Future<RedData>>,
}

/// Sorter entry methods.
#[derive(Serialize, Deserialize)]
pub enum SorterMsg {
    /// Begin: histogram, exchange, sort, report.
    Start {
        /// Receives `[count, key_sum_lo..]` plus the gathered summaries.
        done: Future<RedData>,
    },
    /// A partition of keys destined for this chare's range.
    Keys {
        /// The keys (possibly empty).
        keys: Vec<u64>,
    },
}

const TAG_HISTOGRAM: u32 = 1;
const TAG_SUMMARY: u32 = 2;

impl Sorter {
    fn histogram(&self) -> Vec<i64> {
        let mut h = vec![0i64; self.params.bins];
        let w = (self.params.key_max / self.params.bins as u64).max(1);
        for &k in &self.keys {
            let b = ((k / w) as usize).min(self.params.bins - 1);
            h[b] += 1;
        }
        h
    }

    /// Turn the global histogram into `chares - 1` splitters giving each
    /// chare an approximately equal share.
    fn splitters_from(&self, hist: &[i64]) -> Vec<u64> {
        let total: i64 = hist.iter().sum();
        let per = (total as f64 / self.params.chares as f64).ceil() as i64;
        let w = (self.params.key_max / self.params.bins as u64).max(1);
        let mut out = Vec::with_capacity(self.params.chares - 1);
        let mut acc = 0i64;
        let mut next = per;
        for (b, &c) in hist.iter().enumerate() {
            acc += c;
            while acc >= next && out.len() < self.params.chares - 1 {
                out.push((b as u64 + 1) * w);
                next += per;
            }
        }
        while out.len() < self.params.chares - 1 {
            out.push(self.params.key_max);
        }
        out
    }

    fn owner_of(&self, key: u64) -> usize {
        self.splitters.partition_point(|&s| s <= key)
    }

    fn exchange(&mut self, ctx: &mut Ctx) {
        self.phase = Phase::Exchange;
        let n = self.params.chares;
        let mut parts: Vec<Vec<u64>> = vec![Vec::new(); n];
        let keys = std::mem::take(&mut self.keys);
        for k in keys {
            let owner = self.owner_of(k);
            parts[owner].push(k);
        }
        let me = ctx.this_proxy::<Sorter>();
        for (dest, keys) in parts.into_iter().enumerate() {
            // Every chare sends to every chare (possibly empty), so the
            // expected receive count is deterministic.
            me.elem(dest as i32).send(ctx, SorterMsg::Keys { keys });
        }
    }

    fn finish(&mut self, ctx: &mut Ctx) {
        self.keys.sort_unstable();
        let count = self.keys.len() as i64;
        let sum = self.keys.iter().fold(0u64, |a, &k| a.wrapping_add(k)) as i64;
        let lo = self.keys.first().copied().unwrap_or(u64::MAX) as i64;
        let hi = self.keys.last().copied().unwrap_or(0) as i64;
        let done = self.done.expect("finish without Start");
        // Gather per-chare summaries at the caller, sorted by index.
        ctx.contribute_gather(&vec![count, sum, lo, hi], RedTarget::Future(done.id()));
        let _ = TAG_SUMMARY;
    }
}

impl Chare for Sorter {
    type Msg = SorterMsg;
    type Init = HistoParams;

    fn create(params: HistoParams, ctx: &mut Ctx) -> Self {
        let me = ctx.my_index().first() as u64;
        let mut rng = StdRng::seed_from_u64(params.seed ^ me.wrapping_mul(0x9E3779B9));
        // A skewed distribution (quadratic) so uniform splitters would be
        // badly unbalanced — the histogram has to earn its keep.
        let keys: Vec<u64> = (0..params.keys_per_chare)
            .map(|_| {
                let u: f64 = rng.gen();
                ((u * u) * params.key_max as f64) as u64
            })
            .collect();
        Sorter {
            params,
            keys,
            phase: Phase::Histogram,
            splitters: Vec::new(),
            recv_count: 0,
            done: None,
        }
    }

    fn guard(&self, msg: &SorterMsg) -> bool {
        match msg {
            SorterMsg::Start { .. } => true,
            // Key partitions only land once the splitters are known.
            SorterMsg::Keys { .. } => self.phase == Phase::Exchange,
        }
    }

    fn receive(&mut self, msg: SorterMsg, ctx: &mut Ctx) {
        match msg {
            SorterMsg::Start { done } => {
                self.done = Some(done);
                let h = self.histogram();
                let target = ctx.this_proxy::<Sorter>().reduction_target(TAG_HISTOGRAM);
                ctx.contribute(RedData::VecI64(h), Reducer::Sum, target);
            }
            SorterMsg::Keys { keys } => {
                self.keys.extend(keys);
                self.recv_count += 1;
                if self.recv_count == self.params.chares {
                    self.finish(ctx);
                }
            }
        }
    }

    fn reduced(&mut self, tag: u32, data: RedData, ctx: &mut Ctx) {
        assert_eq!(tag, TAG_HISTOGRAM);
        self.splitters = self.splitters_from(data.as_vec_i64());
        self.exchange(ctx);
    }
}

/// Run the histogram sort; the caller supplies the runtime (backend,
/// dispatch mode, PE count).
pub fn run_histo(params: HistoParams, rt: Runtime) -> HistoResult {
    assert!(params.chares >= 1 && params.bins >= params.chares);
    let out: Arc<Mutex<Option<RedData>>> = Arc::new(Mutex::new(None));
    let out2 = Arc::clone(&out);
    let n = params.chares;
    // Gather payloads carry the active wire codec of the runtime.
    let codec = match rt.dispatch_mode() {
        DispatchMode::Native => charm_wire::Codec::Fast,
        DispatchMode::Dynamic => charm_wire::Codec::Pickle,
    };
    let report = rt.register_migratable::<Sorter>().run(move |co| {
        let arr = co
            .ctx()
            .create_array::<Sorter>(&[params.chares as i32], params.clone());
        let done = co.ctx().create_future::<RedData>();
        arr.send(co.ctx(), SorterMsg::Start { done });
        *out2.lock().unwrap() = Some(co.get(&done));
        co.ctx().exit();
    });
    let gathered = out
        .lock()
        .unwrap()
        .take()
        .expect("histo produced no result");
    let RedData::Gather(items) = gathered else {
        panic!("expected gathered summaries");
    };
    let mut total = 0u64;
    let mut key_sum = 0u64;
    let mut sorted = items.len() == n;
    let mut prev_hi: i64 = -1;
    let mut max_share = 0u64;
    for (k, (ix, bytes)) in items.iter().enumerate() {
        sorted &= ix.first() as usize == k;
        let v: Vec<i64> = codec.decode(bytes).expect("summary decode");
        let (count, sum, lo, hi) = (v[0], v[1], v[2], v[3]);
        total += count as u64;
        key_sum = key_sum.wrapping_add(sum as u64);
        max_share = max_share.max(count as u64);
        if count > 0 {
            sorted &= lo >= prev_hi; // ranges must not overlap out of order
            sorted &= lo <= hi;
            prev_hi = hi;
        }
    }
    let avg = total as f64 / n as f64;
    HistoResult {
        total_keys: total,
        key_sum,
        sorted,
        imbalance: if avg > 0.0 {
            max_share as f64 / avg
        } else {
            1.0
        },
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitters_balance_a_skewed_histogram() {
        let params = HistoParams {
            chares: 4,
            bins: 16,
            ..HistoParams::small()
        };
        let sorter = Sorter {
            params: params.clone(),
            keys: Vec::new(),
            phase: Phase::Histogram,
            splitters: Vec::new(),
            recv_count: 0,
            done: None,
        };
        // All mass in the first quarter of the key space.
        let mut hist = vec![0i64; 16];
        for (b, h) in hist.iter_mut().enumerate().take(4) {
            *h = 100 - 10 * b as i64;
        }
        let sp = sorter.splitters_from(&hist);
        assert_eq!(sp.len(), 3);
        // Splitters must sit inside the occupied quarter, not spread evenly.
        let w = params.key_max / 16;
        assert!(sp.iter().all(|&s| s <= 5 * w), "{sp:?}");
        assert!(sp.windows(2).all(|p| p[0] <= p[1]));
    }

    #[test]
    fn owner_of_respects_splitters() {
        let mut sorter = Sorter {
            params: HistoParams::small(),
            keys: Vec::new(),
            phase: Phase::Histogram,
            splitters: vec![10, 20, 30],
            recv_count: 0,
            done: None,
        };
        sorter.params.chares = 4;
        assert_eq!(sorter.owner_of(5), 0);
        assert_eq!(sorter.owner_of(10), 1);
        assert_eq!(sorter.owner_of(19), 1);
        assert_eq!(sorter.owner_of(25), 2);
        assert_eq!(sorter.owner_of(1000), 3);
    }
}
