//! Pool semantics: ordered results, concurrent jobs, dynamic balancing of
//! disparate task costs, job queueing when PEs are busy.

use std::time::Duration;

use charm_core::{Backend, Runtime};
use charm_pool::{register_pool, register_task, PoolHandle};
use charm_sim::MachineModel;

fn rt(npes: usize, sim: bool) -> Runtime {
    let rt = Runtime::new(npes);
    if sim {
        rt.backend(Backend::Sim(MachineModel::local(npes)))
    } else {
        rt
    }
}

#[test]
fn map_returns_results_in_input_order() {
    for sim in [false, true] {
        let square = register_task(|x: f64| x * x);
        register_pool(rt(4, sim)).run(move |co| {
            let pool = PoolHandle::create(co.ctx());
            let tasks: Vec<f64> = (0..20).map(|i| i as f64).collect();
            let job = pool.map_async(co.ctx(), square, 3, &tasks);
            let out = job.get(co);
            let expect: Vec<f64> = (0..20).map(|i| (i * i) as f64).collect();
            assert_eq!(out, expect);
            co.ctx().exit();
        });
    }
}

#[test]
fn concurrent_jobs_like_the_paper_main() {
    // The paper's main: two jobs launched together, both futures collected.
    for sim in [false, true] {
        let square = register_task(|x: i64| x * x);
        let neg = register_task(|x: i64| -x);
        register_pool(rt(5, sim)).run(move |co| {
            let pool = PoolHandle::create(co.ctx());
            let j1 = pool.map_async(co.ctx(), square, 2, &[1, 2, 3, 4, 5]);
            let j2 = pool.map_async(co.ctx(), neg, 2, &[1, 3, 5, 7, 9]);
            assert_eq!(j1.get(co), vec![1, 4, 9, 16, 25]);
            assert_eq!(j2.get(co), vec![-1, -3, -5, -7, -9]);
            co.ctx().exit();
        });
    }
}

#[test]
fn string_tasks_roundtrip() {
    let shout = register_task(|s: String| s.to_uppercase());
    register_pool(rt(2, true)).run(move |co| {
        let pool = PoolHandle::create(co.ctx());
        let job = pool.map_async(
            co.ctx(),
            shout,
            1,
            &["chare".to_string(), "proxy".to_string()],
        );
        assert_eq!(job.get(co), vec!["CHARE".to_string(), "PROXY".to_string()]);
        co.ctx().exit();
    });
}

#[test]
fn more_tasks_than_workers_dynamic_handout() {
    let inc = register_task(|x: u64| x + 1);
    register_pool(rt(3, false)).run(move |co| {
        let pool = PoolHandle::create(co.ctx());
        // 50 tasks on 2 worker PEs: each worker must serve many tasks.
        let tasks: Vec<u64> = (0..50).collect();
        let job = pool.map_async(co.ctx(), inc, 2, &tasks);
        assert_eq!(job.get(co), (1..=50).collect::<Vec<u64>>());
        co.ctx().exit();
    });
}

#[test]
fn queued_job_runs_after_first_finishes() {
    // 2 PEs → one worker PE. The second job must wait for the first.
    let ident = register_task(|x: u32| x);
    register_pool(rt(2, false)).run(move |co| {
        let pool = PoolHandle::create(co.ctx());
        let j1 = pool.map_async(co.ctx(), ident, 1, &[1, 2, 3]);
        let j2 = pool.map_async(co.ctx(), ident, 1, &[4, 5]);
        assert_eq!(j1.get(co), vec![1, 2, 3]);
        assert_eq!(j2.get(co), vec![4, 5]);
        co.ctx().exit();
    });
}

#[test]
fn single_pe_pool_still_works() {
    let dbl = register_task(|x: i32| 2 * x);
    register_pool(rt(1, false)).run(move |co| {
        let pool = PoolHandle::create(co.ctx());
        let job = pool.map_async(co.ctx(), dbl, 1, &[7, 8]);
        assert_eq!(job.get(co), vec![14, 16]);
        co.ctx().exit();
    });
}

#[test]
fn disparate_task_costs_balance_across_workers() {
    // Tasks sleep unevenly; with dynamic handout the wall time is near the
    // critical path, not the sum. (Threads backend so sleeps overlap.)
    let slow = register_task(|ms: u64| {
        std::thread::sleep(Duration::from_millis(ms));
        ms
    });
    register_pool(rt(5, false)).run(move |co| {
        let pool = PoolHandle::create(co.ctx());
        // One 80ms task and twelve 10ms tasks over 4 workers: ideal ≈ 80ms;
        // a static split could hit 80+30 = 110ms+.
        let mut tasks = vec![80u64];
        tasks.extend(std::iter::repeat_n(10, 12));
        let t0 = std::time::Instant::now();
        let job = pool.map_async(co.ctx(), slow, 4, &tasks);
        let out = job.get(co);
        let elapsed = t0.elapsed();
        assert_eq!(out.len(), 13);
        assert!(
            elapsed < Duration::from_millis(220),
            "dynamic handout should be near the 80ms critical path, took {elapsed:?}"
        );
        co.ctx().exit();
    });
}

#[test]
fn submit_single_task() {
    let cube = register_task(|x: i64| x * x * x);
    register_pool(rt(3, true)).run(move |co| {
        let pool = PoolHandle::create(co.ctx());
        let a = pool.submit(co.ctx(), cube, 3);
        let b = pool.submit(co.ctx(), cube, 4);
        assert_eq!(a.get(co), vec![27]);
        assert_eq!(b.get(co), vec![64]);
        co.ctx().exit();
    });
}
