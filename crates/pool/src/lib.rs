//! # charm-pool — distributed parallel map with concurrent jobs
//!
//! A faithful implementation of the paper's §III use case: a master-worker
//! pool in which a `MapManager` chare on PE 0 coordinates one `PoolWorker`
//! per PE, hands tasks to idle workers dynamically (so disparate task
//! costs balance automatically), and supports multiple *concurrent*
//! asynchronous map jobs, each completing a future the caller can block on
//! whenever it likes.
//!
//! ```no_run
//! use charm_core::prelude::*;
//! use charm_pool::{register_task, PoolHandle};
//!
//! let square = register_task(|x: f64| x * x);
//! Runtime::new(4)
//!     .register::<charm_pool::MapManager>()
//!     .register::<charm_pool::PoolWorker>()
//!     .run(move |co| {
//!         let pool = PoolHandle::create(co.ctx());
//!         let j1 = pool.map_async(co.ctx(), square, 2, &[1.0, 2.0, 3.0]);
//!         let j2 = pool.map_async(co.ctx(), square, 1, &[5.0, 7.0]);
//!         assert_eq!(j1.get(co), vec![1.0, 4.0, 9.0]);
//!         assert_eq!(j2.get(co), vec![25.0, 49.0]);
//!         co.ctx().exit();
//!     });
//! ```

#![forbid(unsafe_code)]

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::marker::PhantomData;
use std::sync::{Mutex, OnceLock};

use charm_core::prelude::*;
use charm_wire::Codec;
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Task functions
// ---------------------------------------------------------------------------

type RawTaskFn = dyn Fn(&[u8]) -> Vec<u8> + Send + Sync;

fn task_table() -> &'static Mutex<Vec<std::sync::Arc<RawTaskFn>>> {
    static TABLE: OnceLock<Mutex<Vec<std::sync::Arc<RawTaskFn>>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(Vec::new()))
}

/// A registered task function handle (typed). CharmPy ships Python
/// functions by pickling them; Rust cannot serialize code, so functions are
/// registered in a process-local table and shipped by id — the standard
/// substitution for a shared-process runtime.
pub struct TaskFn<I, O> {
    id: u64,
    _ph: PhantomData<fn(I) -> O>,
}

impl<I, O> Clone for TaskFn<I, O> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<I, O> Copy for TaskFn<I, O> {}

/// Register a function for use with [`PoolHandle::map_async`].
pub fn register_task<I: Message, O: Message>(
    f: impl Fn(I) -> O + Send + Sync + 'static,
) -> TaskFn<I, O> {
    let raw = move |bytes: &[u8]| -> Vec<u8> {
        let input: I = Codec::Fast.decode(bytes).expect("task input decode failed");
        Codec::Fast
            .encode(&f(input))
            .expect("task output encode failed")
    };
    let mut table = task_table().lock().unwrap();
    table.push(std::sync::Arc::new(raw));
    TaskFn {
        id: (table.len() - 1) as u64,
        _ph: PhantomData,
    }
}

fn run_task(id: u64, input: &[u8]) -> Vec<u8> {
    let f = task_table().lock().unwrap()[id as usize].clone();
    f(input)
}

// ---------------------------------------------------------------------------
// Worker (paper §III listing)
// ---------------------------------------------------------------------------

/// One worker per PE; applies tasks and asks the master for more.
pub struct PoolWorker {
    job_id: u64,
    func: u64,
    tasks: Vec<Vec<u8>>,
    master: Option<Proxy<MapManager>>,
}

/// Worker entry methods.
#[derive(Serialize, Deserialize)]
pub enum WorkerMsg {
    /// Start working on a job: stash the task list, request a first task.
    Start {
        /// Job being started.
        job_id: u64,
        /// Registered function id.
        func: u64,
        /// Encoded task inputs.
        tasks: Vec<Vec<u8>>,
        /// The coordinating master.
        master: Proxy<MapManager>,
    },
    /// Apply the function to one task and report back.
    Apply {
        /// Index into the stashed task list.
        task_id: u64,
    },
}

impl Chare for PoolWorker {
    type Msg = WorkerMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        PoolWorker {
            job_id: 0,
            func: 0,
            tasks: Vec::new(),
            master: None,
        }
    }
    fn receive(&mut self, msg: WorkerMsg, ctx: &mut Ctx) {
        match msg {
            WorkerMsg::Start {
                job_id,
                func,
                tasks,
                master,
            } => {
                self.job_id = job_id;
                self.func = func;
                self.tasks = tasks;
                self.master = Some(master);
                // Request a first task.
                master.send(
                    ctx,
                    ManagerMsg::GetTask {
                        src: ctx.my_pe(),
                        job_id,
                        prev_task: None,
                        prev_result: None,
                    },
                );
            }
            WorkerMsg::Apply { task_id } => {
                let result = run_task(self.func, &self.tasks[task_id as usize]);
                let master = self.master.expect("apply before start");
                master.send(
                    ctx,
                    ManagerMsg::GetTask {
                        src: ctx.my_pe(),
                        job_id: self.job_id,
                        prev_task: Some(task_id),
                        prev_result: Some(result),
                    },
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Master (paper §III listing)
// ---------------------------------------------------------------------------

struct Job {
    #[allow(dead_code)] // retained for diagnostics/serialization parity
    func: u64,
    tasks: Vec<Vec<u8>>,
    results: Vec<Option<Vec<u8>>>,
    next_task: u64,
    done_count: u64,
    procs: Vec<Pe>,
    future: Future<Vec<Vec<u8>>>,
}

impl Job {
    fn is_done(&self) -> bool {
        self.done_count == self.tasks.len() as u64
    }
    fn next(&mut self) -> Option<u64> {
        if self.next_task < self.tasks.len() as u64 {
            let t = self.next_task;
            self.next_task += 1;
            Some(t)
        } else {
            None
        }
    }
}

/// The master chare: creates the worker group, tracks free PEs, hands out
/// tasks, buffers jobs when no PEs are free.
pub struct MapManager {
    workers: Proxy<PoolWorker>,
    free_procs: BTreeSet<Pe>,
    next_job_id: u64,
    jobs: HashMap<u64, Job>,
    queued: VecDeque<ManagerMsg>,
}

/// Master entry methods.
#[derive(Serialize, Deserialize)]
pub enum ManagerMsg {
    /// Start a new map job (the paper's `map_async`).
    MapAsync {
        /// Registered function id.
        func: u64,
        /// Number of PEs requested for the job.
        num_procs: usize,
        /// Encoded task inputs.
        tasks: Vec<Vec<u8>>,
        /// Future receiving the ordered encoded results.
        future: Future<Vec<Vec<u8>>>,
    },
    /// A worker requests a task (and reports the previous one).
    GetTask {
        /// Worker's PE.
        src: Pe,
        /// Job the worker is on.
        job_id: u64,
        /// Completed task id, if any.
        prev_task: Option<u64>,
        /// Its encoded result.
        prev_result: Option<Vec<u8>>,
    },
}

impl Chare for MapManager {
    type Msg = ManagerMsg;
    type Init = ();
    fn create(_: (), ctx: &mut Ctx) -> Self {
        // One worker on every PE (paper: Group(Worker)). PEs other than the
        // master's are the default worker set; a single-PE runtime uses
        // PE 0 itself.
        let workers = ctx.create_group::<PoolWorker>(());
        let npes = ctx.num_pes();
        let free_procs: BTreeSet<Pe> = if npes == 1 {
            [0].into_iter().collect()
        } else {
            (1..npes).collect()
        };
        MapManager {
            workers,
            free_procs,
            next_job_id: 0,
            jobs: HashMap::new(),
            queued: VecDeque::new(),
        }
    }

    fn receive(&mut self, msg: ManagerMsg, ctx: &mut Ctx) {
        match msg {
            ManagerMsg::MapAsync {
                func,
                num_procs,
                tasks,
                future,
            } => {
                if num_procs == 0 || num_procs > self.free_procs.len() {
                    // Not enough free PEs: queue the job until some free up
                    // (CharmPy would raise; queueing is strictly friendlier).
                    self.queued.push_back(ManagerMsg::MapAsync {
                        func,
                        num_procs,
                        tasks,
                        future,
                    });
                    return;
                }
                let free: Vec<Pe> = {
                    let picked: Vec<Pe> = self.free_procs.iter().take(num_procs).copied().collect();
                    for pe in &picked {
                        self.free_procs.remove(pe);
                    }
                    picked
                };
                let job_id = self.next_job_id;
                self.next_job_id += 1;
                let n = tasks.len();
                self.jobs.insert(
                    job_id,
                    Job {
                        func,
                        tasks: tasks.clone(),
                        results: vec![None; n],
                        next_task: 0,
                        done_count: 0,
                        procs: free.clone(),
                        future,
                    },
                );
                let me = ctx.this_elem::<MapManager>();
                for pe in free {
                    self.workers.elem(pe as i32).send(
                        ctx,
                        WorkerMsg::Start {
                            job_id,
                            func,
                            tasks: tasks.clone(),
                            master: me,
                        },
                    );
                }
            }
            ManagerMsg::GetTask {
                src,
                job_id,
                prev_task,
                prev_result,
            } => {
                let job = self.jobs.get_mut(&job_id).expect("task for unknown job");
                if let Some(t) = prev_task {
                    job.results[t as usize] = Some(prev_result.expect("result missing"));
                    job.done_count += 1;
                }
                if !job.is_done() {
                    if let Some(next) = job.next() {
                        self.workers
                            .elem(src as i32)
                            .send(ctx, WorkerMsg::Apply { task_id: next });
                    }
                    // No tasks left but others still in flight: the worker
                    // idles; it will be freed when the job completes.
                } else {
                    let job = self.jobs.remove(&job_id).unwrap();
                    for pe in &job.procs {
                        self.free_procs.insert(*pe);
                    }
                    let results: Vec<Vec<u8>> = job
                        .results
                        .into_iter()
                        .map(|r| r.expect("job done with missing result"))
                        .collect();
                    ctx.send_future(&job.future, results);
                    // Freed PEs may unblock a queued job.
                    if let Some(queued) = self.queued.pop_front() {
                        self.receive(queued, ctx);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// User-facing typed facade
// ---------------------------------------------------------------------------

/// Typed handle to a running pool.
#[derive(Clone, Copy)]
pub struct PoolHandle {
    mgr: Proxy<MapManager>,
}

/// Typed handle to an asynchronous map job.
pub struct JobHandle<O: Message> {
    inner: Future<Vec<Vec<u8>>>,
    _ph: PhantomData<fn() -> O>,
}

impl<O: Message> JobHandle<O> {
    /// Block (this coroutine only) until the job finishes; results are in
    /// input order.
    pub fn get<T: Chare>(&self, co: &mut Co<T>) -> Vec<O> {
        co.get(&self.inner)
            .into_iter()
            .map(|bytes| Codec::Fast.decode(&bytes).expect("result decode failed"))
            .collect()
    }
}

impl PoolHandle {
    /// Create the pool: a `MapManager` on PE 0 plus one worker per PE.
    /// Requires `MapManager` and `PoolWorker` registered on the runtime.
    pub fn create(ctx: &mut Ctx) -> PoolHandle {
        PoolHandle {
            mgr: ctx.create_chare::<MapManager>((), Some(0)),
        }
    }

    /// Submit a single task as a one-element job on one PE; returns a
    /// handle whose `get` yields the single result.
    pub fn submit<I: Message, O: Message>(
        &self,
        ctx: &mut Ctx,
        f: TaskFn<I, O>,
        task: I,
    ) -> JobHandle<O> {
        self.map_async(ctx, f, 1, std::slice::from_ref(&task))
    }

    /// Launch an asynchronous distributed map of `f` over `tasks` on
    /// `num_procs` PEs. Returns immediately with a job handle; multiple
    /// jobs may run concurrently.
    pub fn map_async<I: Message, O: Message>(
        &self,
        ctx: &mut Ctx,
        f: TaskFn<I, O>,
        num_procs: usize,
        tasks: &[I],
    ) -> JobHandle<O> {
        let encoded: Vec<Vec<u8>> = tasks
            .iter()
            .map(|t| Codec::Fast.encode(t).expect("task encode failed"))
            .collect();
        let future = ctx.create_future::<Vec<Vec<u8>>>();
        self.mgr.send(
            ctx,
            ManagerMsg::MapAsync {
                func: f.id,
                num_procs,
                tasks: encoded,
                future,
            },
        );
        JobHandle {
            inner: future,
            _ph: PhantomData,
        }
    }
}

/// Register the pool's chare types on a runtime builder.
pub fn register_pool(rt: charm_core::Runtime) -> charm_core::Runtime {
    rt.register::<MapManager>().register::<PoolWorker>()
}
