//! Replay artifacts: a failing schedule serialized as plain text.
//!
//! Format (line-oriented, `#` comments ignored):
//!
//! ```text
//! charm-check v1
//! npes 2
//! note detector: fifo violation on pe 1
//! 0 1
//! 1 0
//! ```
//!
//! Header lines are `key value`; every following non-comment line is one
//! scheduling decision `src dst` — "deliver the head message of channel
//! (src, dst) now". Replay uses skip-if-disabled semantics, then extends
//! with the default schedule, so an artifact stays meaningful even if the
//! program under replay drifts slightly.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::Chan;

/// Version tag written to (and required from) every artifact.
const MAGIC: &str = "charm-check v1";

/// A serializable schedule: the replay artifact for one counterexample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// PE count the schedule was recorded against.
    pub npes: usize,
    /// Free-text provenance (typically the failure message).
    pub note: String,
    /// Ordered channel decisions.
    pub choices: Vec<Chan>,
}

impl Schedule {
    /// Render to the artifact text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{MAGIC}");
        let _ = writeln!(out, "npes {}", self.npes);
        if !self.note.is_empty() {
            // Notes are single-line; fold any embedded newlines.
            let _ = writeln!(out, "note {}", self.note.replace('\n', " / "));
        }
        for (src, dst) in &self.choices {
            let _ = writeln!(out, "{src} {dst}");
        }
        out
    }

    /// Parse the artifact text format.
    pub fn from_text(text: &str) -> Result<Schedule, String> {
        let mut lines = text.lines().map(str::trim);
        match lines.next() {
            Some(l) if l == MAGIC => {}
            other => return Err(format!("bad schedule header: {other:?}, want {MAGIC:?}")),
        }
        let mut npes = 0usize;
        let mut note = String::new();
        let mut choices = Vec::new();
        for line in lines {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix("npes ") {
                npes = rest
                    .trim()
                    .parse()
                    .map_err(|e| format!("bad npes line {line:?}: {e}"))?;
            } else if let Some(rest) = line.strip_prefix("note ") {
                note = rest.to_string();
            } else {
                let mut it = line.split_whitespace();
                let (src, dst) = (it.next(), it.next());
                match (src, dst, it.next()) {
                    (Some(s), Some(d), None) => {
                        let src: usize =
                            s.parse().map_err(|e| format!("bad src in {line:?}: {e}"))?;
                        let dst: usize =
                            d.parse().map_err(|e| format!("bad dst in {line:?}: {e}"))?;
                        choices.push((src, dst));
                    }
                    _ => return Err(format!("bad decision line {line:?}, want \"src dst\"")),
                }
            }
        }
        if npes == 0 {
            return Err("schedule missing `npes` header".into());
        }
        Ok(Schedule {
            npes,
            note,
            choices,
        })
    }

    /// Write the artifact to `path`.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Load an artifact from `path`.
    pub fn load(path: &Path) -> io::Result<Schedule> {
        let text = std::fs::read_to_string(path)?;
        Schedule::from_text(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_text() {
        let s = Schedule {
            npes: 4,
            note: "detector: duplicate delivery on pe 2".into(),
            choices: vec![(0, 1), (3, 2), (1, 0)],
        };
        let parsed = Schedule::from_text(&s.to_text()).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn round_trips_empty_note_and_choices() {
        let s = Schedule {
            npes: 2,
            note: String::new(),
            choices: vec![],
        };
        assert_eq!(Schedule::from_text(&s.to_text()).unwrap(), s);
    }

    #[test]
    fn folds_multiline_notes() {
        let s = Schedule {
            npes: 2,
            note: "line one\nline two".into(),
            choices: vec![(1, 0)],
        };
        let parsed = Schedule::from_text(&s.to_text()).unwrap();
        assert_eq!(parsed.note, "line one / line two");
        assert_eq!(parsed.choices, vec![(1, 0)]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Schedule::from_text("not a schedule").is_err());
        assert!(Schedule::from_text("charm-check v1\n0 1").is_err()); // no npes
        assert!(Schedule::from_text("charm-check v1\nnpes 2\n0 1 2").is_err());
    }

    #[test]
    fn ignores_comments_and_blanks() {
        let text = "charm-check v1\nnpes 2\n\n# a comment\n0 1\n";
        let s = Schedule::from_text(text).unwrap();
        assert_eq!(s.choices, vec![(0, 1)]);
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join("charm-check-test-artifact");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("sched.txt");
        let s = Schedule {
            npes: 3,
            note: "x".into(),
            choices: vec![(2, 0), (0, 2)],
        };
        s.save(&path).unwrap();
        assert_eq!(Schedule::load(&path).unwrap(), s);
        let _ = std::fs::remove_file(&path);
    }
}
