//! Delta-debugging minimization of failing schedules.
//!
//! Classic ddmin (Zeller & Hildebrandt, "Simplifying and Isolating
//! Failure-Inducing Input", TSE 2002) over the sequence of channel
//! decisions, followed by a one-at-a-time sweep. Replay uses
//! skip-if-disabled semantics (a prescribed channel with no pending
//! message is skipped, remaining decisions shift up), so *any* subsequence
//! of a failing schedule is itself a well-defined schedule — exactly the
//! closure property ddmin needs.

/// Minimize `seq` while `test` keeps failing (returning `true`).
///
/// `test(&[])` is tried first: if the failure reproduces with no prescribed
/// decisions at all (i.e. on the default schedule), the empty schedule is
/// returned. The result is 1-minimal with respect to single-element
/// removal.
pub fn ddmin<T: Clone + PartialEq>(seq: &[T], mut test: impl FnMut(&[T]) -> bool) -> Vec<T> {
    let mut cur: Vec<T> = seq.to_vec();
    if cur.is_empty() || test(&[]) {
        return Vec::new();
    }
    let mut n = 2usize;
    while cur.len() >= 2 {
        let chunk = cur.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0;
        while start < cur.len() {
            let end = (start + chunk).min(cur.len());
            let candidate: Vec<T> = cur[..start].iter().chain(&cur[end..]).cloned().collect();
            if !candidate.is_empty() && test(&candidate) {
                cur = candidate;
                n = (n - 1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if n >= cur.len() {
                break;
            }
            n = (n * 2).min(cur.len());
        }
    }
    // Final sweep: drop single decisions until 1-minimal.
    let mut i = 0;
    while cur.len() > 1 && i < cur.len() {
        let mut candidate = cur.clone();
        candidate.remove(i);
        if test(&candidate) {
            cur = candidate;
            i = 0;
        } else {
            i += 1;
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_to_failure_core() {
        // Failure iff both 3 and 7 are present, in that relative order.
        let seq: Vec<u32> = (0..20).collect();
        let test = |s: &[u32]| {
            let a = s.iter().position(|&x| x == 3);
            let b = s.iter().position(|&x| x == 7);
            matches!((a, b), (Some(a), Some(b)) if a < b)
        };
        let out = ddmin(&seq, test);
        assert_eq!(out, vec![3, 7]);
    }

    #[test]
    fn empty_when_default_fails() {
        let out = ddmin(&[1, 2, 3], |_| true);
        assert!(out.is_empty());
    }

    #[test]
    fn single_element_kept() {
        let out = ddmin(&[5, 6, 8], |s: &[i32]| s.contains(&6));
        assert_eq!(out, vec![6]);
    }

    #[test]
    fn result_is_one_minimal() {
        // Failure iff the subsequence sums to >= 10.
        let seq = vec![4, 4, 4, 4];
        let out = ddmin(&seq, |s: &[i32]| s.iter().sum::<i32>() >= 10);
        assert_eq!(out.iter().sum::<i32>(), 12);
        assert_eq!(out.len(), 3);
    }
}
