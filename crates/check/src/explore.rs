//! Stateless DPOR exploration over delivery schedules.
//!
//! The explorer owns no runtime state: each execution re-runs the program
//! from scratch through a caller-supplied closure that takes a prescribed
//! prefix of channel choices and returns the full delivery trace. A DFS
//! stack of per-state nodes (enabled set, backtrack set, sleep set, chosen
//! transition) records which alternatives still need exploring; races found
//! in each trace seed backtrack points à la Flanagan-Godefroid, and sleep
//! sets inherited down the stack prune re-orderings of independent steps.

use std::collections::BTreeSet;

use crate::shrink;
use crate::Chan;

/// One delivery step as reported by the runtime under exploration.
#[derive(Debug, Clone)]
pub struct StepInfo {
    /// The channel whose head message was delivered.
    pub chan: Chan,
    /// Channels with a deliverable head at this state, in default-priority
    /// order (index 0 is what the uncontrolled scheduler would pick). The
    /// chosen channel always appears in this list.
    pub enabled: Vec<Chan>,
    /// Sender's vector clock at the moment the message was shipped
    /// (one component per PE; all-zero for bootstrap/environment sends).
    pub send_clock: Vec<u64>,
    /// Receiver's vector clock *after* executing the delivery.
    pub clock_after: Vec<u64>,
}

/// The outcome of one controlled execution.
#[derive(Debug, Clone, Default)]
pub struct Execution {
    /// Every delivery, in order: the prescribed prefix followed by the
    /// default extension.
    pub steps: Vec<StepInfo>,
    /// A violation description (detector finding, panic, typed run error,
    /// oracle mismatch), if the execution failed.
    pub failure: Option<String>,
}

/// Exploration configuration.
#[derive(Debug, Clone)]
pub struct ExploreCfg {
    /// Stop (and set `truncated`) after this many executions. 0 = unlimited.
    pub max_executions: usize,
    /// Maximum total deviation from the default schedule, measured as the
    /// sum over decisions of the chosen channel's index in the enabled
    /// list. `None` = unbounded (full DPOR).
    pub delay_bound: Option<u64>,
    /// `true`: DPOR with sleep sets (backtrack only where races demand).
    /// `false`: naive enumeration of every enabled choice at every state —
    /// exponentially larger; exists so reports can quote both numbers.
    pub dpor: bool,
    /// Minimize a failing schedule with delta debugging before reporting.
    pub shrink: bool,
}

impl Default for ExploreCfg {
    fn default() -> Self {
        ExploreCfg {
            max_executions: 10_000,
            delay_bound: None,
            dpor: true,
            shrink: true,
        }
    }
}

/// A failing schedule, minimized if shrinking was enabled.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The failure message of the (shrunk) reproducing execution.
    pub failure: String,
    /// Channel choices that reproduce the failure when replayed with
    /// skip-if-disabled semantics.
    pub schedule: Vec<Chan>,
    /// Decision count of the schedule as first discovered, pre-shrink.
    pub original_len: usize,
    /// Extra executions spent by the shrinker.
    pub shrink_runs: u64,
}

/// Exploration summary.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Executions visited (shrink runs not included).
    pub executions: u64,
    /// Distinct Mazurkiewicz trace-equivalence classes seen, identified by
    /// a hash of per-PE delivery sequences.
    pub equivalence_classes: usize,
    /// True if `max_executions` or `delay_bound` cut exploration short —
    /// i.e. the state space was *not* exhausted.
    pub truncated: bool,
    /// First failure found, if any (exploration stops at the first one).
    pub counterexample: Option<Counterexample>,
}

/// Per-state DFS node.
struct Node {
    /// Choice currently being explored from this state.
    chosen: Chan,
    /// Enabled channels at this state, default-priority order.
    enabled: Vec<Chan>,
    /// Channels that must (still) be explored from this state.
    backtrack: BTreeSet<Chan>,
    /// Channels proven redundant here: inherited sleep set plus choices
    /// whose subtrees are already fully explored.
    sleep: BTreeSet<Chan>,
}

impl Node {
    /// Sleep set for the child state reached by taking `self.chosen`:
    /// sleeping transitions independent of the chosen one stay asleep.
    fn child_sleep(&self) -> BTreeSet<Chan> {
        self.sleep
            .iter()
            .filter(|z| z.1 != self.chosen.1)
            .copied()
            .collect()
    }
}

/// Did delivery step `j` happen-before the *send* of step `i`'s message?
/// Step `j` executed at PE `dj`; its per-PE clock component after executing
/// is `clock_after[dj]`. The send saw it iff the sender's clock already
/// includes that component.
fn hb_step_to_send(step_j: &StepInfo, step_i: &StepInfo) -> bool {
    let dj = step_j.chan.1;
    match (step_j.clock_after.get(dj), step_i.send_clock.get(dj)) {
        (Some(a), Some(s)) => s >= a,
        _ => false,
    }
}

/// Mazurkiewicz class key: FNV-1a over the per-PE sequences of
/// `(src, k-th message on that channel)`. Executions that only permute
/// deliveries across different PEs hash identically.
fn class_key(steps: &[StepInfo]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let npes = steps
        .iter()
        .map(|s| s.chan.1 + 1)
        .max()
        .unwrap_or(1)
        .max(steps.iter().map(|s| s.chan.0 + 1).max().unwrap_or(1));
    let mut per_pe = vec![FNV_OFFSET; npes];
    let mut chan_seq: std::collections::BTreeMap<Chan, u64> = std::collections::BTreeMap::new();
    for s in steps {
        let k = chan_seq.entry(s.chan).or_insert(0);
        let dst = s.chan.1;
        for byte in s
            .chan
            .0
            .to_le_bytes()
            .into_iter()
            .chain(k.to_le_bytes())
            .chain([0xfe])
        {
            per_pe[dst] = (per_pe[dst] ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
        *k += 1;
    }
    // Combine per-PE streams order-independently across PEs (each stream is
    // already salted by src/seq content; mix in the PE index).
    let mut key = 0u64;
    for (pe, h) in per_pe.iter().enumerate() {
        key ^= h.wrapping_mul((pe as u64).wrapping_mul(FNV_PRIME) | 1);
    }
    key
}

/// Explore all schedules of the program behind `run`, up to happens-before
/// equivalence (or exhaustively when `cfg.dpor` is false).
///
/// `run(prefix)` must re-execute the program from its initial state,
/// delivering messages per `prefix` (skipping a prescribed channel that has
/// no pending message) and then extending with the default schedule until
/// completion. Exploration stops at the first failing execution; the
/// failing schedule is minimized with [`shrink::ddmin`] when `cfg.shrink`
/// is set.
pub fn explore<F>(cfg: &ExploreCfg, mut run: F) -> Report
where
    F: FnMut(&[Chan]) -> Execution,
{
    let mut report = Report::default();
    let mut classes: BTreeSet<u64> = BTreeSet::new();
    let mut stack: Vec<Node> = Vec::new();

    let mut exec = run(&[]);
    report.executions = 1;

    loop {
        classes.insert(class_key(&exec.steps));
        report.equivalence_classes = classes.len();

        if let Some(failure) = exec.failure.clone() {
            let schedule: Vec<Chan> = exec.steps.iter().map(|s| s.chan).collect();
            let original_len = schedule.len();
            let mut shrink_runs = 0u64;
            let (schedule, failure) = if cfg.shrink {
                let reduced = shrink::ddmin(&schedule, |cand| {
                    shrink_runs += 1;
                    run(cand).failure.is_some()
                });
                let final_failure = run(&reduced).failure.unwrap_or_else(|| failure.clone());
                shrink_runs += 1;
                (reduced, final_failure)
            } else {
                (schedule, failure)
            };
            report.counterexample = Some(Counterexample {
                failure,
                schedule,
                original_len,
                shrink_runs,
            });
            return report;
        }

        // Grow the stack with nodes for the fresh suffix of this execution.
        while stack.len() < exec.steps.len() {
            let i = stack.len();
            let step = &exec.steps[i];
            let sleep = if i == 0 {
                BTreeSet::new()
            } else if cfg.dpor {
                stack[i - 1].child_sleep()
            } else {
                BTreeSet::new()
            };
            let backtrack = if cfg.dpor {
                BTreeSet::new()
            } else {
                step.enabled.iter().copied().collect()
            };
            stack.push(Node {
                chosen: step.chan,
                enabled: step.enabled.clone(),
                backtrack,
                sleep,
            });
        }

        // Seed backtrack points from races: for each step i, the *last*
        // earlier same-PE delivery on a different channel that is not
        // happens-before the send of i's message is a race — some
        // interleaving delivers i's message first, so state j must also try
        // i's channel (or, if it is not yet enabled there, everything).
        if cfg.dpor {
            for i in 0..exec.steps.len() {
                let (dst_i, chan_i) = (exec.steps[i].chan.1, exec.steps[i].chan);
                let race = (0..i).rev().find(|&j| {
                    exec.steps[j].chan.1 == dst_i
                        && exec.steps[j].chan != chan_i
                        && !hb_step_to_send(&exec.steps[j], &exec.steps[i])
                });
                if let Some(j) = race {
                    if stack[j].enabled.contains(&chan_i) {
                        stack[j].backtrack.insert(chan_i);
                    } else {
                        // The racing channel had no deliverable head at
                        // state j (its message was still in flight):
                        // conservatively schedule every alternative.
                        let all: Vec<Chan> = stack[j].enabled.clone();
                        stack[j].backtrack.extend(all);
                    }
                }
            }
        }

        // Backtrack: retire finished subtrees until a state still owes us an
        // unexplored, non-sleeping choice.
        let mut next: Option<(usize, Chan)> = None;
        while !stack.is_empty() {
            let j = stack.len() - 1;
            let chosen = stack[j].chosen;
            stack[j].sleep.insert(chosen);
            // Deviation cost of the path *above* this state; fixed for the
            // lifetime of node j (ancestors' choices only change after j is
            // truncated away).
            let path: u64 = stack[..j]
                .iter()
                .map(|n| n.enabled.iter().position(|c| *c == n.chosen).unwrap_or(0) as u64)
                .sum();
            let candidates: Vec<Chan> = stack[j]
                .backtrack
                .iter()
                .filter(|b| !stack[j].sleep.contains(*b))
                .copied()
                .collect();
            let mut picked = None;
            for b in candidates {
                if let Some(bound) = cfg.delay_bound {
                    let idx = stack[j]
                        .enabled
                        .iter()
                        .position(|c| *c == b)
                        .unwrap_or(stack[j].enabled.len()) as u64;
                    if path + idx > bound {
                        // Over budget at this state, permanently: prune.
                        report.truncated = true;
                        stack[j].sleep.insert(b);
                        continue;
                    }
                }
                picked = Some(b);
                break;
            }
            if let Some(b) = picked {
                next = Some((j, b));
                break;
            }
            stack.pop();
        }

        let Some((j, b)) = next else {
            // Every state exhausted: the space is fully explored.
            return report;
        };

        if cfg.max_executions != 0 && report.executions as usize >= cfg.max_executions {
            report.truncated = true;
            return report;
        }

        stack[j].chosen = b;
        stack.truncate(j + 1);
        let prefix: Vec<Chan> = stack.iter().map(|n| n.chosen).collect();
        exec = run(&prefix);
        report.executions += 1;

        // The prescribed prefix must replay verbatim (every choice came
        // from an enabled set of the same state).
        debug_assert!(
            exec.steps.len() >= prefix.len()
                && exec.steps.iter().zip(&prefix).all(|(s, c)| s.chan == *c),
            "controlled replay diverged from prescribed prefix"
        );
        // Drop stale deep nodes; they will be rebuilt from the new trace.
        stack.truncate(j + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy message machine: channels carry abstract messages; delivering
    /// message `k` on channel `c` may trigger sends on other channels
    /// (effects). Vector clocks follow the runtime's Detector rules.
    struct Toy {
        npes: usize,
        /// (chan, k-th message on chan) -> channels to send on.
        effects: Vec<((Chan, usize), Vec<Chan>)>,
        /// Initial in-flight messages (environment sends, zero clocks).
        initial: Vec<Chan>,
        /// Failure predicate over the delivered (chan, k) sequence.
        fail: fn(&[(Chan, usize)]) -> Option<String>,
    }

    struct Pending {
        send_clock: Vec<u64>,
        seq: u64,
    }

    impl Toy {
        fn run(&self, prefix: &[Chan]) -> Execution {
            use std::collections::BTreeMap;
            let mut clocks = vec![vec![0u64; self.npes]; self.npes];
            let mut pending: BTreeMap<Chan, std::collections::VecDeque<Pending>> = BTreeMap::new();
            let mut ship_seq = 0u64;
            for &c in &self.initial {
                pending.entry(c).or_default().push_back(Pending {
                    send_clock: vec![0; self.npes],
                    seq: ship_seq,
                });
                ship_seq += 1;
            }
            let mut delivered: Vec<(Chan, usize)> = Vec::new();
            let mut chan_count: BTreeMap<Chan, usize> = BTreeMap::new();
            let mut steps = Vec::new();
            let mut prefix_iter = prefix.iter().copied();
            loop {
                // Enabled channels: those with pending messages, default
                // priority = smallest front seq (FIFO arrival order).
                let mut enabled: Vec<(u64, Chan)> = pending
                    .iter()
                    .filter(|(_, q)| !q.is_empty())
                    .map(|(c, q)| (q.front().unwrap().seq, *c))
                    .collect();
                if enabled.is_empty() {
                    break;
                }
                enabled.sort();
                let enabled: Vec<Chan> = enabled.into_iter().map(|(_, c)| c).collect();
                let chosen = loop {
                    match prefix_iter.next() {
                        Some(c) if enabled.contains(&c) => break c,
                        Some(_) => continue, // skip-if-disabled
                        None => break enabled[0],
                    }
                };
                let msg = pending.get_mut(&chosen).unwrap().pop_front().unwrap();
                let dst = chosen.1;
                for (c, m) in clocks[dst].iter_mut().zip(&msg.send_clock) {
                    *c = (*c).max(*m);
                }
                clocks[dst][dst] += 1;
                let k = *chan_count.entry(chosen).or_insert(0);
                *chan_count.get_mut(&chosen).unwrap() += 1;
                delivered.push((chosen, k));
                for &((ec, ek), ref sends) in &self.effects {
                    if ec == chosen && ek == k {
                        for &s in sends {
                            pending.entry(s).or_default().push_back(Pending {
                                send_clock: clocks[dst].clone(),
                                seq: ship_seq,
                            });
                            ship_seq += 1;
                        }
                    }
                }
                steps.push(StepInfo {
                    chan: chosen,
                    enabled,
                    send_clock: msg.send_clock,
                    clock_after: clocks[dst].clone(),
                });
            }
            Execution {
                steps,
                failure: (self.fail)(&delivered),
            }
        }
    }

    fn no_fail(_: &[(Chan, usize)]) -> Option<String> {
        None
    }

    /// Four independent one-shot messages, two per destination PE: naive
    /// enumeration visits 4! = 24 interleavings, but only the relative
    /// order at each PE matters (2 × 2 = 4 classes).
    fn two_by_two() -> Toy {
        Toy {
            npes: 3,
            effects: vec![],
            initial: vec![(0, 1), (2, 1), (0, 2), (1, 2)],
            fail: no_fail,
        }
    }

    #[test]
    fn naive_enumerates_all_interleavings() {
        let toy = two_by_two();
        let cfg = ExploreCfg {
            dpor: false,
            ..Default::default()
        };
        let report = explore(&cfg, |p| toy.run(p));
        assert_eq!(report.executions, 24);
        assert_eq!(report.equivalence_classes, 4);
        assert!(!report.truncated);
        assert!(report.counterexample.is_none());
    }

    #[test]
    fn dpor_visits_fewer_executions_same_classes() {
        let toy = two_by_two();
        let report = explore(&ExploreCfg::default(), |p| toy.run(p));
        assert!(
            report.executions < 24,
            "DPOR should beat naive 24, got {}",
            report.executions
        );
        assert_eq!(report.equivalence_classes, 4);
        assert!(!report.truncated);
    }

    #[test]
    fn causality_prunes_ordered_pairs() {
        // env -> PE1 (channel (0,1)); its handler sends PE2 (channel (1,2));
        // env also sends PE2 directly (channel (0,2)). Only the (1,2) vs
        // (0,2) order at PE2 is a real race: 2 classes.
        let toy = Toy {
            npes: 3,
            effects: vec![(((0, 1), 0), vec![(1, 2)])],
            initial: vec![(0, 1), (0, 2)],
            fail: no_fail,
        };
        let report = explore(&ExploreCfg::default(), |p| toy.run(p));
        assert_eq!(report.equivalence_classes, 2);
        assert!(!report.truncated);
    }

    #[test]
    fn finds_and_shrinks_ordering_bug() {
        // Failure iff channel (2,0)'s message lands before (1,0)'s, buried
        // among six irrelevant messages to other PEs.
        fn fail(d: &[(Chan, usize)]) -> Option<String> {
            let pos = |c: Chan| d.iter().position(|(x, _)| *x == c);
            match (pos((2, 0)), pos((1, 0))) {
                (Some(a), Some(b)) if a < b => Some("late-joiner overtook".into()),
                _ => None,
            }
        }
        let toy = Toy {
            npes: 4,
            effects: vec![],
            initial: vec![
                (1, 0),
                (2, 0),
                (0, 1),
                (2, 1),
                (0, 2),
                (1, 2),
                (0, 3),
                (1, 3),
            ],
            fail,
        };
        let report = explore(&ExploreCfg::default(), |p| toy.run(p));
        let cx = report.counterexample.expect("bug must be found");
        assert!(cx.failure.contains("overtook"));
        assert!(
            cx.schedule.len() <= 2,
            "ddmin should shrink to <= 2 decisions, got {:?}",
            cx.schedule
        );
        // The shrunk schedule must still reproduce under replay semantics.
        assert!(toy.run(&cx.schedule).failure.is_some());
    }

    #[test]
    fn delay_bound_truncates() {
        let toy = two_by_two();
        let cfg = ExploreCfg {
            delay_bound: Some(1),
            ..Default::default()
        };
        let report = explore(&cfg, |p| toy.run(p));
        assert!(report.truncated, "tight delay bound must truncate");
        assert!(report.executions >= 1);
    }

    #[test]
    fn max_executions_truncates() {
        let toy = two_by_two();
        let cfg = ExploreCfg {
            max_executions: 3,
            dpor: false,
            ..Default::default()
        };
        let report = explore(&cfg, |p| toy.run(p));
        assert!(report.truncated);
        assert_eq!(report.executions, 3);
    }

    #[test]
    fn single_channel_is_deterministic() {
        let toy = Toy {
            npes: 2,
            effects: vec![],
            initial: vec![(0, 1), (0, 1), (0, 1)],
            fail: no_fail,
        };
        let report = explore(&ExploreCfg::default(), |p| toy.run(p));
        assert_eq!(report.executions, 1);
        assert_eq!(report.equivalence_classes, 1);
        assert!(!report.truncated);
    }
}
