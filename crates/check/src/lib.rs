//! # charm-check — systematic schedule exploration for charm-rs
//!
//! The runtime's message-driven execution model makes the delivery schedule
//! *the* source of nondeterminism: any interleaving of in-flight messages
//! that respects per-channel FIFO order is a legal execution. The
//! detector-armed suites (charm-core's `analyze` feature) sample a handful
//! of random permutations per test; this crate replaces sampling with
//! *systematic* exploration — every interleaving up to happens-before
//! equivalence — using stateless dynamic partial-order reduction (DPOR,
//! Flanagan & Godefroid, POPL 2005) adapted to actor message passing:
//!
//! * a **transition** is "deliver the head message of channel `(src, dst)`";
//!   per-channel FIFO means channel heads are the only schedulable units;
//! * two transitions are **dependent** iff they deliver to the same PE
//!   (handlers on one PE run sequentially and may touch shared chare state);
//! * **happens-before** comes from the vector clocks the analyze Detector
//!   already maintains: a delivery `d` at PE `p` happens-before the send of
//!   message `m` iff `send_clock(m)[p] >= clock_after(d)[p]`. Racing
//!   same-PE deliveries that are *not* HB-ordered seed backtrack points;
//! * **sleep sets** prune executions that only permute independent steps;
//! * a **delay bound** (sum of how far each decision sits from the default
//!   schedule) gives graceful degradation on configs too large to exhaust.
//!
//! The crate is runtime-agnostic: the explorer drives any closure
//! `FnMut(&[Chan]) -> Execution` that replays a prescribed channel-choice
//! prefix and reports what happened (`charm-core` wires this to the sim
//! backend behind `Runtime::check`). On failure a delta-debugging shrinker
//! ([`shrink`]) minimizes the offending schedule, and [`Schedule`] writes a
//! plain-text replay artifact reproducible bit-identically via
//! `Runtime::replay_schedule`.
//!
//! Dependency-free and std-only, like the rest of the workspace.

#![forbid(unsafe_code)]

pub mod explore;
pub mod schedule;
pub mod shrink;

pub use explore::{explore, Counterexample, Execution, ExploreCfg, Report, StepInfo};
pub use schedule::Schedule;
pub use shrink::ddmin;

/// A delivery channel: an ordered `(source PE, destination PE)` pair.
/// Messages within one channel are FIFO; the schedule decides only the
/// interleaving *across* channels.
pub type Chan = (usize, usize);
