//! Loopback mesh lifecycle tests: real sockets, real threads, one process.
//!
//! Each test builds a small mesh of [`NetNode`]s on 127.0.0.1 inside this
//! process (one node per would-be PE) and drives the full lifecycle:
//! rendezvous, payload exchange, abrupt connection loss, reconnect,
//! epoch-fenced readmission, and drain. The multi-*process* flavour (with
//! real `SIGKILL`s) lives in `multiproc.rs`; this file isolates the
//! transport state machine from process management.

use std::net::SocketAddr;
use std::sync::mpsc::RecvTimeoutError;
use std::time::Duration;

use charm_net::{BackoffCfg, NetCfg, NetEvent, NetNode};

/// Short timeouts so failure paths run in test time, with a heartbeat
/// window generous enough that healthy connections never trip it.
fn test_cfg() -> NetCfg {
    NetCfg::new()
        .heartbeat(Duration::from_millis(100), Duration::from_millis(1500))
        .rendezvous_timeout(Duration::from_secs(5))
        .drain_timeout(Duration::from_secs(3))
        .reconnect(BackoffCfg::new(
            Duration::from_millis(20),
            Duration::from_millis(100),
            4,
        ))
}

/// Assemble an `npes` mesh in-process: root node plus worker nodes, all
/// rendezvoused. Returns the nodes indexed by PE.
fn mesh(cfg: &NetCfg, npes: usize, nonce: u64) -> Vec<NetNode> {
    let root = NetNode::root(cfg, npes, nonce).expect("root bind");
    let root_addr = root.listen_addr();
    let mut handles = Vec::new();
    for pe in 1..npes {
        let cfg = cfg.clone();
        handles.push(std::thread::spawn(move || {
            NetNode::worker(&cfg, pe, npes, nonce, root_addr, 0).expect("worker bootstrap")
        }));
    }
    root.await_workers().expect("rendezvous");
    let mut nodes = vec![root];
    for h in handles {
        nodes.push(h.join().expect("worker thread"));
    }
    nodes
}

/// Pull events until `f` accepts one; panics after `timeout` of silence.
fn wait_event<T>(node: &NetNode, timeout: Duration, mut f: impl FnMut(NetEvent) -> Option<T>) -> T {
    loop {
        match node.events().recv_timeout(timeout) {
            Ok(ev) => {
                if let Some(v) = f(ev) {
                    return v;
                }
            }
            Err(RecvTimeoutError::Timeout) => panic!("no matching event within {timeout:?}"),
            Err(RecvTimeoutError::Disconnected) => panic!("event channel closed"),
        }
    }
}

#[test]
fn four_node_rendezvous_and_all_pairs_payloads() {
    let cfg = test_cfg();
    let nodes = mesh(&cfg, 4, 0x1111);
    // Drain the PeerUp noise, then ship one tagged payload over every
    // ordered pair and check each arrives intact and attributed.
    for (src, node) in nodes.iter().enumerate() {
        for dst in 0..nodes.len() {
            if dst != src {
                node.send_payload(dst, &[src as u8, dst as u8, 0xAB])
                    .expect("send");
            }
        }
    }
    for (me, node) in nodes.iter().enumerate() {
        let mut seen = vec![false; nodes.len()];
        for _ in 0..nodes.len() - 1 {
            let (src, bytes) = wait_event(node, Duration::from_secs(5), |ev| match ev {
                NetEvent::Payload { src, bytes } => Some((src, bytes)),
                _ => None,
            });
            assert_eq!(bytes, vec![src as u8, me as u8, 0xAB]);
            assert!(!seen[src], "duplicate payload from {src}");
            seen[src] = true;
        }
    }
    for node in &nodes {
        node.drain(cfg.drain_timeout).expect("drain");
    }
}

#[test]
fn dropped_node_surfaces_as_peer_lost_after_retries() {
    let cfg = test_cfg();
    let mut nodes = mesh(&cfg, 3, 0x2222);
    // Kill node 2 abruptly: sockets severed with no goodbye, exactly what
    // its peers would observe if the process died.
    let dead = nodes.pop().unwrap();
    dead.kill();
    drop(dead);
    // Node 0 (acceptor side for 2) and node 1 (acceptor side for 2) must
    // both observe the loss once reconnect/readmission windows lapse.
    for node in &nodes {
        let (pe, incarnation) = wait_event(node, Duration::from_secs(10), |ev| match ev {
            NetEvent::PeerLost {
                pe, incarnation, ..
            } => Some((pe, incarnation)),
            _ => None,
        });
        assert_eq!(pe, 2);
        assert_eq!(incarnation, 0);
        assert!(node.counters().disconnects >= 1);
    }
    for node in &nodes {
        node.drain(cfg.drain_timeout).expect("drain");
    }
}

#[test]
fn stale_epoch_handshake_rejected_and_counted() {
    let cfg = test_cfg();
    let npes = 2;
    let root = NetNode::root(&cfg, npes, 0x3333).expect("root");
    let root_addr = root.listen_addr();
    // The mesh has moved on to epoch 2 (as after a recovery)...
    root.set_epoch(2);
    // ...and a zombie worker from epoch 0 tries to register.
    let stale = NetNode::worker(&cfg, 1, npes, 0x3333, root_addr, 0);
    assert!(stale.is_err(), "stale worker must not complete bootstrap");
    assert!(
        root.counters().stale_conn_rejected >= 1,
        "rejection must be counted: {:?}",
        root.counters()
    );
    assert!(!root.peer_live(1));
    // A worker at the current epoch is admitted on the same listener.
    let fresh = NetNode::worker(&cfg, 1, npes, 0x3333, root_addr, 2).expect("fresh worker");
    root.await_workers().expect("rendezvous at epoch 2");
    assert!(root.peer_at_epoch(1, 2));
    fresh.drain(cfg.drain_timeout).expect("drain");
    root.drain(cfg.drain_timeout).expect("drain");
}

#[test]
fn wrong_nonce_rejected() {
    let cfg = test_cfg();
    let root = NetNode::root(&cfg, 2, 0x4444).expect("root");
    let addr = root.listen_addr();
    let crossed = NetNode::worker(&cfg, 1, 2, 0xBEEF, addr, 0);
    assert!(crossed.is_err(), "crossed-run worker must be fenced out");
    assert!(root.counters().stale_conn_rejected >= 1);
    root.drain(cfg.drain_timeout).expect("drain");
}

#[test]
fn restart_broadcast_reaches_workers_and_bumps_their_epoch() {
    let cfg = test_cfg();
    let nodes = mesh(&cfg, 3, 0x5555);
    nodes[0].broadcast_restart(1, 7);
    for w in &nodes[1..] {
        let (epoch, generation) = wait_event(w, Duration::from_secs(5), |ev| match ev {
            NetEvent::Restart { epoch, generation } => Some((epoch, generation)),
            _ => None,
        });
        assert_eq!((epoch, generation), (1, 7));
        assert_eq!(w.epoch(), 1, "transport fence must move with the restart");
    }
    for node in &nodes {
        node.drain(cfg.drain_timeout).expect("drain");
    }
}

#[test]
fn readmission_after_loss_uses_new_epoch_and_table_rebroadcast() {
    let cfg = test_cfg();
    let mut nodes = mesh(&cfg, 3, 0x6666);
    // Lose worker 2, as a recovery would: root learns, bumps the epoch,
    // announces the restart, and a replacement joins at the new epoch.
    let dead = nodes.pop().unwrap();
    dead.kill();
    drop(dead);
    let root_addr = nodes[0].listen_addr();
    wait_event(&nodes[0], Duration::from_secs(10), |ev| match ev {
        NetEvent::PeerLost { pe: 2, .. } => Some(()),
        _ => None,
    });
    // Recovery sequence, exactly as the runtime driver performs it: bump
    // the epoch, tell the survivors, admit the replacement, re-broadcast
    // the table so the survivor (PE 1 — lower than 2, so 2 dials it) is
    // reachable again. The replacement bootstraps concurrently because its
    // own mesh wait cannot finish before the table goes out.
    nodes[0].broadcast_restart(1, 0);
    let join = {
        let cfg = cfg.clone();
        std::thread::spawn(move || NetNode::worker(&cfg, 2, 3, 0x6666, root_addr, 1))
    };
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while !nodes[0].peer_at_epoch(2, 1) {
        assert!(
            std::time::Instant::now() < deadline,
            "readmission timed out"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    nodes[0].broadcast_table();
    let replacement = join
        .join()
        .expect("replacement thread")
        .expect("replacement bootstrap");
    // Payload flows both ways between survivor 1 and replacement 2.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while replacement.send_payload(1, b"hello-from-2").is_err() {
        assert!(std::time::Instant::now() < deadline, "2->1 link timed out");
        std::thread::sleep(Duration::from_millis(5));
    }
    let (src, bytes) = wait_event(&nodes[1], Duration::from_secs(5), |ev| match ev {
        NetEvent::Payload { src, bytes } => Some((src, bytes)),
        _ => None,
    });
    assert_eq!((src, bytes.as_slice()), (2, b"hello-from-2".as_slice()));
    nodes[1].send_payload(2, b"hello-from-1").expect("1->2");
    let (src, bytes) = wait_event(&replacement, Duration::from_secs(5), |ev| match ev {
        NetEvent::Payload { src, bytes } => Some((src, bytes)),
        _ => None,
    });
    assert_eq!((src, bytes.as_slice()), (1, b"hello-from-1".as_slice()));
    for node in nodes.iter().chain(std::iter::once(&replacement)) {
        node.drain(cfg.drain_timeout).expect("drain");
    }
}

#[test]
fn drain_sends_bye_so_peer_sees_clean_close_not_death() {
    let cfg = test_cfg();
    let nodes = mesh(&cfg, 2, 0x7777);
    nodes[1].drain(cfg.drain_timeout).expect("worker drain");
    // The root must see a goodbye, not a PeerLost.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while nodes[0].counters().byes_recv == 0 {
        assert!(std::time::Instant::now() < deadline, "no bye within window");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(nodes[0].peer_bye(1), "close must be recorded as clean");
    match nodes[0].events().recv_timeout(Duration::from_millis(300)) {
        Err(RecvTimeoutError::Timeout) => {}
        Ok(NetEvent::PeerUp { .. }) | Err(RecvTimeoutError::Disconnected) => {}
        Ok(NetEvent::PeerLost { pe, reason, .. }) => {
            panic!("clean close misread as loss of {pe}: {reason}")
        }
        Ok(_) => {}
    }
    nodes[0].drain(cfg.drain_timeout).expect("root drain");
}

#[test]
fn bootstrap_times_out_when_a_worker_never_arrives() {
    let mut cfg = test_cfg().rendezvous_timeout(Duration::from_millis(400));
    cfg.root_addr = Some("127.0.0.1:0".parse::<SocketAddr>().unwrap());
    let root = NetNode::root(&cfg, 3, 0x8888).expect("root bind");
    // Only one of two workers shows up.
    let addr = root.listen_addr();
    let cfg2 = cfg.clone();
    let w1 = std::thread::spawn(move || NetNode::worker(&cfg2, 1, 3, 0x8888, addr, 0));
    let err = root.await_workers().expect_err("mesh cannot complete");
    let msg = err.to_string();
    assert!(msg.contains('2'), "error should name the missing PE: {msg}");
    let _ = w1.join();
}
