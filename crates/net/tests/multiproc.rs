//! Multi-process lifecycle test: the binary re-execs itself as workers.
//!
//! The root branch of the test spawns two worker processes through
//! [`Launcher`] (each re-running this same test with the worker
//! environment set), exchanges payloads, then orders one worker to
//! `SIGKILL` itself mid-run. The death must surface as a real
//! [`NetEvent::PeerLost`], the launcher must respawn the PE at a bumped
//! epoch, and traffic must flow to the replacement. This is the transport
//! half of the recovery story; the full checkpoint-restore loop on top of
//! it lives in `charm-core`'s net tests.

use std::sync::mpsc::RecvTimeoutError;
use std::time::Duration;

use charm_net::{
    is_net_worker, kill_self_hard, worker_env, BackoffCfg, Launcher, NetCfg, NetEvent, NetNode,
};

const TEST_NAME: &str = "sigkill_mid_run_recovers_with_respawned_worker";

fn test_cfg() -> NetCfg {
    NetCfg::new()
        .worker_args([TEST_NAME, "--exact"])
        .heartbeat(Duration::from_millis(100), Duration::from_millis(1500))
        .rendezvous_timeout(Duration::from_secs(10))
        .drain_timeout(Duration::from_secs(3))
        .reconnect(BackoffCfg::new(
            Duration::from_millis(20),
            Duration::from_millis(100),
            4,
        ))
}

/// Worker branch: serve until told to die or exit.
fn worker_main() -> ! {
    let we = worker_env()
        .expect("worker env set")
        .expect("worker env parses");
    let node = NetNode::worker(&test_cfg(), we.pe, we.npes, we.nonce, we.root, we.epoch)
        .expect("worker bootstrap");
    loop {
        match node.events().recv_timeout(Duration::from_secs(20)) {
            Ok(NetEvent::Payload { src, bytes }) => match bytes.as_slice() {
                b"die" => kill_self_hard(),
                b"exit" => {
                    let _ = node.drain(Duration::from_secs(3));
                    std::process::exit(0);
                }
                b"ping" => {
                    let mut reply = vec![b'p', b'o', b'n', b'g', we.pe as u8, we.epoch as u8];
                    reply.push(src as u8);
                    node.send_payload(0, &reply).expect("echo");
                }
                _ => {}
            },
            // Survivors see the lost peer and the restart notice; neither
            // ends their run.
            Ok(NetEvent::PeerLost { pe, .. }) if pe != 0 => {}
            Ok(NetEvent::Restart { .. }) | Ok(NetEvent::PeerUp { .. }) => {}
            Ok(NetEvent::PeerLost { .. }) | Ok(NetEvent::Stats { .. }) => std::process::exit(0),
            Err(RecvTimeoutError::Timeout) => std::process::exit(2),
            Err(RecvTimeoutError::Disconnected) => std::process::exit(2),
        }
    }
}

/// Wait for one pong from each `(pe, epoch)` pair, in any arrival order —
/// replies from different workers race on the event channel.
fn expect_pongs(root: &NetNode, want: &[(usize, u8)]) {
    let mut pending = want.to_vec();
    while !pending.is_empty() {
        match root.events().recv_timeout(Duration::from_secs(10)) {
            Ok(NetEvent::Payload { src, bytes }) => {
                if let Some(i) = pending.iter().position(|&(pe, _)| pe == src) {
                    let (pe, epoch) = pending.remove(i);
                    assert_eq!(
                        bytes.as_slice(),
                        &[b'p', b'o', b'n', b'g', pe as u8, epoch, 0],
                        "bad echo from pe {pe}"
                    );
                }
            }
            Ok(_) => {}
            Err(e) => panic!("missing pong(s) from {pending:?}: {e:?}"),
        }
    }
}

#[test]
fn sigkill_mid_run_recovers_with_respawned_worker() {
    if is_net_worker() {
        worker_main();
    }
    let npes = 3;
    let cfg = test_cfg();
    // Nonce from pid + clock: only needs to differ between overlapping runs.
    let nonce = u64::from(std::process::id())
        ^ std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap_or_default()
            .as_nanos() as u64;
    let root = NetNode::root(&cfg, npes, nonce).expect("root bind");
    let mut launcher =
        Launcher::spawn_all(&cfg, npes, root.listen_addr(), nonce, 0).expect("spawn workers");
    root.await_workers().expect("rendezvous");

    // Healthy traffic with both workers.
    for pe in 1..npes {
        root.send_payload(pe, b"ping").expect("ping");
    }
    expect_pongs(&root, &[(1, 0), (2, 0)]);

    // Order worker 2 to SIGKILL itself: a real process death, no goodbye.
    root.send_payload(2, b"die").expect("send die");

    // The launcher's child poll is the fast detector...
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let dead = launcher.poll_exited();
        if dead.contains(&2) {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "child never reaped");
        std::thread::sleep(Duration::from_millis(20));
    }
    // ...and the transport's own detection must concur (heartbeat timeout
    // or EOF on the severed socket), yielding a typed loss event.
    loop {
        match root.events().recv_timeout(Duration::from_secs(10)) {
            Ok(NetEvent::PeerLost {
                pe, incarnation, ..
            }) => {
                assert_eq!((pe, incarnation), (2, 0));
                break;
            }
            Ok(_) => {}
            Err(e) => panic!("SIGKILL not surfaced as PeerLost: {e:?}"),
        }
    }
    assert!(!root.peer_live(2));
    assert!(root.peer_live(1), "survivor must be unaffected");

    // Recovery: bump the epoch, notify the survivor, respawn PE 2.
    root.broadcast_restart(1, 1);
    launcher.respawn(2, 1, 1).expect("respawn");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !root.peer_at_epoch(2, 1) {
        assert!(
            std::time::Instant::now() < deadline,
            "readmission timed out"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    root.broadcast_table();

    // The replacement serves at the new epoch; the survivor still answers.
    root.send_payload(2, b"ping").expect("ping replacement");
    expect_pongs(&root, &[(2, 1)]);
    root.send_payload(1, b"ping").expect("ping survivor");
    expect_pongs(&root, &[(1, 0)]);

    // Clean shutdown: both workers exit on request, then the root drains.
    root.send_payload(1, b"exit").expect("exit 1");
    root.send_payload(2, b"exit").expect("exit 2");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while root.counters().byes_recv < 2 {
        assert!(
            std::time::Instant::now() < deadline,
            "workers never drained"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    root.drain(cfg.drain_timeout).expect("root drain");
    let c = root.counters();
    assert!(c.disconnects >= 1, "the kill must register: {c:?}");
    launcher.kill_all();
}
