//! Exponential backoff with deterministic jitter.
//!
//! Reconnect storms are the classic failure amplifier: every survivor of a
//! peer death redialing on the same schedule turns one failure into a
//! synchronized connection flood. The schedule here doubles from `base` to
//! `cap` and then spreads attempts with ±`jitter_pct`% of deterministic,
//! seed-derived jitter — deterministic because the runtime's whole test
//! story is reproducibility: given the same seed the schedule is a pure
//! function, no wall clock or OS entropy involved.

use std::time::Duration;

/// Backoff schedule parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffCfg {
    /// First retry delay.
    pub base: Duration,
    /// Ceiling the exponential growth clamps to.
    pub cap: Duration,
    /// Attempts before giving up entirely.
    pub retries: u32,
    /// Jitter amplitude as a percentage of the nominal delay (0–100).
    pub jitter_pct: u8,
}

impl Default for BackoffCfg {
    fn default() -> BackoffCfg {
        BackoffCfg {
            base: Duration::from_millis(50),
            cap: Duration::from_secs(1),
            retries: 6,
            jitter_pct: 30,
        }
    }
}

impl BackoffCfg {
    /// A schedule with `retries` attempts between `base` and `cap`.
    pub fn new(base: Duration, cap: Duration, retries: u32) -> BackoffCfg {
        BackoffCfg {
            base,
            cap,
            retries,
            ..BackoffCfg::default()
        }
    }
}

/// One peer's reconnect schedule: an iterator of delays, `None` when the
/// retry budget is spent.
#[derive(Debug, Clone)]
pub struct Backoff {
    cfg: BackoffCfg,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    /// Start a schedule; `seed` decorrelates concurrent reconnectors
    /// (derive it from the dialer's PE and connection generation).
    pub fn new(cfg: BackoffCfg, seed: u64) -> Backoff {
        Backoff {
            cfg,
            attempt: 0,
            // A zero xorshift state would stay zero; fold in a constant.
            rng: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Attempts taken so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    fn xorshift(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// The next delay to sleep before redialing, or `None` once the retry
    /// budget is exhausted.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.attempt >= self.cfg.retries {
            return None;
        }
        let shift = self.attempt.min(20);
        self.attempt += 1;
        let nominal = self
            .cfg
            .base
            .saturating_mul(1u32 << shift)
            .min(self.cfg.cap)
            .max(Duration::from_micros(1));
        let nominal_ns = nominal.as_nanos() as u64;
        let amp = nominal_ns / 100 * self.cfg.jitter_pct.min(100) as u64;
        if amp == 0 {
            return Some(nominal);
        }
        // Uniform in [-amp, +amp] around the nominal delay.
        let r = self.xorshift() % (2 * amp + 1);
        let jittered = nominal_ns - amp + r;
        Some(Duration::from_nanos(jittered))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BackoffCfg {
        BackoffCfg {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(200),
            retries: 8,
            jitter_pct: 20,
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a: Vec<_> = std::iter::from_fn({
            let mut b = Backoff::new(cfg(), 42);
            move || b.next_delay()
        })
        .collect();
        let b: Vec<_> = std::iter::from_fn({
            let mut b = Backoff::new(cfg(), 42);
            move || b.next_delay()
        })
        .collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = Backoff::new(cfg(), 1);
        let mut b = Backoff::new(cfg(), 2);
        let da: Vec<_> = std::iter::from_fn(|| a.next_delay()).collect();
        let db: Vec<_> = std::iter::from_fn(|| b.next_delay()).collect();
        assert_ne!(da, db);
    }

    #[test]
    fn grows_to_cap_within_jitter_bounds() {
        let c = cfg();
        let mut b = Backoff::new(c, 7);
        let mut prev_nominal = Duration::ZERO;
        for i in 0..c.retries {
            let d = b.next_delay().unwrap();
            let nominal = c.base.saturating_mul(1 << i).min(c.cap);
            assert!(nominal >= prev_nominal);
            let amp = nominal.as_nanos() as u64 / 100 * c.jitter_pct as u64;
            let lo = Duration::from_nanos(nominal.as_nanos() as u64 - amp);
            let hi = Duration::from_nanos(nominal.as_nanos() as u64 + amp);
            assert!(
                d >= lo && d <= hi,
                "attempt {i}: {d:?} not in [{lo:?}, {hi:?}]"
            );
            prev_nominal = nominal;
        }
        assert_eq!(b.next_delay(), None, "budget must be capped");
        assert_eq!(b.next_delay(), None, "exhaustion is stable");
    }

    #[test]
    fn zero_jitter_is_exact() {
        let c = BackoffCfg {
            jitter_pct: 0,
            ..cfg()
        };
        let mut b = Backoff::new(c, 9);
        assert_eq!(b.next_delay(), Some(Duration::from_millis(10)));
        assert_eq!(b.next_delay(), Some(Duration::from_millis(20)));
        assert_eq!(b.next_delay(), Some(Duration::from_millis(40)));
    }
}
