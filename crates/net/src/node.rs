//! The mesh node: rendezvous, connection lifecycle, failure detection.
//!
//! One [`NetNode`] per process owns the listener, one reader thread and one
//! writer thread per live connection, and the supervision threads
//! (reconnectors, readmission watchdogs). The runtime's scheduler consumes
//! the node through two narrow surfaces: the [`NetEvent`] receiver (inbound
//! payloads and lifecycle transitions) and the send methods.
//!
//! The transport is wall-clock code by nature — heartbeats, dial timeouts
//! and backoff are *about* real time — which is exactly why it lives behind
//! this crate boundary: the deterministic schedulers upstream never see a
//! clock, only the ordered event stream.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::backoff::Backoff;
use crate::cfg::NetCfg;
use crate::error::NetError;
use crate::frame;
use crate::peer::{spawn_writer, PeerSender};
use crate::proto::{
    self, Hello, Restart, Table, TableEntry, K_BYE, K_HELLO, K_PAYLOAD, K_PING, K_RESTART, K_STATS,
    K_TABLE,
};

/// Read the monotonic clock. Single sanctioned call site for the crate.
pub(crate) fn now() -> Instant {
    // analyze: allow(net-hook, "transport deadlines are wall-clock by definition; the deterministic schedulers never call into this crate")
    Instant::now()
}

/// Sleep. Single sanctioned call site for the crate.
pub(crate) fn pause(d: Duration) {
    // analyze: allow(net-hook, "supervision threads (backoff, watchdogs, polls) sleep by design; never runs on a scheduler thread")
    std::thread::sleep(d);
}

/// What the transport reports up to the runtime driver.
#[derive(Debug)]
pub enum NetEvent {
    /// An envelope arrived from `src`.
    Payload {
        /// Sending PE.
        src: usize,
        /// The encoded envelope, exactly as sent.
        bytes: Vec<u8>,
    },
    /// A peer's connection was admitted (rendezvous, reconnect, readmit).
    PeerUp {
        /// The peer.
        pe: usize,
        /// Epoch the connection was admitted under.
        epoch: u64,
    },
    /// A peer is gone for good: its connection died and reconnect (dialer
    /// side) or the readmission window (acceptor side) was exhausted.
    PeerLost {
        /// The lost peer.
        pe: usize,
        /// Epoch its connection belonged to.
        incarnation: u64,
        /// Cause.
        reason: String,
    },
    /// The root announced a recovery restart (worker side).
    Restart {
        /// New recovery epoch.
        epoch: u64,
        /// Checkpoint generation being restored.
        generation: u64,
    },
    /// A worker's end-of-run counter block (root side; opaque bytes).
    Stats {
        /// Reporting PE.
        pe: usize,
        /// Runtime-encoded counters.
        bytes: Vec<u8>,
    },
}

/// Transport counters (atomics; relaxed — they are diagnostics, not
/// synchronization).
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub(crate) frames_sent: AtomicU64,
    pub(crate) frames_recv: AtomicU64,
    pub(crate) bytes_sent: AtomicU64,
    pub(crate) bytes_recv: AtomicU64,
    pub(crate) pings_sent: AtomicU64,
    pub(crate) pings_recv: AtomicU64,
    pub(crate) reconnects: AtomicU64,
    pub(crate) disconnects: AtomicU64,
    pub(crate) stale_conn_rejected: AtomicU64,
    pub(crate) corrupt_frames: AtomicU64,
    pub(crate) proto_errors: AtomicU64,
    pub(crate) byes_recv: AtomicU64,
    pub(crate) writers_done: AtomicU64,
}

/// A point-in-time copy of the transport counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Frames written to sockets.
    pub frames_sent: u64,
    /// Frames read off sockets.
    pub frames_recv: u64,
    /// Bytes written (headers included).
    pub bytes_sent: u64,
    /// Bytes read (headers included).
    pub bytes_recv: u64,
    /// Heartbeat pings emitted.
    pub pings_sent: u64,
    /// Heartbeat pings received.
    pub pings_recv: u64,
    /// Connections re-established after a loss.
    pub reconnects: u64,
    /// Connection losses observed.
    pub disconnects: u64,
    /// Handshakes rejected for a stale epoch or wrong nonce (zombie
    /// connections fenced at the door).
    pub stale_conn_rejected: u64,
    /// Frames dropped by the hardened decoder.
    pub corrupt_frames: u64,
    /// Structurally invalid control messages from admitted peers.
    pub proto_errors: u64,
    /// Clean goodbyes received.
    pub byes_recv: u64,
}

/// One peer's connection slot.
#[derive(Default)]
struct Slot {
    /// Epoch of the live (or last) connection.
    epoch: u64,
    /// Bumps on every install/teardown; supervision threads carry the
    /// generation they acted for and stand down when it has moved on.
    gen: u64,
    /// Live writer handle, `None` while down.
    sender: Option<PeerSender>,
    /// Shutdown handle on the live connection (a clone of the stream), so
    /// an abrupt teardown can sever the socket out from under its threads.
    raw: Option<TcpStream>,
    /// The peer's advertised listener (root: from its Hello).
    advertised: Option<SocketAddr>,
    /// A clean goodbye was received on the current connection.
    bye: bool,
}

struct Shared {
    me: usize,
    npes: usize,
    nonce: u64,
    cfg: NetCfg,
    listen_addr: SocketAddr,
    epoch: AtomicU64,
    shutting: AtomicBool,
    // analyze: allow(net-hook, "peer table and address book are shared with reader/supervision threads; guarded by coarse short-lived mutexes")
    peers: Mutex<Vec<Slot>>,
    // analyze: allow(net-hook, "see above: address book mutex")
    table: Mutex<Vec<Option<(u64, SocketAddr)>>>,
    events: mpsc::Sender<NetEvent>,
    counters: Arc<Counters>,
}

impl Shared {
    fn peers(&self) -> MutexGuard<'_, Vec<Slot>> {
        // analyze: allow(net-hook, "single lock helper; poisoning cannot happen (no panics while held) and would only abort supervision")
        self.peers.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn addr_book(&self) -> MutexGuard<'_, Vec<Option<(u64, SocketAddr)>>> {
        // analyze: allow(net-hook, "single lock helper for the address book")
        self.table.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn cur_epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    fn emit(&self, ev: NetEvent) {
        let _ = self.events.send(ev);
    }

    fn my_hello(&self) -> Hello {
        Hello {
            pe: self.me as u32,
            npes: self.npes as u32,
            epoch: self.cur_epoch(),
            nonce: self.nonce,
            listen_port: self.listen_addr.port(),
        }
    }

    /// Dial `pe` at `addr`, handshake, and install the connection. The
    /// handshake is a full exchange — the acceptor answers a valid `Hello`
    /// with its own; a rejected dialer sees the connection close instead
    /// and reports a dial failure, never a half-open "success".
    fn dial(self: &Arc<Self>, pe: usize, addr: SocketAddr) -> Result<(), NetError> {
        let stream = TcpStream::connect_timeout(&addr, self.cfg.connect_timeout)?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(self.cfg.connect_timeout));
        let hello = self.my_hello();
        let mut s = &stream;
        frame::write_frame(&mut s, K_HELLO, &hello.encode())?;
        s.flush()?;
        let ack = match frame::read_frame(&mut s, self.cfg.max_frame)? {
            (K_HELLO, payload) => Hello::decode(&payload)?,
            (k, _) => {
                return Err(NetError::Proto(format!(
                    "expected hello ack, got frame kind {k}"
                )))
            }
        };
        if ack.nonce != self.nonce || ack.pe as usize != pe {
            return Err(NetError::Proto(format!(
                "hello ack from wrong peer (pe {}, nonce mismatch: {})",
                ack.pe,
                ack.nonce != self.nonce
            )));
        }
        self.install(pe, hello.epoch, None, stream);
        Ok(())
    }

    /// Adopt a handshaken connection: spawn its writer and reader, replace
    /// whatever the slot held, announce `PeerUp`.
    fn install(
        self: &Arc<Self>,
        pe: usize,
        conn_epoch: u64,
        advertised: Option<SocketAddr>,
        stream: TcpStream,
    ) {
        let _ = stream.set_read_timeout(Some(self.cfg.heartbeat_timeout));
        let sender = spawn_writer(
            pe,
            match stream.try_clone() {
                Ok(s) => s,
                // No write half, no connection: let the reader die on the
                // original stream and the normal loss path take over.
                Err(_) => return,
            },
            self.cfg.heartbeat_every,
            conn_epoch,
            self.cfg.queue_cap,
            Arc::clone(&self.counters),
        );
        let raw = stream.try_clone().ok();
        let gen;
        {
            let mut peers = self.peers();
            let slot = &mut peers[pe];
            slot.gen += 1;
            gen = slot.gen;
            slot.epoch = conn_epoch;
            slot.bye = false;
            slot.sender = Some(sender);
            slot.raw = raw;
            if let Some(a) = advertised {
                slot.advertised = Some(a);
            }
        }
        let me = Arc::clone(self);
        let spawned = std::thread::Builder::new()
            .name(format!("net-rd-{pe}"))
            .spawn(move || me.reader_loop(pe, conn_epoch, gen, stream));
        drop(spawned);
        self.emit(NetEvent::PeerUp {
            pe,
            epoch: conn_epoch,
        });
    }

    /// Read frames until the connection dies or says goodbye.
    fn reader_loop(self: &Arc<Self>, pe: usize, conn_epoch: u64, gen: u64, mut stream: TcpStream) {
        let reason = loop {
            let (kind, payload) = match frame::read_frame(&mut stream, self.cfg.max_frame) {
                Ok(f) => f,
                Err(frame::FrameError::Closed) => break "connection closed".to_string(),
                Err(frame::FrameError::Io(k, m))
                    if k == std::io::ErrorKind::WouldBlock || k == std::io::ErrorKind::TimedOut =>
                {
                    let _ = m;
                    break format!("heartbeat timeout ({:?})", self.cfg.heartbeat_timeout);
                }
                Err(e @ (frame::FrameError::Io(..) | frame::FrameError::Torn { .. })) => {
                    break e.to_string();
                }
                Err(e) => {
                    // Corrupt stream (bad magic/CRC/over-cap): typed, counted,
                    // connection dropped — never panicked on.
                    self.counters.corrupt_frames.fetch_add(1, Ordering::Relaxed);
                    break format!("corrupt frame: {e}");
                }
            };
            self.counters.frames_recv.fetch_add(1, Ordering::Relaxed);
            self.counters
                .bytes_recv
                .fetch_add((frame::HDR_LEN + payload.len()) as u64, Ordering::Relaxed);
            match kind {
                K_PING => {
                    self.counters.pings_recv.fetch_add(1, Ordering::Relaxed);
                }
                K_PAYLOAD => match proto::decode_from(payload) {
                    Ok((src, bytes)) => self.emit(NetEvent::Payload {
                        src: src as usize,
                        bytes,
                    }),
                    Err(_) => {
                        self.counters.proto_errors.fetch_add(1, Ordering::Relaxed);
                    }
                },
                K_STATS => match proto::decode_from(payload) {
                    Ok((src, bytes)) => self.emit(NetEvent::Stats {
                        pe: src as usize,
                        bytes,
                    }),
                    Err(_) => {
                        self.counters.proto_errors.fetch_add(1, Ordering::Relaxed);
                    }
                },
                K_RESTART => match Restart::decode(&payload) {
                    Ok(r) => {
                        // The transport fences first, then tells the
                        // scheduler: any handshake arriving after this
                        // line is judged against the new epoch.
                        self.epoch.fetch_max(r.epoch, Ordering::SeqCst);
                        self.emit(NetEvent::Restart {
                            epoch: r.epoch,
                            generation: r.generation,
                        });
                    }
                    Err(_) => {
                        self.counters.proto_errors.fetch_add(1, Ordering::Relaxed);
                    }
                },
                K_TABLE => match Table::decode(&payload) {
                    Ok(t) => self.handle_table(t),
                    Err(_) => {
                        self.counters.proto_errors.fetch_add(1, Ordering::Relaxed);
                    }
                },
                K_BYE => {
                    self.counters.byes_recv.fetch_add(1, Ordering::Relaxed);
                    let mut peers = self.peers();
                    if peers[pe].gen == gen {
                        peers[pe].bye = true;
                    }
                    break "goodbye".to_string();
                }
                K_HELLO => {
                    self.counters.proto_errors.fetch_add(1, Ordering::Relaxed);
                    break "mid-stream handshake".to_string();
                }
                other => {
                    self.counters.proto_errors.fetch_add(1, Ordering::Relaxed);
                    break format!("unknown frame kind {other}");
                }
            }
        };
        self.conn_down(pe, conn_epoch, gen, reason);
    }

    /// A connection died. Supersession-safe: only the reader of the slot's
    /// current generation acts; everyone else already lost the race.
    fn conn_down(self: &Arc<Self>, pe: usize, conn_epoch: u64, gen: u64, reason: String) {
        if self.shutting.load(Ordering::SeqCst) {
            return;
        }
        let (was_bye, want_gen);
        {
            let mut peers = self.peers();
            let slot = &mut peers[pe];
            if slot.gen != gen {
                return;
            }
            was_bye = slot.bye;
            slot.sender = None;
            slot.raw = None;
            slot.gen += 1;
            want_gen = slot.gen;
        }
        self.counters.disconnects.fetch_add(1, Ordering::Relaxed);
        if was_bye {
            return;
        }
        let me = Arc::clone(self);
        if self.me > pe {
            // We are the dialer for this pair: reconnect with backoff.
            let spawned = std::thread::Builder::new()
                .name(format!("net-redial-{pe}"))
                .spawn(move || me.reconnect(pe, conn_epoch, want_gen, reason));
            drop(spawned);
        } else {
            // We accept for this pair: give the dialer (or, after a
            // recovery, its respawned successor) a readmission window.
            let spawned = std::thread::Builder::new()
                .name(format!("net-wait-{pe}"))
                .spawn(move || {
                    pause(me.cfg.heartbeat_timeout);
                    me.declare_lost_if_down(pe, conn_epoch, want_gen, reason);
                });
            drop(spawned);
        }
    }

    /// Dialer-side repair: immediate first attempt, then the backoff
    /// schedule; gives up into `PeerLost` when the budget is spent.
    fn reconnect(self: &Arc<Self>, pe: usize, conn_epoch: u64, want_gen: u64, reason: String) {
        let seed = self.nonce ^ ((self.me as u64) << 40) ^ ((pe as u64) << 20) ^ want_gen;
        let mut bo = Backoff::new(self.cfg.reconnect, seed);
        loop {
            if self.shutting.load(Ordering::SeqCst) {
                return;
            }
            {
                let peers = self.peers();
                if peers[pe].gen != want_gen || peers[pe].sender.is_some() {
                    return; // superseded (e.g. a readmitted peer dialed us)
                }
            }
            let addr = self.addr_book()[pe].map(|(_, a)| a);
            if let Some(addr) = addr {
                if self.dial(pe, addr).is_ok() {
                    self.counters.reconnects.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
            match bo.next_delay() {
                Some(d) => pause(d),
                None => {
                    let why = format!(
                        "{reason}; reconnect gave up after {} attempts",
                        bo.attempts()
                    );
                    self.declare_lost_if_down(pe, conn_epoch, want_gen, why);
                    return;
                }
            }
        }
    }

    /// Emit `PeerLost` unless the slot has been repaired or superseded.
    fn declare_lost_if_down(&self, pe: usize, conn_epoch: u64, want_gen: u64, reason: String) {
        if self.shutting.load(Ordering::SeqCst) {
            return;
        }
        let down = {
            let peers = self.peers();
            peers[pe].gen == want_gen && peers[pe].sender.is_none()
        };
        if down {
            self.emit(NetEvent::PeerLost {
                pe,
                incarnation: conn_epoch,
                reason,
            });
        }
    }

    /// Merge a peer table and dial whichever lower peers we lack. (The
    /// higher PE always dials, so entries above `me` are address book
    /// updates only — those peers dial us.)
    fn handle_table(self: &Arc<Self>, t: Table) {
        {
            let mut book = self.addr_book();
            for e in &t.entries {
                let pe = e.pe as usize;
                if pe < book.len() {
                    book[pe] = Some((e.epoch, e.addr));
                }
            }
        }
        for e in t.entries {
            let pe = e.pe as usize;
            if pe >= self.me || pe >= self.npes {
                continue;
            }
            let need = {
                let peers = self.peers();
                peers[pe].sender.is_none() || peers[pe].epoch < e.epoch
            };
            if need {
                let me = Arc::clone(self);
                let spawned = std::thread::Builder::new()
                    .name(format!("net-dial-{pe}"))
                    .spawn(move || {
                        let gen = me.peers()[pe].gen;
                        me.reconnect(pe, e.epoch, gen, "table update".to_string());
                    });
                drop(spawned);
            }
        }
    }

    /// Validate an inbound handshake and install the connection.
    fn handshake_in(self: &Arc<Self>, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(self.cfg.connect_timeout));
        let mut s = &stream;
        let hello = match frame::read_frame(&mut s, self.cfg.max_frame) {
            Ok((K_HELLO, payload)) => match Hello::decode(&payload) {
                Ok(h) => h,
                Err(_) => {
                    self.counters.proto_errors.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            },
            Ok(_) => {
                self.counters.proto_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Err(_) => {
                self.counters.corrupt_frames.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        let pe = hello.pe as usize;
        let cur = self.cur_epoch();
        // Fencing: wrong run, wrong topology, wrong dial direction, or a
        // zombie from before a restart — all rejected at the door.
        if hello.nonce != self.nonce
            || hello.npes as usize != self.npes
            || pe >= self.npes
            || pe <= self.me
            || hello.epoch < cur
        {
            self.counters
                .stale_conn_rejected
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Accepted: answer with our own hello so the dialer knows the
        // connection is admitted (a rejection above just closes it).
        let mut s = &stream;
        if frame::write_frame(&mut s, K_HELLO, &self.my_hello().encode()).is_err()
            || s.flush().is_err()
        {
            return;
        }
        let advertised = stream
            .peer_addr()
            .ok()
            .map(|a| SocketAddr::new(a.ip(), hello.listen_port));
        self.install(pe, hello.epoch, advertised, stream);
    }

    /// Accept loop: non-blocking listener polled so shutdown can stop it.
    fn accept_loop(self: &Arc<Self>, listener: TcpListener) {
        let _ = listener.set_nonblocking(true);
        loop {
            if self.shutting.load(Ordering::SeqCst) {
                return;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    let me = Arc::clone(self);
                    let spawned = std::thread::Builder::new()
                        .name("net-accept".to_string())
                        .spawn(move || me.handshake_in(stream));
                    drop(spawned);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    pause(Duration::from_millis(10));
                }
                Err(_) => pause(Duration::from_millis(10)),
            }
        }
    }

    fn send_frame(&self, dst: usize, kind: u8, payload: Vec<u8>) -> Result<(), NetError> {
        if dst >= self.npes {
            return Err(NetError::PeerDown { pe: dst });
        }
        let sender = {
            let peers = self.peers();
            match &peers[dst].sender {
                Some(s) => s.clone(),
                None => return Err(NetError::PeerDown { pe: dst }),
            }
        };
        sender.send(dst, kind, payload, self.cfg.send_timeout)
    }
}

/// One process's endpoint in the mesh. See the crate docs for the
/// lifecycle; the runtime driver is the only intended consumer.
pub struct NetNode {
    shared: Arc<Shared>,
    events: mpsc::Receiver<NetEvent>,
}

impl NetNode {
    fn bind(
        cfg: &NetCfg,
        me: usize,
        npes: usize,
        nonce: u64,
        epoch: u64,
    ) -> Result<NetNode, NetError> {
        let bind_to = if me == 0 {
            cfg.root_addr
                .unwrap_or_else(|| SocketAddr::new(cfg.bind_ip, 0))
        } else {
            SocketAddr::new(cfg.bind_ip, 0)
        };
        let listener = TcpListener::bind(bind_to)?;
        let listen_addr = listener.local_addr()?;
        let (tx, rx) = mpsc::channel();
        let shared = Arc::new(Shared {
            me,
            npes,
            nonce,
            cfg: cfg.clone(),
            listen_addr,
            epoch: AtomicU64::new(epoch),
            shutting: AtomicBool::new(false),
            // analyze: allow(net-hook, "constructing the shared peer table; see the field declarations")
            peers: Mutex::new((0..npes).map(|_| Slot::default()).collect()),
            // analyze: allow(net-hook, "constructing the shared address book; see the field declarations")
            table: Mutex::new(vec![None; npes]),
            events: tx,
            counters: Arc::new(Counters::default()),
        });
        let accept = Arc::clone(&shared);
        std::thread::Builder::new()
            .name(format!("net-listen-{me}"))
            .spawn(move || accept.accept_loop(listener))
            .map_err(|e| NetError::Io(std::io::ErrorKind::Other, e.to_string()))?;
        Ok(NetNode { shared, events: rx })
    }

    /// Bind the root's endpoint (PE 0). Workers are awaited separately so
    /// the caller can spawn them knowing the actual listen address.
    pub fn root(cfg: &NetCfg, npes: usize, nonce: u64) -> Result<NetNode, NetError> {
        NetNode::bind(cfg, 0, npes, nonce, 0)
    }

    /// Root: wait for every worker's handshake, then broadcast the peer
    /// table that completes the mesh.
    pub fn await_workers(&self) -> Result<(), NetError> {
        self.wait_mesh(self.shared.cfg.rendezvous_timeout)?;
        self.broadcast_table();
        Ok(())
    }

    /// Bootstrap a worker: bind, dial the root, then wait for the table
    /// and the full mesh.
    pub fn worker(
        cfg: &NetCfg,
        me: usize,
        npes: usize,
        nonce: u64,
        root: SocketAddr,
        epoch: u64,
    ) -> Result<NetNode, NetError> {
        let node = NetNode::bind(cfg, me, npes, nonce, epoch)?;
        node.shared.addr_book()[0] = Some((epoch, root));
        let deadline = now() + cfg.rendezvous_timeout;
        // The root may not be listening yet under an external launcher;
        // keep dialing until the rendezvous window closes.
        loop {
            match node.shared.dial(0, root) {
                Ok(()) => break,
                Err(e) => {
                    if now() >= deadline {
                        return Err(NetError::Bootstrap(format!(
                            "worker {me} could not reach root at {root}: {e}"
                        )));
                    }
                    pause(Duration::from_millis(50));
                }
            }
        }
        node.wait_mesh(deadline.saturating_duration_since(now()))?;
        Ok(node)
    }

    /// Poll until every remote slot has a live connection.
    fn wait_mesh(&self, budget: Duration) -> Result<(), NetError> {
        let deadline = now() + budget;
        loop {
            let missing: Vec<usize> = {
                let peers = self.shared.peers();
                (0..self.shared.npes)
                    .filter(|&p| p != self.shared.me && peers[p].sender.is_none())
                    .collect()
            };
            if missing.is_empty() {
                return Ok(());
            }
            if now() >= deadline {
                return Err(NetError::Bootstrap(format!(
                    "mesh incomplete after {budget:?}: no connection to PE(s) {missing:?}"
                )));
            }
            pause(Duration::from_millis(5));
        }
    }

    /// The local listener's address.
    pub fn listen_addr(&self) -> SocketAddr {
        self.shared.listen_addr
    }

    /// The lifecycle/payload event stream.
    pub fn events(&self) -> &mpsc::Receiver<NetEvent> {
        &self.events
    }

    /// Current recovery epoch as the transport knows it.
    pub fn epoch(&self) -> u64 {
        self.shared.cur_epoch()
    }

    /// Raise the transport's epoch fence (root, at the start of a
    /// recovery). Monotone.
    pub fn set_epoch(&self, e: u64) {
        self.shared.epoch.fetch_max(e, Ordering::SeqCst);
    }

    /// Ship an encoded envelope to `dst`.
    pub fn send_payload(&self, dst: usize, env: &[u8]) -> Result<(), NetError> {
        self.shared.send_frame(
            dst,
            K_PAYLOAD,
            proto::encode_from(self.shared.me as u32, env),
        )
    }

    /// Worker: ship the end-of-run counter block to the root.
    pub fn send_stats(&self, bytes: &[u8]) -> Result<(), NetError> {
        self.shared
            .send_frame(0, K_STATS, proto::encode_from(self.shared.me as u32, bytes))
    }

    /// Root: announce a recovery restart to every live peer (and fence the
    /// local transport first).
    pub fn broadcast_restart(&self, epoch: u64, generation: u64) {
        self.set_epoch(epoch);
        let payload = Restart { epoch, generation }.encode();
        for pe in 0..self.shared.npes {
            if pe != self.shared.me {
                let _ = self.shared.send_frame(pe, K_RESTART, payload.clone());
            }
        }
    }

    /// Root: broadcast the current peer table (bootstrap completion, and
    /// after every readmission so survivors re-dial the newcomer).
    pub fn broadcast_table(&self) {
        let table = {
            let peers = self.shared.peers();
            let mut entries = vec![TableEntry {
                pe: self.shared.me as u32,
                epoch: self.shared.cur_epoch(),
                addr: self.shared.listen_addr,
            }];
            for (pe, slot) in peers.iter().enumerate() {
                if pe == self.shared.me {
                    continue;
                }
                if let Some(addr) = slot.advertised {
                    entries.push(TableEntry {
                        pe: pe as u32,
                        epoch: slot.epoch,
                        addr,
                    });
                }
            }
            Table {
                epoch: self.shared.cur_epoch(),
                entries,
            }
        };
        let payload = table.encode();
        for pe in 0..self.shared.npes {
            if pe != self.shared.me {
                let _ = self.shared.send_frame(pe, K_TABLE, payload.clone());
            }
        }
    }

    /// Whether `pe` has a live connection.
    pub fn peer_live(&self, pe: usize) -> bool {
        pe < self.shared.npes && self.shared.peers()[pe].sender.is_some()
    }

    /// Whether `pe` is live on a connection admitted at exactly `epoch`
    /// (readmission check after a respawn).
    pub fn peer_at_epoch(&self, pe: usize, epoch: u64) -> bool {
        if pe >= self.shared.npes {
            return false;
        }
        let peers = self.shared.peers();
        peers[pe].sender.is_some() && peers[pe].epoch == epoch
    }

    /// Whether `pe`'s current/last connection ended with a clean goodbye.
    pub fn peer_bye(&self, pe: usize) -> bool {
        pe < self.shared.npes && self.shared.peers()[pe].bye
    }

    /// Snapshot the transport counters.
    pub fn counters(&self) -> CounterSnapshot {
        let c = &self.shared.counters;
        CounterSnapshot {
            frames_sent: c.frames_sent.load(Ordering::Relaxed),
            frames_recv: c.frames_recv.load(Ordering::Relaxed),
            bytes_sent: c.bytes_sent.load(Ordering::Relaxed),
            bytes_recv: c.bytes_recv.load(Ordering::Relaxed),
            pings_sent: c.pings_sent.load(Ordering::Relaxed),
            pings_recv: c.pings_recv.load(Ordering::Relaxed),
            reconnects: c.reconnects.load(Ordering::Relaxed),
            disconnects: c.disconnects.load(Ordering::Relaxed),
            stale_conn_rejected: c.stale_conn_rejected.load(Ordering::Relaxed),
            corrupt_frames: c.corrupt_frames.load(Ordering::Relaxed),
            proto_errors: c.proto_errors.load(Ordering::Relaxed),
            byes_recv: c.byes_recv.load(Ordering::Relaxed),
        }
    }

    /// Abrupt teardown: sever every socket with no goodbye and stop the
    /// listener. From the peers' point of view this is indistinguishable
    /// from a process death — which is exactly its purpose: in-process
    /// fault-injection tests use it where the multi-process suite uses a
    /// real `SIGKILL`, and the runtime driver uses it to abandon a run
    /// whose drain already failed.
    pub fn kill(&self) {
        self.shared.shutting.store(true, Ordering::SeqCst);
        let mut peers = self.shared.peers();
        for slot in peers.iter_mut() {
            slot.sender = None; // writers exit on disconnect, silently
            if let Some(raw) = slot.raw.take() {
                let _ = raw.shutdown(std::net::Shutdown::Both);
            }
        }
    }

    /// Graceful shutdown: stop supervision, ask every writer to drain its
    /// queue and say goodbye, and wait (bounded) for the flushes.
    pub fn drain(&self, timeout: Duration) -> Result<(), NetError> {
        self.shared.shutting.store(true, Ordering::SeqCst);
        let deadline = now() + timeout;
        let done0 = self.shared.counters.writers_done.load(Ordering::SeqCst);
        let taken: Vec<PeerSender> = {
            let mut peers = self.shared.peers();
            peers.iter_mut().filter_map(|s| s.sender.take()).collect()
        };
        let live = taken.len() as u64;
        for sender in taken {
            sender.close(timeout / 4);
            // The handle drops here; the writer exits after the queued
            // Close (or the disconnect) reaches it.
        }
        let target = done0.saturating_add(live);
        while self.shared.counters.writers_done.load(Ordering::SeqCst) < target {
            if now() >= deadline {
                return Err(NetError::Drain(format!(
                    "{} writer(s) still flushing after {timeout:?}",
                    target - self.shared.counters.writers_done.load(Ordering::SeqCst)
                )));
            }
            pause(Duration::from_millis(2));
        }
        Ok(())
    }
}
