//! Process launching: how the root starts, tracks, kills, and respawns the
//! worker PEs of a self-exec cluster.
//!
//! The rendezvous coordinates travel through `CHARMRS_NET_*` environment
//! variables: a process that finds them set knows it is a worker and which
//! PE it is; their absence means it is the root (or a plain single-process
//! run). Respawn after a failure reuses the same mechanism with a bumped
//! epoch, so a recovered worker is indistinguishable from a fresh one
//! except for the epoch in its handshake.

use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};

use crate::cfg::{NetCfg, Spawn};
use crate::error::NetError;

/// Worker's PE number.
pub const ENV_PE: &str = "CHARMRS_NET_PE";
/// Cluster size.
pub const ENV_NPES: &str = "CHARMRS_NET_NPES";
/// Root listener address.
pub const ENV_ROOT: &str = "CHARMRS_NET_ROOT";
/// Run nonce (fences crossed runs).
pub const ENV_NONCE: &str = "CHARMRS_NET_NONCE";
/// Recovery epoch to start in (0 at bootstrap, >0 after a respawn).
pub const ENV_EPOCH: &str = "CHARMRS_NET_EPOCH";
/// First checkpoint sequence number this incarnation may write.
pub const ENV_SEQ: &str = "CHARMRS_NET_SEQ";

/// The decoded worker-side environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerEnv {
    /// This process's PE.
    pub pe: usize,
    /// Cluster size.
    pub npes: usize,
    /// The root's listener.
    pub root: SocketAddr,
    /// Run nonce.
    pub nonce: u64,
    /// Epoch to start in.
    pub epoch: u64,
    /// First checkpoint sequence number to use.
    pub seq: u64,
}

fn env_parse<T: std::str::FromStr>(key: &str) -> Result<T, NetError> {
    let v =
        std::env::var(key).map_err(|_| NetError::Bootstrap(format!("worker env {key} missing")))?;
    v.parse()
        .map_err(|_| NetError::Bootstrap(format!("worker env {key}={v} unparsable")))
}

/// Decode the worker environment, if present. `None` means this process is
/// the root (or not a Net run at all); `Some(Err)` means the variables are
/// present but torn — a bootstrap error, not a silent fallback.
pub fn worker_env() -> Option<Result<WorkerEnv, NetError>> {
    if std::env::var_os(ENV_PE).is_none() {
        return None;
    }
    Some((|| {
        Ok(WorkerEnv {
            pe: env_parse(ENV_PE)?,
            npes: env_parse(ENV_NPES)?,
            root: env_parse(ENV_ROOT)?,
            nonce: env_parse(ENV_NONCE)?,
            epoch: env_parse(ENV_EPOCH)?,
            seq: env_parse(ENV_SEQ)?,
        })
    })())
}

/// Whether this process is a spawned worker (cheap check for test guards).
pub fn is_net_worker() -> bool {
    std::env::var_os(ENV_PE).is_some()
}

/// Kill the current process the hard way (`SIGKILL`-equivalent): no
/// destructors, no flushes, no goodbye on the wire. This is the fault
/// *injection* primitive — recovery tests use it so the failure the root
/// observes is a real process death, not a simulated one.
pub fn kill_self_hard() -> ! {
    let pid = std::process::id().to_string();
    let _ = Command::new("kill").args(["-9", &pid]).status();
    // Non-unix (or a sandbox that forbids kill): abort still skips all
    // cleanup, which is the property the tests rely on.
    std::process::abort();
}

/// The root's handle on its spawned worker processes.
pub struct Launcher {
    children: Vec<Option<Child>>,
    cfg: NetCfg,
    npes: usize,
    root: SocketAddr,
    nonce: u64,
}

impl Launcher {
    /// A launcher that manages no processes (external spawning, or the
    /// worker side).
    pub fn empty(npes: usize) -> Launcher {
        Launcher {
            children: (0..npes).map(|_| None).collect(),
            cfg: NetCfg::default(),
            npes,
            root: SocketAddr::from(([127, 0, 0, 1], 0)),
            nonce: 0,
        }
    }

    /// Spawn workers `1..npes` per `cfg.spawn`. With [`Spawn::External`]
    /// this records the coordinates but starts nothing.
    pub fn spawn_all(
        cfg: &NetCfg,
        npes: usize,
        root: SocketAddr,
        nonce: u64,
        seq_start: u64,
    ) -> Result<Launcher, NetError> {
        let mut l = Launcher {
            children: (0..npes).map(|_| None).collect(),
            cfg: cfg.clone(),
            npes,
            root,
            nonce,
        };
        if matches!(cfg.spawn, Spawn::External) {
            return Ok(l);
        }
        for pe in 1..npes {
            l.respawn(pe, 0, seq_start)?;
        }
        Ok(l)
    }

    /// Whether this launcher can respawn a dead worker.
    pub fn can_respawn(&self) -> bool {
        !matches!(self.cfg.spawn, Spawn::External)
    }

    /// (Re-)start worker `pe` at `epoch`, allowed to write checkpoints from
    /// sequence `seq_start`. Any previous child for the slot is reaped.
    pub fn respawn(&mut self, pe: usize, epoch: u64, seq_start: u64) -> Result<(), NetError> {
        if pe == 0 || pe >= self.npes {
            return Err(NetError::Bootstrap(format!("cannot spawn pe {pe}")));
        }
        if let Some(mut old) = self.children[pe].take() {
            let _ = old.kill();
            let _ = old.wait();
        }
        let exe = std::env::current_exe()
            .map_err(|e| NetError::Bootstrap(format!("current_exe: {e}")))?;
        let mut cmd = Command::new(exe);
        match &self.cfg.spawn {
            Spawn::SelfExec { args, inherit_args } => {
                if *inherit_args {
                    cmd.args(std::env::args().skip(1));
                } else {
                    cmd.args(args);
                }
            }
            Spawn::External => {
                return Err(NetError::Bootstrap(
                    "externally-launched workers cannot be respawned".into(),
                ))
            }
        }
        cmd.env(ENV_PE, pe.to_string())
            .env(ENV_NPES, self.npes.to_string())
            .env(ENV_ROOT, self.root.to_string())
            .env(ENV_NONCE, self.nonce.to_string())
            .env(ENV_EPOCH, epoch.to_string())
            .env(ENV_SEQ, seq_start.to_string())
            .stdin(Stdio::null());
        let child = cmd
            .spawn()
            .map_err(|e| NetError::Bootstrap(format!("spawning worker {pe}: {e}")))?;
        self.children[pe] = Some(child);
        Ok(())
    }

    /// Poll for dead children without blocking; returns the PEs whose
    /// process has exited since the last poll. This is the fastest of the
    /// three failure detectors (the others being heartbeat timeout and
    /// reconnect exhaustion) when root and workers share a machine.
    pub fn poll_exited(&mut self) -> Vec<usize> {
        let mut dead = Vec::new();
        for (pe, slot) in self.children.iter_mut().enumerate() {
            let exited = match slot {
                Some(child) => matches!(child.try_wait(), Ok(Some(_)) | Err(_)),
                None => false,
            };
            if exited {
                *slot = None;
                dead.push(pe);
            }
        }
        dead
    }

    /// Kill and reap every remaining child.
    pub fn kill_all(&mut self) {
        for slot in self.children.iter_mut() {
            if let Some(mut child) = slot.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

impl Drop for Launcher {
    fn drop(&mut self) {
        // Never leave orphan workers behind, whatever path exited the run.
        self.kill_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_env_absent_means_root() {
        // The test runner itself is not a worker.
        if std::env::var_os(ENV_PE).is_none() {
            assert!(worker_env().is_none());
            assert!(!is_net_worker());
        }
    }

    #[test]
    fn empty_launcher_has_no_children() {
        let mut l = Launcher::empty(4);
        assert!(l.poll_exited().is_empty());
        l.kill_all();
    }
}
