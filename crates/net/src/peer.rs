//! Per-peer outbound writer: a bounded queue drained by one thread that
//! owns the connection's write half.
//!
//! One writer thread per connection keeps the scheduler's send path
//! non-blocking up to the queue bound (backpressure past it is a *signal* —
//! a peer that cannot drain its queue for a whole send timeout is treated
//! like a dead one). The writer doubles as the heartbeat source: whenever
//! the queue has been idle for `heartbeat_every` it emits a ping, so the
//! peer's read timeout only ever fires on genuine silence.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::Duration;

use crate::error::NetError;
use crate::frame;
use crate::node::Counters;
use crate::proto::{encode_ping, K_BYE, K_PING};

/// What the owning node asks of a writer.
pub(crate) enum WriteCmd {
    /// Emit one frame.
    Frame {
        /// Frame kind byte.
        kind: u8,
        /// Frame payload.
        payload: Vec<u8>,
    },
    /// Drain the queue, send `Bye`, close the write half, exit.
    Close,
}

/// Handle to one connection's writer thread. Dropping the last handle
/// (without `close`) makes the writer flush what it has and exit silently —
/// the teardown used when a connection is superseded rather than drained.
#[derive(Clone)]
pub(crate) struct PeerSender {
    tx: SyncSender<WriteCmd>,
}

impl PeerSender {
    /// Enqueue a frame, waiting up to `timeout` on a full queue.
    pub(crate) fn send(
        &self,
        pe: usize,
        kind: u8,
        payload: Vec<u8>,
        timeout: Duration,
    ) -> Result<(), NetError> {
        let deadline = crate::node::now() + timeout;
        let mut cmd = WriteCmd::Frame { kind, payload };
        loop {
            match self.tx.try_send(cmd) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Full(c)) => {
                    if crate::node::now() >= deadline {
                        return Err(NetError::QueueTimeout { pe });
                    }
                    cmd = c;
                    crate::node::pause(Duration::from_millis(1));
                }
                Err(TrySendError::Disconnected(_)) => return Err(NetError::PeerDown { pe }),
            }
        }
    }

    /// Ask the writer to drain, say goodbye and exit. Best-effort: gives up
    /// after `budget` if the queue never opens (the drain deadline catches
    /// the writer either way).
    pub(crate) fn close(&self, budget: Duration) {
        let deadline = crate::node::now() + budget;
        let mut cmd = WriteCmd::Close;
        loop {
            match self.tx.try_send(cmd) {
                Ok(()) | Err(TrySendError::Disconnected(_)) => return,
                Err(TrySendError::Full(c)) => {
                    if crate::node::now() >= deadline {
                        return;
                    }
                    cmd = c;
                    crate::node::pause(Duration::from_millis(1));
                }
            }
        }
    }
}

/// Spawn the writer thread for one connection. `epoch` is stamped into
/// heartbeat pings; `counters.writers_done` ticks when the thread exits, so
/// a drain can wait for flush completion without a timed join.
pub(crate) fn spawn_writer(
    pe: usize,
    stream: TcpStream,
    heartbeat_every: Duration,
    epoch: u64,
    cap: usize,
    counters: Arc<Counters>,
) -> PeerSender {
    let (tx, rx) = sync_channel::<WriteCmd>(cap.max(1));
    let builder = std::thread::Builder::new().name(format!("net-wr-{pe}"));
    let spawned = builder.spawn(move || {
        writer_loop(stream, rx, heartbeat_every, epoch, &counters);
        counters.writers_done.fetch_add(1, Ordering::SeqCst);
    });
    // A spawn failure leaves the channel sender-less; sends surface it as
    // PeerDown and the peer lifecycle treats the connection as dead.
    drop(spawned);
    PeerSender { tx }
}

fn write_one(out: &mut TcpStream, kind: u8, payload: &[u8], counters: &Counters) -> bool {
    if frame::write_frame(out, kind, payload).is_err() {
        return false;
    }
    counters.frames_sent.fetch_add(1, Ordering::Relaxed);
    counters
        .bytes_sent
        .fetch_add((frame::HDR_LEN + payload.len()) as u64, Ordering::Relaxed);
    true
}

fn writer_loop(
    mut stream: TcpStream,
    rx: Receiver<WriteCmd>,
    heartbeat_every: Duration,
    epoch: u64,
    counters: &Counters,
) {
    loop {
        match rx.recv_timeout(heartbeat_every) {
            Ok(WriteCmd::Frame { kind, payload }) => {
                if !write_one(&mut stream, kind, &payload, counters) {
                    return;
                }
            }
            Ok(WriteCmd::Close) => break,
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                // Idle: prove liveness.
                if !write_one(&mut stream, K_PING, &encode_ping(epoch), counters) {
                    return;
                }
                counters.pings_sent.fetch_add(1, Ordering::Relaxed);
                if stream.flush().is_err() {
                    return;
                }
            }
            // The sender was dropped: the connection was superseded. Flush
            // what we hold and exit without a goodbye.
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                let _ = stream.flush();
                return;
            }
        }
        // Opportunistically drain whatever queued while writing, then
        // flush once for the burst.
        loop {
            match rx.try_recv() {
                Ok(WriteCmd::Frame { kind, payload }) => {
                    if !write_one(&mut stream, kind, &payload, counters) {
                        return;
                    }
                }
                Ok(WriteCmd::Close) => {
                    let _ = stream.flush();
                    goodbye(&mut stream, counters);
                    return;
                }
                Err(_) => break,
            }
        }
        if stream.flush().is_err() {
            return;
        }
    }
    // Close requested from the blocking wait: drain anything still queued,
    // then say goodbye.
    while let Ok(cmd) = rx.try_recv() {
        if let WriteCmd::Frame { kind, payload } = cmd {
            if !write_one(&mut stream, kind, &payload, counters) {
                return;
            }
        }
    }
    let _ = stream.flush();
    goodbye(&mut stream, counters);
}

/// Final `Bye` + flush + half-close, so the peer's reader sees a clean
/// goodbye followed by EOF instead of a death.
fn goodbye(stream: &mut TcpStream, counters: &Counters) {
    if write_one(stream, K_BYE, &[], counters) {
        let _ = stream.flush();
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
}
