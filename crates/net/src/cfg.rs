//! Net backend configuration.

use std::net::{IpAddr, Ipv4Addr, SocketAddr};
use std::time::Duration;

use crate::backoff::BackoffCfg;

/// How worker processes come to exist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Spawn {
    /// The root re-execs the current binary once per worker PE, passing the
    /// rendezvous coordinates through `CHARMRS_NET_*` environment
    /// variables. `args` replaces the child argv; with `inherit_args` the
    /// child gets the parent's own arguments instead (the right default
    /// for a plain application binary, whose `main` simply runs again and
    /// takes the worker branch inside `Runtime::try_run`).
    SelfExec {
        /// Explicit child arguments (ignored when `inherit_args`).
        args: Vec<String>,
        /// Re-use the parent's argv.
        inherit_args: bool,
    },
    /// Workers are started by an external launcher (mpirun-style); the root
    /// only listens. The root cannot respawn a worker it did not start, so
    /// process-kill recovery is unavailable in this mode.
    External,
}

/// Tunables for the Net backend (`Backend::Net`). The defaults suit a
/// loopback cluster; every timeout is explicit so tests can shrink them.
#[derive(Debug, Clone)]
pub struct NetCfg {
    /// Interface to bind listeners on.
    pub bind_ip: IpAddr,
    /// Fixed root endpoint for externally-launched clusters; `None` lets
    /// the root bind an ephemeral port (self-exec spawns pass the actual
    /// address to workers through the environment).
    pub root_addr: Option<SocketAddr>,
    /// Writer-side heartbeat: a ping is sent on any connection idle this
    /// long, so the peer's read timeout only ever fires on real silence.
    pub heartbeat_every: Duration,
    /// Reader-side liveness bound: a connection with no traffic (not even
    /// pings) for this long is declared dead.
    pub heartbeat_timeout: Duration,
    /// Per-attempt TCP connect / handshake-read timeout.
    pub connect_timeout: Duration,
    /// Total window for the whole mesh to assemble at bootstrap (and for a
    /// respawned worker to rejoin after a recovery).
    pub rendezvous_timeout: Duration,
    /// Deadline for flushing and closing every connection at shutdown.
    pub drain_timeout: Duration,
    /// Reconnect schedule for the dialing side of a lost connection.
    pub reconnect: BackoffCfg,
    /// Bounded outbound queue depth per peer (frames, not bytes).
    pub queue_cap: usize,
    /// How long a send may wait on a full outbound queue before the peer
    /// is treated as collapsed.
    pub send_timeout: Duration,
    /// Largest frame payload a reader will accept.
    pub max_frame: usize,
    /// How worker processes are started.
    pub spawn: Spawn,
}

impl Default for NetCfg {
    fn default() -> NetCfg {
        NetCfg {
            bind_ip: IpAddr::V4(Ipv4Addr::LOCALHOST),
            root_addr: None,
            heartbeat_every: Duration::from_millis(500),
            heartbeat_timeout: Duration::from_secs(5),
            connect_timeout: Duration::from_secs(2),
            rendezvous_timeout: Duration::from_secs(10),
            drain_timeout: Duration::from_secs(5),
            reconnect: BackoffCfg::default(),
            queue_cap: 1024,
            send_timeout: Duration::from_secs(5),
            max_frame: crate::frame::DEFAULT_MAX_FRAME,
            spawn: Spawn::SelfExec {
                args: Vec::new(),
                inherit_args: true,
            },
        }
    }
}

impl NetCfg {
    /// Default config (loopback, self-exec workers).
    pub fn new() -> NetCfg {
        NetCfg::default()
    }

    /// Spawn workers by re-execing the current binary with these arguments
    /// (replacing the parent's argv). Test binaries use this to re-enter a
    /// single named test in the child: `["test_name", "--exact"]`.
    pub fn worker_args<S: Into<String>>(mut self, args: impl IntoIterator<Item = S>) -> Self {
        self.spawn = Spawn::SelfExec {
            args: args.into_iter().map(Into::into).collect(),
            inherit_args: false,
        };
        self
    }

    /// Workers are launched externally; the root listens on `addr`.
    pub fn external(mut self, addr: SocketAddr) -> Self {
        self.spawn = Spawn::External;
        self.root_addr = Some(addr);
        self
    }

    /// Set both heartbeat knobs: pings every `every`, death after `timeout`
    /// of silence.
    pub fn heartbeat(mut self, every: Duration, timeout: Duration) -> Self {
        self.heartbeat_every = every;
        self.heartbeat_timeout = timeout;
        self
    }

    /// Set the bootstrap/readmission rendezvous window.
    pub fn rendezvous_timeout(mut self, t: Duration) -> Self {
        self.rendezvous_timeout = t;
        self
    }

    /// Set the shutdown drain deadline.
    pub fn drain_timeout(mut self, t: Duration) -> Self {
        self.drain_timeout = t;
        self
    }

    /// Set the reconnect backoff schedule.
    pub fn reconnect(mut self, b: BackoffCfg) -> Self {
        self.reconnect = b;
        self
    }
}
