//! Typed transport failures.

use crate::frame::FrameError;

/// Why a transport operation failed. Everything a socket can do to us maps
/// here — the crate never panics on network input or peer misbehavior.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Underlying socket/OS error.
    Io(std::io::ErrorKind, String),
    /// Framing-layer rejection (bad magic, checksum, torn read, over-cap).
    Frame(FrameError),
    /// A structurally invalid control message from an admitted peer.
    Proto(String),
    /// Rendezvous failed: a worker never arrived, the root was unreachable,
    /// or the mesh did not complete within the rendezvous window.
    Bootstrap(String),
    /// A peer's connection died and every reconnect/readmission attempt was
    /// exhausted. `incarnation` is the recovery epoch the lost connection
    /// was admitted under.
    PeerLost {
        /// The lost peer's PE.
        pe: usize,
        /// The epoch its connection belonged to.
        incarnation: u64,
        /// Human-readable cause (EOF, heartbeat timeout, ...).
        reason: String,
    },
    /// A send was asked of a peer with no live connection.
    PeerDown {
        /// The unreachable PE.
        pe: usize,
    },
    /// The peer's bounded outbound queue stayed full for the whole send
    /// timeout — the peer is alive-but-stuck or the link has collapsed.
    QueueTimeout {
        /// The backpressuring PE.
        pe: usize,
    },
    /// Graceful shutdown could not flush and close every connection within
    /// the drain deadline.
    Drain(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(kind, msg) => write!(f, "io error ({kind:?}): {msg}"),
            NetError::Frame(e) => write!(f, "framing error: {e}"),
            NetError::Proto(msg) => write!(f, "protocol violation: {msg}"),
            NetError::Bootstrap(msg) => write!(f, "bootstrap failed: {msg}"),
            NetError::PeerLost {
                pe,
                incarnation,
                reason,
            } => {
                write!(f, "peer PE {pe} (incarnation {incarnation}) lost: {reason}")
            }
            NetError::PeerDown { pe } => write!(f, "no live connection to PE {pe}"),
            NetError::QueueTimeout { pe } => {
                write!(
                    f,
                    "outbound queue to PE {pe} stayed full past the send timeout"
                )
            }
            NetError::Drain(msg) => write!(f, "drain failed: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e.kind(), e.to_string())
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        NetError::Frame(e)
    }
}
