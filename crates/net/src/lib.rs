//! # charm-net — multi-process TCP transport for charm-rs
//!
//! The Net backend runs each PE as a separate OS process; this crate is the
//! transport layer underneath it (DESIGN.md §13). It carries opaque,
//! length-framed byte payloads (the runtime's encoded envelopes — including
//! TRAM aggregation frames, which go on the socket unchanged) between peers
//! over `TcpStream`s, and owns the *peer lifecycle*:
//!
//! * **Rendezvous** — PE 0 listens; workers register with
//!   `{pe, epoch, nonce}` and their own listen port; the root broadcasts
//!   the peer table; the mesh completes with a fixed dial direction (the
//!   higher PE dials the lower PE's listener), so no connection is ever
//!   established twice.
//! * **Heartbeats** — each connection's writer emits a ping whenever it has
//!   been idle for `heartbeat_every`; each reader arms a read timeout of
//!   `heartbeat_timeout`, so silent peer death is detected even when the
//!   TCP stack never reports an error.
//! * **Reconnect** — the dialing side retries a lost connection with
//!   exponential backoff plus deterministic jitter and capped retries; the
//!   accepting side arms a readmission window. Only when both give up does
//!   the loss surface as a [`NetEvent::PeerLost`].
//! * **Incarnation fencing** — every handshake carries the sender's
//!   recovery epoch; an accepting node rejects handshakes from an epoch
//!   older than its own, so zombie processes from before a restart can
//!   never rejoin the mesh (their frames are counted as stale and
//!   dropped at the door).
//! * **Graceful drain** — shutdown flushes every bounded outbound queue,
//!   sends a `Bye` so the peer can distinguish clean close from death, and
//!   bounds the whole teardown with a deadline.
//!
//! The crate is std-only and knows nothing about envelopes, chares or
//! checkpoints — `charm-core`'s Net driver maps [`NetEvent`]s onto the
//! restart supervisor. The framing layer is compiled from
//! `charm-wire`'s hardened `frame` module source, so both crates agree on
//! the byte format while this crate stays dependency-free.

#![forbid(unsafe_code)]

pub mod backoff;
pub mod cfg;
pub mod error;
#[path = "../../wire/src/frame.rs"]
pub mod frame;
pub mod launch;
pub mod node;
pub mod peer;
pub mod proto;

pub use backoff::{Backoff, BackoffCfg};
pub use cfg::{NetCfg, Spawn};
pub use error::NetError;
pub use launch::{is_net_worker, kill_self_hard, worker_env, Launcher, WorkerEnv};
pub use node::{CounterSnapshot, NetEvent, NetNode};
