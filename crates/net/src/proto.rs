//! Control-plane messages and their hand-rolled little-endian codec.
//!
//! The frame `kind` byte selects the message; payload layouts are fixed
//! little-endian with length-prefixed variable parts. The codec is written
//! against untrusted input: every read is bounds-checked and returns a
//! typed error, mirroring the framing layer's never-panic contract.
//! Application traffic ([`K_PAYLOAD`]) is opaque here — the runtime's own
//! envelope codec owns those bytes; this layer only prefixes the sending
//! PE for attribution.

use std::net::SocketAddr;

use crate::error::NetError;

/// Handshake: first frame on every new connection, dialer → acceptor.
pub const K_HELLO: u8 = 1;
/// Peer table broadcast, root → everyone.
pub const K_TABLE: u8 = 2;
/// Heartbeat; carries the sender's current epoch.
pub const K_PING: u8 = 3;
/// Opaque runtime envelope, `src_pe`-prefixed.
pub const K_PAYLOAD: u8 = 4;
/// Recovery restart notice, root → survivors.
pub const K_RESTART: u8 = 5;
/// Worker's end-of-run counters, worker → root, opaque to this layer.
pub const K_STATS: u8 = 6;
/// Graceful close notice: distinguishes drain from death.
pub const K_BYE: u8 = 7;

/// Bounds-checked little-endian reader over an untrusted payload.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a payload.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                NetError::Proto(format!(
                    "truncated message: wanted {n} bytes at offset {}, have {}",
                    self.pos,
                    self.buf.len()
                ))
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Read a `u16`.
    pub fn u16(&mut self) -> Result<u16, NetError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, NetError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, NetError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a `u16`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, NetError> {
        let n = self.u16()? as usize;
        let b = self.take(n)?;
        std::str::from_utf8(b).map_err(|_| NetError::Proto("non-UTF-8 string field".into()))
    }

    /// All remaining bytes.
    pub fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    /// Error unless the whole payload was consumed.
    pub fn finish(self) -> Result<(), NetError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(NetError::Proto(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            )))
        }
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize);
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Handshake sent as the first frame of every connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// The dialer's PE.
    pub pe: u32,
    /// Cluster size the dialer was configured with (must match).
    pub npes: u32,
    /// The dialer's recovery epoch; acceptors fence out older epochs.
    pub epoch: u64,
    /// Run nonce minted by the root; fences out crossed runs.
    pub nonce: u64,
    /// Port the dialer's own listener is bound to (its IP is taken from
    /// the connection), so the root can build the peer table.
    pub listen_port: u16,
}

impl Hello {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(26);
        out.extend_from_slice(&self.pe.to_le_bytes());
        out.extend_from_slice(&self.npes.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.nonce.to_le_bytes());
        out.extend_from_slice(&self.listen_port.to_le_bytes());
        out
    }

    /// Decode from a frame payload.
    pub fn decode(buf: &[u8]) -> Result<Hello, NetError> {
        let mut r = Reader::new(buf);
        let h = Hello {
            pe: r.u32()?,
            npes: r.u32()?,
            epoch: r.u64()?,
            nonce: r.u64()?,
            listen_port: r.u16()?,
        };
        r.finish()?;
        Ok(h)
    }
}

/// One row of the peer table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableEntry {
    /// The peer's PE.
    pub pe: u32,
    /// Epoch the root last admitted it under.
    pub epoch: u64,
    /// Its listener address.
    pub addr: SocketAddr,
}

/// The root's view of the mesh, broadcast after rendezvous and after every
/// readmission (survivors re-dial entries whose address or epoch changed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// The root's current epoch at broadcast time.
    pub epoch: u64,
    /// One entry per PE, root included.
    pub entries: Vec<TableEntry>,
}

impl Table {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.entries.len() * 32);
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for e in &self.entries {
            out.extend_from_slice(&e.pe.to_le_bytes());
            out.extend_from_slice(&e.epoch.to_le_bytes());
            put_str(&mut out, &e.addr.to_string());
        }
        out
    }

    /// Decode from a frame payload.
    pub fn decode(buf: &[u8]) -> Result<Table, NetError> {
        let mut r = Reader::new(buf);
        let epoch = r.u64()?;
        let n = r.u32()? as usize;
        // A table can hold at most one entry per PE; anything bigger than
        // the payload could even represent is hostile.
        if n > buf.len() {
            return Err(NetError::Proto(format!("table claims {n} entries")));
        }
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let pe = r.u32()?;
            let epoch = r.u64()?;
            let addr = r
                .str()?
                .parse::<SocketAddr>()
                .map_err(|e| NetError::Proto(format!("bad table address: {e}")))?;
            entries.push(TableEntry { pe, epoch, addr });
        }
        r.finish()?;
        Ok(Table { epoch, entries })
    }
}

/// Restart notice: the root bumped the epoch after a peer failure; rebuild
/// per-incarnation state and restore from checkpoint `generation`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Restart {
    /// The new recovery epoch.
    pub epoch: u64,
    /// The checkpoint generation being restored.
    pub generation: u64,
}

impl Restart {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.generation.to_le_bytes());
        out
    }

    /// Decode from a frame payload.
    pub fn decode(buf: &[u8]) -> Result<Restart, NetError> {
        let mut r = Reader::new(buf);
        let v = Restart {
            epoch: r.u64()?,
            generation: r.u64()?,
        };
        r.finish()?;
        Ok(v)
    }
}

/// Prefix opaque bytes with the sending PE (payload and stats frames).
pub fn encode_from(pe: u32, bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + bytes.len());
    out.extend_from_slice(&pe.to_le_bytes());
    out.extend_from_slice(bytes);
    out
}

/// Split a `src`-prefixed payload into `(src_pe, bytes)`.
pub fn decode_from(mut buf: Vec<u8>) -> Result<(u32, Vec<u8>), NetError> {
    if buf.len() < 4 {
        return Err(NetError::Proto(
            "payload shorter than its src prefix".into(),
        ));
    }
    let pe = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    let rest = buf.split_off(4);
    Ok((pe, rest))
}

/// Encode a ping payload (the sender's epoch).
pub fn encode_ping(epoch: u64) -> Vec<u8> {
    epoch.to_le_bytes().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_round_trip() {
        let h = Hello {
            pe: 3,
            npes: 8,
            epoch: 2,
            nonce: 0xdead_beef_f00d_cafe,
            listen_port: 45231,
        };
        assert_eq!(Hello::decode(&h.encode()).unwrap(), h);
    }

    #[test]
    fn hello_truncated_is_typed_error() {
        let h = Hello {
            pe: 1,
            npes: 4,
            epoch: 0,
            nonce: 7,
            listen_port: 1,
        };
        let bytes = h.encode();
        for cut in 0..bytes.len() {
            assert!(matches!(
                Hello::decode(&bytes[..cut]),
                Err(NetError::Proto(_))
            ));
        }
    }

    #[test]
    fn hello_trailing_bytes_rejected() {
        let mut bytes = Hello {
            pe: 1,
            npes: 4,
            epoch: 0,
            nonce: 7,
            listen_port: 1,
        }
        .encode();
        bytes.push(0);
        assert!(matches!(Hello::decode(&bytes), Err(NetError::Proto(_))));
    }

    #[test]
    fn table_round_trip() {
        let t = Table {
            epoch: 5,
            entries: vec![
                TableEntry {
                    pe: 0,
                    epoch: 5,
                    addr: "127.0.0.1:9000".parse().unwrap(),
                },
                TableEntry {
                    pe: 1,
                    epoch: 4,
                    addr: "[::1]:9001".parse().unwrap(),
                },
            ],
        };
        assert_eq!(Table::decode(&t.encode()).unwrap(), t);
    }

    #[test]
    fn table_bad_addr_rejected() {
        let mut t = Table {
            epoch: 0,
            entries: vec![TableEntry {
                pe: 0,
                epoch: 0,
                addr: "127.0.0.1:1".parse().unwrap(),
            }],
        }
        .encode();
        // Corrupt the address string in place ("127." -> "xxx.").
        let pos = t.len() - "127.0.0.1:1".len();
        t[pos..pos + 3].copy_from_slice(b"xxx");
        assert!(matches!(Table::decode(&t), Err(NetError::Proto(_))));
    }

    #[test]
    fn table_hostile_count_rejected() {
        let mut out = Vec::new();
        out.extend_from_slice(&0u64.to_le_bytes());
        out.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(Table::decode(&out), Err(NetError::Proto(_))));
    }

    #[test]
    fn restart_round_trip() {
        let m = Restart {
            epoch: 3,
            generation: 12,
        };
        assert_eq!(Restart::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn from_prefix_round_trip() {
        let (pe, bytes) = decode_from(encode_from(7, b"envelope")).unwrap();
        assert_eq!(pe, 7);
        assert_eq!(bytes, b"envelope");
        assert!(matches!(decode_from(vec![1, 2]), Err(NetError::Proto(_))));
    }
}
