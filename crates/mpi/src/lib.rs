//! # minimpi — an AMPI-style MPI subset on the charm-rs runtime
//!
//! The paper's stencil3d baseline is an mpi4py program. This crate provides
//! the equivalent here: a rank-oriented message-passing interface whose
//! ranks are long-running *threaded chares* on the charm-rs runtime — the
//! same layering as AMPI (MPI implemented over Charm++, from the same
//! research group). Each rank runs the user's `main` on a coroutine;
//! blocking `recv`/`barrier`/`allreduce` suspend only that coroutine.
//!
//! Supported: blocking send (eager/buffered, like MPI's small-message
//! path), blocking receive with source/tag wildcards, `sendrecv`,
//! nonblocking receives (`irecv` + `wait`), barrier, broadcast, reduce /
//! allreduce over the runtime's reduction tree, gather, and `wtime`.
//!
//! ```no_run
//! use charm_core::Runtime;
//! minimpi::run_on(Runtime::new(4), |rank| {
//!     let peer = rank.size() - 1 - rank.rank();
//!     rank.send(peer, 0, &vec![1.0f64; 8]);
//!     let (data, st) = rank.recv::<Vec<f64>>(Some(peer), Some(0));
//!     assert_eq!(st.src, peer);
//!     assert_eq!(data.len(), 8);
//! });
//! ```

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};

use charm_core::prelude::*;
use charm_core::RunReport;
use charm_core::Runtime;
use charm_wire::Codec;
use serde::{Deserialize, Serialize};

/// Wildcard for `recv` source (`MPI_ANY_SOURCE`).
pub const ANY_SOURCE: Option<usize> = None;
/// Wildcard for `recv` tag (`MPI_ANY_TAG`).
pub const ANY_TAG: Option<i32> = None;

/// Completion information of a receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Rank that sent the message.
    pub src: usize,
    /// Message tag.
    pub tag: i32,
}

/// A pending nonblocking receive; complete it with [`Rank::wait`].
#[derive(Debug, Clone, Copy)]
pub struct RecvReq {
    src: Option<usize>,
    tag: Option<i32>,
}

type RankFn = dyn Fn(&mut Rank<'_>) + Send + Sync;

fn fn_table() -> &'static Mutex<Vec<std::sync::Arc<RankFn>>> {
    static TABLE: OnceLock<Mutex<Vec<std::sync::Arc<RankFn>>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(Vec::new()))
}

/// The chare implementing one MPI rank.
pub struct RankChare {
    inbox: VecDeque<(usize, i32, Vec<u8>)>,
    red_results: VecDeque<RedData>,
}

/// Rank-to-rank traffic and control.
#[derive(Serialize, Deserialize)]
pub enum RankMsg {
    /// Launch the rank main.
    Start {
        /// Index of the user function in the process-local table.
        fn_idx: u64,
        /// Future completed (via empty reduction) when every rank returns.
        done: Future<RedData>,
    },
    /// Point-to-point payload.
    Data {
        /// Sending rank.
        src: u32,
        /// User tag.
        tag: i32,
        /// Payload, encoded with the fast codec (buffers pass through
        /// as raw bytes — the mpi4py buffer-send path).
        bytes: Vec<u8>,
    },
}

const TAG_COLLECTIVE: u32 = 0xC011;

impl Chare for RankChare {
    type Msg = RankMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        RankChare {
            inbox: VecDeque::new(),
            red_results: VecDeque::new(),
        }
    }
    fn receive(&mut self, msg: RankMsg, ctx: &mut Ctx) {
        match msg {
            RankMsg::Start { fn_idx, done } => {
                let f = fn_table().lock().unwrap()[fn_idx as usize].clone();
                ctx.go::<RankChare>(move |co| {
                    let mut rank = Rank { co };
                    f(&mut rank);
                    rank.co
                        .ctx()
                        .contribute_barrier(RedTarget::Future(done.id()));
                });
            }
            RankMsg::Data { src, tag, bytes } => {
                self.inbox.push_back((src as usize, tag, bytes));
            }
        }
    }
    fn reduced(&mut self, tag: u32, data: RedData, _ctx: &mut Ctx) {
        assert_eq!(tag, TAG_COLLECTIVE, "unexpected reduction tag in minimpi");
        self.red_results.push_back(data);
    }
}

/// The per-rank handle passed to the user's main function.
pub struct Rank<'a> {
    co: &'a mut Co<RankChare>,
}

impl<'a> Rank<'a> {
    /// This rank's number (`MPI_Comm_rank`). One rank per PE.
    pub fn rank(&mut self) -> usize {
        self.co.ctx().my_pe()
    }

    /// Total ranks (`MPI_Comm_size`).
    pub fn size(&mut self) -> usize {
        self.co.ctx().num_pes()
    }

    /// Elapsed time in seconds (`MPI_Wtime`) — virtual time under the
    /// simulated backend.
    pub fn wtime(&mut self) -> f64 {
        self.co.ctx().now()
    }

    /// Charge synthetic compute time to this rank (virtual under sim;
    /// really sleeps under threads) — used by the imbalanced stencil.
    pub fn charge(&mut self, dt: std::time::Duration) {
        self.co.ctx().charge(dt);
    }

    /// Send `value` to `dest` with `tag`. Buffered-eager semantics: the
    /// call returns immediately (like MPI's small-message send path and
    /// mpi4py's default).
    pub fn send<T: Message>(&mut self, dest: usize, tag: i32, value: &T) {
        let bytes = Codec::Fast
            .encode(value)
            .expect("mpi payload encode failed");
        let me = self.rank() as u32;
        let proxy = self.co.ctx().this_proxy::<RankChare>();
        proxy.elem(dest).send(
            self.co.ctx(),
            RankMsg::Data {
                src: me,
                tag,
                bytes,
            },
        );
    }

    /// Nonblocking send — identical to [`Rank::send`] under buffered-eager
    /// semantics (as in AMPI for small messages).
    pub fn isend<T: Message>(&mut self, dest: usize, tag: i32, value: &T) {
        self.send(dest, tag, value)
    }

    /// Blocking receive with optional source/tag wildcards. Suspends only
    /// this rank's coroutine; the PE keeps scheduling.
    pub fn recv<T: Message>(&mut self, src: Option<usize>, tag: Option<i32>) -> (T, Status) {
        self.co.wait(move |c: &RankChare| {
            c.inbox
                .iter()
                .any(|(s, t, _)| src.is_none_or(|v| v == *s) && tag.is_none_or(|v| v == *t))
        });
        let inbox = &mut self.co.this().inbox;
        let pos = inbox
            .iter()
            .position(|(s, t, _)| src.is_none_or(|v| v == *s) && tag.is_none_or(|v| v == *t))
            .expect("wait postcondition");
        let (s, t, bytes) = inbox.remove(pos).unwrap();
        let value = Codec::Fast
            .decode::<T>(&bytes)
            .expect("mpi payload decode failed");
        (value, Status { src: s, tag: t })
    }

    /// Post a nonblocking receive; complete it later with [`Rank::wait`].
    pub fn irecv(&mut self, src: Option<usize>, tag: Option<i32>) -> RecvReq {
        RecvReq { src, tag }
    }

    /// Complete a nonblocking receive.
    pub fn wait<T: Message>(&mut self, req: RecvReq) -> (T, Status) {
        self.recv(req.src, req.tag)
    }

    /// Whether a matching message is already available (`MPI_Iprobe`).
    pub fn iprobe(&mut self, src: Option<usize>, tag: Option<i32>) -> bool {
        self.co
            .this_ref()
            .inbox
            .iter()
            .any(|(s, t, _)| src.is_none_or(|v| v == *s) && tag.is_none_or(|v| v == *t))
    }

    /// Combined send and receive (`MPI_Sendrecv`) — the stencil workhorse.
    pub fn sendrecv<T: Message, U: Message>(
        &mut self,
        dest: usize,
        send_tag: i32,
        value: &T,
        src: usize,
        recv_tag: i32,
    ) -> U {
        self.send(dest, send_tag, value);
        self.recv::<U>(Some(src), Some(recv_tag)).0
    }

    /// Global barrier over all ranks.
    pub fn barrier(&mut self) {
        self.collective(RedData::Unit, Reducer::Nop);
    }

    /// All-reduce: every rank contributes, every rank gets the result.
    pub fn allreduce(&mut self, data: RedData, op: Reducer) -> RedData {
        self.collective(data, op)
    }

    /// All-reduce of one f64 (common case).
    pub fn allreduce_f64(&mut self, v: f64, op: Reducer) -> f64 {
        self.allreduce(RedData::F64(v), op).as_f64()
    }

    /// Reduce to rank 0: other ranks get `None`.
    pub fn reduce(&mut self, data: RedData, op: Reducer) -> Option<RedData> {
        let out = self.collective(data, op);
        if self.rank() == 0 {
            Some(out)
        } else {
            None
        }
    }

    /// Broadcast `value` from `root` to every rank; returns the value on
    /// all ranks.
    pub fn bcast<T: Message + Clone>(&mut self, root: usize, value: Option<T>) -> T {
        const BCAST_TAG: i32 = -2_000_000_001;
        if self.rank() == root {
            let v = value.expect("bcast root must supply a value");
            let n = self.size();
            for dest in 0..n {
                if dest != root {
                    self.send(dest, BCAST_TAG, &v);
                }
            }
            v
        } else {
            self.recv::<T>(Some(root), Some(BCAST_TAG)).0
        }
    }

    /// Scatter: `root` supplies one value per rank; each rank receives its
    /// own (`MPI_Scatter`).
    pub fn scatter<T: Message>(&mut self, root: usize, values: Option<Vec<T>>) -> T {
        const SCATTER_TAG: i32 = -2_000_000_003;
        let me = self.rank();
        let n = self.size();
        if me == root {
            let mut values = values.expect("scatter root must supply values");
            assert_eq!(values.len(), n, "scatter needs one value per rank");
            // Send in reverse so removal is O(1) and rank order is kept.
            let mine = values.swap_remove(root);
            for (dest, v) in values.into_iter().enumerate() {
                // After swap_remove, index `root` (if < len) holds the last
                // rank's value; map positions back to ranks.
                let dest = if dest == root { n - 1 } else { dest };
                self.send(dest, SCATTER_TAG, &v);
            }
            mine
        } else {
            self.recv::<T>(Some(root), Some(SCATTER_TAG)).0
        }
    }

    /// All-gather: every rank receives every rank's value, in rank order
    /// (`MPI_Allgather`). Implemented as gather + broadcast.
    pub fn allgather<T: Message + Clone>(&mut self, value: &T) -> Vec<T> {
        let gathered = self.gather(value);
        self.bcast(0, gathered)
    }

    /// All-to-all: rank `i` sends `values[j]` to rank `j` and receives a
    /// vector whose `j`-th entry came from rank `j` (`MPI_Alltoall`).
    pub fn alltoall<T: Message>(&mut self, values: Vec<T>) -> Vec<T> {
        const A2A_TAG: i32 = -2_000_000_004;
        let me = self.rank();
        let n = self.size();
        assert_eq!(values.len(), n, "alltoall needs one value per rank");
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (dest, v) in values.into_iter().enumerate() {
            if dest == me {
                out[me] = Some(v);
            } else {
                self.send(dest, A2A_TAG, &v);
            }
        }
        for _ in 0..n - 1 {
            let (v, st) = self.recv::<T>(ANY_SOURCE, Some(A2A_TAG));
            out[st.src] = Some(v);
        }
        out.into_iter().map(|v| v.expect("alltoall hole")).collect()
    }

    /// Gather each rank's value at rank 0 (rank order); `None` elsewhere.
    pub fn gather<T: Message>(&mut self, value: &T) -> Option<Vec<T>> {
        const GATHER_TAG: i32 = -2_000_000_002;
        let me = self.rank();
        let n = self.size();
        if me == 0 {
            let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
            // Rank 0's own value roundtrips through the codec so `T` need
            // not be `Clone`.
            out[0] = Some(
                Codec::Fast
                    .decode(&Codec::Fast.encode(value).unwrap())
                    .unwrap(),
            );
            for _ in 1..n {
                let (v, st) = self.recv::<T>(ANY_SOURCE, Some(GATHER_TAG));
                out[st.src] = Some(v);
            }
            Some(out.into_iter().map(|v| v.expect("gather hole")).collect())
        } else {
            self.send(0, GATHER_TAG, value);
            None
        }
    }

    fn collective(&mut self, data: RedData, op: Reducer) -> RedData {
        let target = self
            .co
            .ctx()
            .this_proxy::<RankChare>()
            .reduction_target(TAG_COLLECTIVE);
        self.co.ctx().contribute(data, op, target);
        self.co.wait(|c: &RankChare| !c.red_results.is_empty());
        self.co
            .this()
            .red_results
            .pop_front()
            .expect("wait postcondition")
    }
}

/// Run an MPI-style program: one rank per PE of the given runtime. The
/// runtime may be threaded or simulated, native or dynamic dispatch — the
/// rank code is identical.
pub fn run_on(rt: Runtime, f: impl Fn(&mut Rank<'_>) + Send + Sync + 'static) -> RunReport {
    let fn_idx = {
        let mut table = fn_table().lock().unwrap();
        table.push(std::sync::Arc::new(f));
        (table.len() - 1) as u64
    };
    rt.register::<RankChare>().run(move |co| {
        let world = co.ctx().create_group::<RankChare>(());
        let done = co.ctx().create_future::<RedData>();
        world.send(co.ctx(), RankMsg::Start { fn_idx, done });
        co.get(&done);
        co.ctx().exit();
    })
}

/// Convenience: run on `npes` threaded PEs with default settings.
pub fn run(npes: usize, f: impl Fn(&mut Rank<'_>) + Send + Sync + 'static) -> RunReport {
    run_on(Runtime::new(npes), f)
}
