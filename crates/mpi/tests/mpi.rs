//! minimpi semantics tests: point-to-point matching, wildcards, ordering,
//! collectives — on both backends.

use charm_core::{Backend, RedData, Reducer, Runtime};
use charm_sim::MachineModel;
use minimpi::{ANY_SOURCE, ANY_TAG};

fn rt(npes: usize, sim: bool) -> Runtime {
    let rt = Runtime::new(npes);
    if sim {
        rt.backend(Backend::Sim(MachineModel::local(npes)))
    } else {
        rt
    }
}

#[test]
fn ring_pass() {
    for sim in [false, true] {
        let report = minimpi::run_on(rt(4, sim), |rank| {
            let me = rank.rank();
            let n = rank.size();
            if me == 0 {
                rank.send(1, 7, &1u64);
                let (v, st) = rank.recv::<u64>(Some(n - 1), Some(7));
                assert_eq!(v, n as u64);
                assert_eq!(st.src, n - 1);
            } else {
                let (v, _) = rank.recv::<u64>(Some(me - 1), Some(7));
                rank.send((me + 1) % n, 7, &(v + 1));
            }
        });
        assert!(report.clean_exit);
    }
}

#[test]
fn wildcards_match_any_source_and_tag() {
    for sim in [false, true] {
        minimpi::run_on(rt(4, sim), |rank| {
            let me = rank.rank();
            if me == 0 {
                let mut seen = [false; 4];
                for _ in 1..4 {
                    let (v, st) = rank.recv::<u64>(ANY_SOURCE, ANY_TAG);
                    assert_eq!(v as usize, st.src);
                    assert_eq!(st.tag, st.src as i32 * 10);
                    seen[st.src] = true;
                }
                assert!(seen[1] && seen[2] && seen[3]);
            } else {
                rank.send(0, me as i32 * 10, &(me as u64));
            }
        });
    }
}

#[test]
fn tag_selective_recv_out_of_order() {
    for sim in [false, true] {
        minimpi::run_on(rt(2, sim), |rank| {
            if rank.rank() == 0 {
                rank.send(1, 1, &"first".to_string());
                rank.send(1, 2, &"second".to_string());
            } else {
                // Receive tag 2 first even though tag 1 arrived earlier.
                let (b, _) = rank.recv::<String>(Some(0), Some(2));
                let (a, _) = rank.recv::<String>(Some(0), Some(1));
                assert_eq!((a.as_str(), b.as_str()), ("first", "second"));
            }
        });
    }
}

#[test]
fn same_source_same_tag_fifo_order() {
    for sim in [false, true] {
        minimpi::run_on(rt(2, sim), |rank| {
            if rank.rank() == 0 {
                for i in 0..20u64 {
                    rank.send(1, 5, &i);
                }
            } else {
                for i in 0..20u64 {
                    let (v, _) = rank.recv::<u64>(Some(0), Some(5));
                    assert_eq!(v, i, "messages from one source+tag stay ordered");
                }
            }
        });
    }
}

#[test]
fn sendrecv_exchange() {
    for sim in [false, true] {
        minimpi::run_on(rt(2, sim), |rank| {
            let me = rank.rank();
            let peer = 1 - me;
            let got: Vec<f64> = rank.sendrecv(peer, 3, &vec![me as f64; 4], peer, 3);
            assert_eq!(got, vec![peer as f64; 4]);
        });
    }
}

#[test]
fn barrier_separates_phases() {
    for sim in [false, true] {
        minimpi::run_on(rt(4, sim), |rank| {
            let me = rank.rank();
            // Phase 1: everyone sends to rank 0 before the barrier.
            if me != 0 {
                rank.send(0, 100, &me);
            }
            rank.barrier();
            if me == 0 {
                // After the barrier nothing guarantees delivery order, but
                // all sends happened-before the barrier's completion at the
                // senders; drain them.
                for _ in 1..4 {
                    rank.recv::<usize>(ANY_SOURCE, Some(100));
                }
            }
            rank.barrier();
        });
    }
}

#[test]
fn allreduce_and_reduce() {
    for sim in [false, true] {
        minimpi::run_on(rt(4, sim), |rank| {
            let me = rank.rank() as f64;
            let sum = rank.allreduce_f64(me, Reducer::Sum);
            assert_eq!(sum, 6.0);
            let max = rank.allreduce_f64(me, Reducer::Max);
            assert_eq!(max, 3.0);
            let red = rank.reduce(RedData::F64(1.0), Reducer::Sum);
            if rank.rank() == 0 {
                assert_eq!(red.unwrap().as_f64(), 4.0);
            } else {
                assert!(red.is_none());
            }
        });
    }
}

#[test]
fn allreduce_vector_elementwise() {
    minimpi::run_on(rt(3, true), |rank| {
        let me = rank.rank() as f64;
        let out = rank.allreduce(RedData::VecF64(vec![me, 2.0 * me]), Reducer::Sum);
        assert_eq!(out.as_vec_f64(), &[3.0, 6.0]);
    });
}

#[test]
fn bcast_from_nonzero_root() {
    for sim in [false, true] {
        minimpi::run_on(rt(4, sim), |rank| {
            let me = rank.rank();
            let v = rank.bcast(
                2,
                if me == 2 {
                    Some(vec![9u32, 8, 7])
                } else {
                    None
                },
            );
            assert_eq!(v, vec![9, 8, 7]);
        });
    }
}

#[test]
fn gather_collects_in_rank_order() {
    for sim in [false, true] {
        minimpi::run_on(rt(4, sim), |rank| {
            let me = rank.rank();
            let all = rank.gather(&(me as u64 * 11));
            if me == 0 {
                assert_eq!(all.unwrap(), vec![0, 11, 22, 33]);
            } else {
                assert!(all.is_none());
            }
        });
    }
}

#[test]
fn irecv_wait_and_iprobe() {
    minimpi::run_on(rt(2, false), |rank| {
        if rank.rank() == 0 {
            rank.send(1, 42, &123u64);
        } else {
            let req = rank.irecv(Some(0), Some(42));
            let (v, st) = rank.wait::<u64>(req);
            assert_eq!(v, 123);
            assert_eq!(st.tag, 42);
            assert!(!rank.iprobe(ANY_SOURCE, ANY_TAG), "queue drained");
        }
    });
}

#[test]
fn wtime_monotone() {
    minimpi::run_on(rt(2, true), |rank| {
        let t0 = rank.wtime();
        rank.charge(std::time::Duration::from_millis(5));
        rank.barrier();
        let t1 = rank.wtime();
        assert!(t1 >= t0);
    });
}

#[test]
fn scatter_distributes_from_any_root() {
    for root in [0usize, 2, 3] {
        minimpi::run_on(rt(4, true), move |rank| {
            let me = rank.rank();
            let values = (me == root).then(|| vec![10u64, 11, 12, 13]);
            let got = rank.scatter(root, values);
            assert_eq!(got, 10 + me as u64, "root {root}");
        });
    }
}

#[test]
fn allgather_everyone_sees_everything() {
    for sim in [false, true] {
        minimpi::run_on(rt(3, sim), |rank| {
            let me = rank.rank() as i32;
            let all = rank.allgather(&(me * me));
            assert_eq!(all, vec![0, 1, 4]);
        });
    }
}

#[test]
fn alltoall_transposes() {
    minimpi::run_on(rt(4, true), |rank| {
        let me = rank.rank();
        // Rank i sends (i, j) to rank j.
        let send: Vec<(u64, u64)> = (0..4).map(|j| (me as u64, j as u64)).collect();
        let got = rank.alltoall(send);
        // Rank j receives (i, j) from every i.
        for (i, v) in got.iter().enumerate() {
            assert_eq!(*v, (i as u64, me as u64));
        }
    });
}

#[test]
fn scatter_single_rank_degenerate() {
    minimpi::run_on(rt(1, false), |rank| {
        let got = rank.scatter(0, Some(vec![42u8]));
        assert_eq!(got, 42);
    });
}
