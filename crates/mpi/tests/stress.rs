//! Randomized minimpi stress: a seeded all-pairs traffic pattern checked
//! against an arithmetic oracle, plus collective pipelines.

use charm_core::{Backend, RedData, Reducer, Runtime};
use charm_sim::MachineModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rt(npes: usize, sim: bool) -> Runtime {
    let rt = Runtime::new(npes);
    if sim {
        rt.backend(Backend::Sim(MachineModel::local(npes)))
    } else {
        rt
    }
}

#[test]
fn random_all_pairs_traffic_matches_oracle() {
    for (seed, sim) in [(1u64, true), (2, true), (3, false)] {
        let n = 4usize;
        minimpi::run_on(rt(n, sim), move |rank| {
            let me = rank.rank();
            // Every rank derives the same global traffic plan from the seed:
            // a list of (src, dst, value) triples.
            let mut rng = StdRng::seed_from_u64(seed);
            let plan: Vec<(usize, usize, u64)> = (0..60)
                .map(|_| {
                    (
                        rng.gen_range(0..n),
                        rng.gen_range(0..n),
                        rng.gen_range(1..1000u64),
                    )
                })
                .collect();
            // Sends in plan order (self-sends skipped for simplicity).
            for &(src, dst, v) in &plan {
                if src == me && dst != src {
                    rank.send(dst, 1, &v);
                }
            }
            // Receive exactly the expected multiset.
            let mut expected: Vec<u64> = plan
                .iter()
                .filter(|&&(src, dst, _)| dst == me && src != dst)
                .map(|&(_, _, v)| v)
                .collect();
            let mut got = Vec::new();
            for _ in 0..expected.len() {
                let (v, _) = rank.recv::<u64>(minimpi::ANY_SOURCE, Some(1));
                got.push(v);
            }
            expected.sort();
            got.sort();
            assert_eq!(got, expected, "rank {me}, seed {seed}");
            rank.barrier();
        });
    }
}

#[test]
fn pipelined_collectives_interleave_correctly() {
    minimpi::run_on(rt(4, true), |rank| {
        let me = rank.rank() as i64;
        // Alternate reductions and point-to-point without deadlock.
        for round in 0..10i64 {
            let s = rank.allreduce(RedData::I64(me + round), Reducer::Sum);
            assert_eq!(s.as_i64(), 6 + 4 * round);
            let my_rank = rank.rank();
            let peer = (my_rank + 1) % 4;
            rank.send(peer, round as i32, &(me * round));
            let (v, st) = rank.recv::<i64>(Some((my_rank + 3) % 4), Some(round as i32));
            assert_eq!(v, ((st.src) as i64) * round);
        }
    });
}

#[test]
fn heavy_fifo_burst_per_link() {
    minimpi::run_on(rt(3, false), |rank| {
        let me = rank.rank();
        let n = rank.size();
        let burst = 200u64;
        for dst in 0..n {
            if dst != me {
                for k in 0..burst {
                    rank.send(dst, 9, &(me as u64 * 10_000 + k));
                }
            }
        }
        // Per-source streams must arrive in order even when interleaved.
        let mut next = vec![0u64; n];
        for _ in 0..(burst as usize) * (n - 1) {
            let (v, st) = rank.recv::<u64>(minimpi::ANY_SOURCE, Some(9));
            let k = v % 10_000;
            assert_eq!(v / 10_000, st.src as u64);
            assert_eq!(k, next[st.src], "FIFO per link violated");
            next[st.src] += 1;
        }
    });
}

#[test]
fn mixed_collectives_roundtrip() {
    minimpi::run_on(rt(4, true), |rank| {
        let me = rank.rank();
        // scatter -> local transform -> gather -> bcast -> check.
        let seedv = (me == 1).then(|| vec![2u64, 3, 5, 7]);
        let mine = rank.scatter(1, seedv);
        let doubled = mine * 2;
        let all = rank.gather(&doubled);
        let expect = vec![4u64, 6, 10, 14];
        let got = rank.bcast(0, all);
        assert_eq!(got, expect);
    });
}
