//! Shared-payload (`WireBytes`) behavior: fan-out shares one allocation,
//! pooled encodes round-trip under both codecs.

use charm_wire::{Codec, EncodePool, WireBytes};
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
struct Payload {
    a: u64,
    b: Vec<i32>,
    s: String,
}

fn sample() -> Payload {
    Payload {
        a: 0xDEAD_BEEF,
        b: (0..64).collect(),
        s: "shared payload".into(),
    }
}

/// Model of a same-PE multicast fan-out: the runtime encodes once and
/// clones the handle per member. Every member must see the *same*
/// allocation — a clone that deep-copied would break pointer equality.
#[test]
fn multicast_fanout_shares_one_allocation() {
    let bytes = Codec::Fast.encode_shared(&sample()).unwrap();
    let members: Vec<WireBytes> = (0..16).map(|_| bytes.clone()).collect();
    assert_eq!(bytes.ref_count(), 17);
    for m in &members {
        assert!(
            WireBytes::ptr_eq(&bytes, m),
            "fan-out member does not share the sender's allocation"
        );
        let decoded: Payload = Codec::Fast.decode(m).unwrap();
        assert_eq!(decoded, sample());
    }
    drop(members);
    assert_eq!(bytes.ref_count(), 1);
}

#[test]
fn encode_shared_matches_plain_encode() {
    for codec in [Codec::Fast, Codec::Pickle] {
        let shared = codec.encode_shared(&sample()).unwrap();
        let plain = codec.encode(&sample()).unwrap();
        assert_eq!(&shared[..], &plain[..]);
        let decoded: Payload = codec.decode(&shared).unwrap();
        assert_eq!(decoded, sample());
    }
}

#[test]
fn explicit_pool_is_reused_across_encodes() {
    let mut pool = EncodePool::new();
    for _ in 0..8 {
        let b = Codec::Fast
            .encode_shared_with(&mut pool, &sample())
            .unwrap();
        let decoded: Payload = Codec::Fast.decode(&b).unwrap();
        assert_eq!(decoded.a, 0xDEAD_BEEF);
    }
    assert_eq!(
        pool.misses(),
        1,
        "only the first encode should allocate scratch"
    );
    assert_eq!(pool.hits(), 7);
    assert_eq!(pool.pooled(), 1);
}
