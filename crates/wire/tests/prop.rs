//! Property-based tests: arbitrary values roundtrip through both codecs,
//! and arbitrary byte soup never panics the decoders.

use charm_wire::{Buf, Codec};
use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

#[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
enum ArbMsg {
    Unit,
    Num(i64),
    Float(f64),
    Text(String),
    List(Vec<ArbMsg>),
    Record {
        id: u32,
        payload: Vec<u8>,
        flag: bool,
    },
    Table(BTreeMap<String, i32>),
    Opt(Option<Box<ArbMsg>>),
}

fn arb_msg() -> impl Strategy<Value = ArbMsg> {
    let leaf = prop_oneof![
        Just(ArbMsg::Unit),
        any::<i64>().prop_map(ArbMsg::Num),
        // Avoid NaN: PartialEq comparison would fail spuriously.
        prop::num::f64::NORMAL.prop_map(ArbMsg::Float),
        ".{0,24}".prop_map(ArbMsg::Text),
        (
            any::<u32>(),
            prop::collection::vec(any::<u8>(), 0..32),
            any::<bool>()
        )
            .prop_map(|(id, payload, flag)| ArbMsg::Record { id, payload, flag }),
        prop::collection::btree_map("[a-z]{0,6}", any::<i32>(), 0..6).prop_map(ArbMsg::Table),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(ArbMsg::List),
            prop::option::of(inner.prop_map(Box::new)).prop_map(ArbMsg::Opt),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn roundtrip_fast(msg in arb_msg()) {
        let bytes = Codec::Fast.encode(&msg).unwrap();
        let back: ArbMsg = Codec::Fast.decode(&bytes).unwrap();
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn roundtrip_pickle(msg in arb_msg()) {
        let bytes = Codec::Pickle.encode(&msg).unwrap();
        let back: ArbMsg = Codec::Pickle.decode(&bytes).unwrap();
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn fast_never_larger_than_pickle(msg in arb_msg()) {
        let f = Codec::Fast.encode(&msg).unwrap();
        let p = Codec::Pickle.encode(&msg).unwrap();
        prop_assert!(f.len() <= p.len(),
            "fast {} > pickle {} for {:?}", f.len(), p.len(), msg);
    }

    #[test]
    fn decoder_never_panics_on_garbage_fast(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Codec::Fast.decode::<ArbMsg>(&bytes);
    }

    #[test]
    fn decoder_never_panics_on_garbage_pickle(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Codec::Pickle.decode::<ArbMsg>(&bytes);
    }

    #[test]
    fn varint_roundtrip(v in any::<u64>()) {
        let mut buf = Vec::new();
        charm_wire::varint::write_u64(&mut buf, v);
        let (got, used) = charm_wire::varint::read_u64(&buf).unwrap();
        prop_assert_eq!(got, v);
        prop_assert_eq!(used, buf.len());
    }

    #[test]
    fn zigzag_roundtrip(v in any::<i64>()) {
        prop_assert_eq!(charm_wire::varint::unzigzag(charm_wire::varint::zigzag(v)), v);
    }

    #[test]
    fn buf_roundtrip(v in prop::collection::vec(prop::num::f64::NORMAL, 0..128)) {
        let b = Buf::from_vec(v.clone());
        for codec in [Codec::Fast, Codec::Pickle] {
            let bytes = codec.encode(&b).unwrap();
            let back: Buf<f64> = codec.decode(&bytes).unwrap();
            prop_assert_eq!(&*back, &v[..]);
        }
    }
}
