//! Roundtrip tests exercising both codecs over representative message shapes.

use std::collections::BTreeMap;

use charm_wire::{fast, pickle, Buf, Codec, WireError};
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};

fn roundtrip_both<T>(value: &T)
where
    T: Serialize + DeserializeOwned + PartialEq + std::fmt::Debug,
{
    for codec in [Codec::Fast, Codec::Pickle] {
        let bytes = codec.encode(value).unwrap();
        let back: T = codec.decode(&bytes).unwrap();
        assert_eq!(&back, value, "codec {codec:?}");
    }
}

#[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
struct GhostMsg {
    iter: u32,
    face: u8,
    data: Vec<f64>,
}

#[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
enum StencilMsg {
    Start,
    Ghost(GhostMsg),
    Converged { residual: f64, iter: u64 },
    Pair(i32, String),
}

#[derive(Serialize, Deserialize, PartialEq, Debug)]
struct Nested {
    opt: Option<Box<Nested>>,
    name: String,
    tags: BTreeMap<String, i64>,
    tuple: (u8, i16, f32),
    unit: (),
    list: Vec<Option<bool>>,
}

#[test]
fn primitives() {
    roundtrip_both(&true);
    roundtrip_both(&false);
    roundtrip_both(&0u8);
    roundtrip_both(&255u8);
    roundtrip_both(&-1i8);
    roundtrip_both(&i16::MIN);
    roundtrip_both(&u16::MAX);
    roundtrip_both(&i32::MIN);
    roundtrip_both(&u32::MAX);
    roundtrip_both(&i64::MIN);
    roundtrip_both(&i64::MAX);
    roundtrip_both(&u64::MAX);
    roundtrip_both(&i128::MIN);
    roundtrip_both(&u128::MAX);
    roundtrip_both(&1.5f32);
    roundtrip_both(&-0.0f64);
    roundtrip_both(&f64::MAX);
    roundtrip_both(&'q');
    roundtrip_both(&'\u{1F980}');
    roundtrip_both(&String::from("hello chare"));
    roundtrip_both(&String::new());
}

#[test]
fn options_and_units() {
    roundtrip_both(&Option::<u32>::None);
    roundtrip_both(&Some(42u32));
    roundtrip_both(&Some(Option::<String>::None));
    roundtrip_both(&());
}

#[test]
fn sequences_and_maps() {
    roundtrip_both(&vec![1u32, 2, 3]);
    roundtrip_both(&Vec::<f64>::new());
    roundtrip_both(&vec![vec![1i8], vec![], vec![-3, 4]]);
    let mut m = BTreeMap::new();
    m.insert("alpha".to_string(), 1i64);
    m.insert("beta".to_string(), -2);
    roundtrip_both(&m);
    roundtrip_both(&BTreeMap::<String, u8>::new());
}

#[test]
fn structs_and_enums() {
    let g = GhostMsg {
        iter: 7,
        face: 3,
        data: vec![1.0, -2.5, 3.25],
    };
    roundtrip_both(&g);
    roundtrip_both(&StencilMsg::Start);
    roundtrip_both(&StencilMsg::Ghost(g.clone()));
    roundtrip_both(&StencilMsg::Converged {
        residual: 1e-9,
        iter: 999,
    });
    roundtrip_both(&StencilMsg::Pair(-5, "x".into()));
    roundtrip_both(&vec![
        StencilMsg::Start,
        StencilMsg::Pair(0, String::new()),
        StencilMsg::Converged {
            residual: 0.0,
            iter: 0,
        },
    ]);
}

#[test]
fn deeply_nested() {
    let n = Nested {
        opt: Some(Box::new(Nested {
            opt: None,
            name: "inner".into(),
            tags: BTreeMap::new(),
            tuple: (1, -2, 3.5),
            unit: (),
            list: vec![None, Some(true)],
        })),
        name: "outer".into(),
        tags: [("k".to_string(), 9i64)].into_iter().collect(),
        tuple: (255, i16::MIN, f32::INFINITY),
        unit: (),
        list: vec![],
    };
    roundtrip_both(&n);
}

#[test]
fn buf_roundtrips_in_both_codecs() {
    let b: Buf<f64> = vec![1.0, 2.0, -3.0, 4.5].into();
    for codec in [Codec::Fast, Codec::Pickle] {
        let bytes = codec.encode(&b).unwrap();
        let back: Buf<f64> = codec.decode(&bytes).unwrap();
        assert_eq!(&*back, &*b);
    }
    let bi: Buf<i32> = vec![i32::MIN, 0, i32::MAX].into();
    roundtrip_buf(&bi);
}

fn roundtrip_buf<T: charm_wire::Scalar + PartialEq + std::fmt::Debug>(b: &Buf<T>) {
    for codec in [Codec::Fast, Codec::Pickle] {
        let bytes = codec.encode(b).unwrap();
        let back: Buf<T> = codec.decode(&bytes).unwrap();
        assert_eq!(&*back, &**b);
    }
}

#[test]
fn buf_is_zero_copyish_in_pickle_mode() {
    // A Buf<f64> of n elements must cost ~8n bytes even under pickle,
    // while a Vec<f64> under pickle pays a tag per element.
    let n = 1000usize;
    let vals: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let buf_bytes = pickle::to_bytes(&Buf::from_vec(vals.clone())).unwrap();
    let vec_bytes = pickle::to_bytes(&vals).unwrap();
    assert!(buf_bytes.len() <= 8 * n + 16, "buf={}", buf_bytes.len());
    assert!(
        vec_bytes.len() >= 9 * n,
        "vec under pickle should carry tags: {}",
        vec_bytes.len()
    );
}

#[test]
fn fast_is_smaller_than_pickle_for_structs() {
    let g = GhostMsg {
        iter: 3,
        face: 1,
        data: vec![0.5; 16],
    };
    let f = fast::to_bytes(&g).unwrap();
    let p = pickle::to_bytes(&g).unwrap();
    assert!(
        f.len() < p.len(),
        "fast ({}) should be smaller than pickle ({})",
        f.len(),
        p.len()
    );
}

#[test]
fn pickle_tolerates_field_reordering_like_pickle() {
    // The pickle codec keys struct fields by name, so a reader whose struct
    // declares fields in a different order still decodes correctly —
    // mirroring pickle's dict-based state.
    #[derive(Serialize)]
    struct WriterSide {
        a: u32,
        b: String,
    }
    #[derive(Deserialize, Debug, PartialEq)]
    struct ReaderSide {
        b: String,
        a: u32,
    }
    let bytes = pickle::to_bytes(&WriterSide {
        a: 9,
        b: "hi".into(),
    })
    .unwrap();
    let r: ReaderSide = pickle::from_bytes(&bytes).unwrap();
    assert_eq!(
        r,
        ReaderSide {
            b: "hi".into(),
            a: 9
        }
    );
}

#[test]
fn truncated_input_is_eof_not_panic() {
    let g = StencilMsg::Ghost(GhostMsg {
        iter: 1,
        face: 2,
        data: vec![3.0; 8],
    });
    for codec in [Codec::Fast, Codec::Pickle] {
        let bytes = codec.encode(&g).unwrap();
        for cut in 0..bytes.len() {
            let err = codec.decode::<StencilMsg>(&bytes[..cut]).unwrap_err();
            // Any structured error is fine; panics/successes are not.
            match err {
                WireError::Eof
                | WireError::BadTag(_)
                | WireError::InvalidLength(_)
                | WireError::VarintOverflow
                | WireError::TypeMismatch { .. }
                | WireError::Utf8
                | WireError::Custom(_) => {}
                other => panic!("unexpected error {other:?} at cut {cut}"),
            }
        }
    }
}

#[test]
fn trailing_bytes_detected() {
    for codec in [Codec::Fast, Codec::Pickle] {
        let mut bytes = codec.encode(&7u32).unwrap();
        bytes.push(0xAB);
        let err = codec.decode::<u32>(&bytes).unwrap_err();
        assert!(matches!(err, WireError::TrailingBytes(1)), "{codec:?}");
    }
}

#[test]
fn wrong_enum_variant_name_fails_cleanly_in_pickle() {
    #[derive(Serialize)]
    enum A {
        OnlyInA(u8),
    }
    #[derive(Deserialize, Debug)]
    enum B {
        #[allow(dead_code)]
        OnlyInB(u8),
    }
    let bytes = pickle::to_bytes(&A::OnlyInA(1)).unwrap();
    assert!(pickle::from_bytes::<B>(&bytes).is_err());
}

#[test]
fn fast_prefix_decoding() {
    let mut bytes = fast::to_bytes(&42u32).unwrap();
    let tail = fast::to_bytes(&"rest").unwrap();
    bytes.extend_from_slice(&tail);
    let (v, used) = fast::from_bytes_prefix::<u32>(&bytes).unwrap();
    assert_eq!(v, 42);
    let s: String = fast::from_bytes(&bytes[used..]).unwrap();
    assert_eq!(s, "rest");
}

#[test]
fn pickle_skips_unknown_values_via_ignored_any() {
    // Reader ignores a field the writer sent: requires deserialize_ignored_any.
    #[derive(Serialize)]
    struct W {
        keep: u32,
        extra: Vec<String>,
    }
    #[derive(Deserialize)]
    struct R {
        keep: u32,
    }
    let bytes = pickle::to_bytes(&W {
        keep: 5,
        extra: vec!["a".into(), "b".into()],
    })
    .unwrap();
    let r: R = pickle::from_bytes(&bytes).unwrap();
    assert_eq!(r.keep, 5);
}

#[test]
fn deeply_nested_enums_roundtrip() {
    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    enum Inner {
        A,
        B(Vec<u8>),
    }
    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    enum Outer {
        Wrap(Inner),
        Pair { left: Inner, right: Option<Inner> },
    }
    roundtrip_both(&Outer::Wrap(Inner::A));
    roundtrip_both(&Outer::Pair {
        left: Inner::B(vec![1, 2, 3]),
        right: Some(Inner::A),
    });
    roundtrip_both(&vec![
        Outer::Wrap(Inner::B(vec![])),
        Outer::Pair {
            left: Inner::A,
            right: None,
        },
    ]);
}

#[test]
fn all_buf_scalar_types_roundtrip() {
    fn rt<T: charm_wire::Scalar + PartialEq + std::fmt::Debug>(v: Vec<T>) {
        let b = Buf::from_vec(v);
        for codec in [Codec::Fast, Codec::Pickle] {
            let bytes = codec.encode(&b).unwrap();
            let back: Buf<T> = codec.decode(&bytes).unwrap();
            assert_eq!(&*back, &*b);
        }
    }
    rt::<u8>(vec![0, 255, 7]);
    rt::<i8>(vec![-128, 127]);
    rt::<u16>(vec![0, u16::MAX]);
    rt::<i16>(vec![i16::MIN, -1]);
    rt::<u32>(vec![u32::MAX]);
    rt::<i32>(vec![i32::MIN, 0, i32::MAX]);
    rt::<u64>(vec![u64::MAX, 1]);
    rt::<i64>(vec![i64::MIN]);
    rt::<f32>(vec![f32::MIN_POSITIVE, -0.0]);
    rt::<f64>(vec![f64::MAX, f64::EPSILON]);
}

#[test]
fn unit_struct_and_newtype_shapes() {
    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Marker;
    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Wrapper(u64);
    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct TupleS(u8, String, Vec<i32>);
    roundtrip_both(&Marker);
    roundtrip_both(&Wrapper(u64::MAX));
    roundtrip_both(&TupleS(9, "x".into(), vec![-1, 0, 1]));
}

#[test]
fn codec_default_is_fast() {
    assert_eq!(Codec::default(), Codec::Fast);
}
