//! # charm-wire — serialization substrate for charm-rs
//!
//! Two complete serde binary codecs model the two serialization regimes of
//! the CharmPy paper (§IV-B):
//!
//! * [`fast`] — compact, schema-static. The analog of Charm++'s native
//!   message packing: no field names, no tags, enum variants by index.
//! * [`pickle`] — self-describing and name-carrying. The analog of Python
//!   pickle, used by the runtime's dynamic-dispatch (CharmPy-like) mode.
//!
//! [`Buf<T>`](buffer::Buf) provides the NumPy-array fast path: a contiguous
//! numeric buffer that serializes as a single raw byte block under *both*
//! codecs, bypassing per-element work entirely.

// analyze: allow(unsafe, "buffer.rs reinterprets sealed POD scalar slices as bytes for zero-copy pup; both unsafe blocks carry SAFETY proofs")
#![deny(unsafe_code)]

pub mod buffer;
pub mod error;
pub mod fast;
pub mod frame;
pub mod pickle;
pub mod pool;
pub mod varint;

pub use buffer::{Buf, Scalar, WireBytes, INLINE_CAP};
pub use error::{Result, WireError};
pub use frame::FrameError;
pub use pool::EncodePool;

use serde::de::DeserializeOwned;
use serde::Serialize;

/// Which wire format to use for a message.
///
/// The runtime selects this from its dispatch mode: `Native` dispatch uses
/// `Fast`, `Dynamic` (CharmPy-like) dispatch uses `Pickle`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Codec {
    /// Compact schema-static format (Charm++-analog).
    #[default]
    Fast,
    /// Self-describing tagged format (pickle-analog).
    Pickle,
}

impl Codec {
    /// Encode `value` under this codec.
    pub fn encode<T: Serialize + ?Sized>(self, value: &T) -> Result<Vec<u8>> {
        match self {
            Codec::Fast => fast::to_bytes(value),
            Codec::Pickle => pickle::to_bytes(value),
        }
    }

    /// Encode `value` under this codec, appending to `out`.
    pub fn encode_into<T: Serialize + ?Sized>(self, out: &mut Vec<u8>, value: &T) -> Result<()> {
        match self {
            Codec::Fast => fast::to_writer(out, value),
            Codec::Pickle => pickle::to_writer(out, value),
        }
    }

    /// Encode `value` into a shared, refcounted [`WireBytes`] payload,
    /// using the calling thread's scratch pool for the transient encode.
    pub fn encode_shared<T: Serialize + ?Sized>(self, value: &T) -> Result<WireBytes> {
        pool::with_pool(|p| self.encode_shared_with(p, value))
    }

    /// Encode `value` into a shared payload using an explicit scratch pool
    /// (the per-PE pool on the runtime's send path).
    pub fn encode_shared_with<T: Serialize + ?Sized>(
        self,
        pool: &mut EncodePool,
        value: &T,
    ) -> Result<WireBytes> {
        let b = match self {
            Codec::Fast => fast::to_shared(pool, value),
            Codec::Pickle => pickle::to_shared(pool, value),
        }?;
        pool.record_encoded(b.len());
        Ok(b)
    }

    /// Decode a `T` from `bytes` under this codec, consuming all input.
    pub fn decode<T: DeserializeOwned>(self, bytes: &[u8]) -> Result<T> {
        match self {
            Codec::Fast => fast::from_bytes(bytes),
            Codec::Pickle => pickle::from_bytes(bytes),
        }
    }
}
