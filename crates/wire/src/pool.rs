//! Encode-buffer pooling: a freelist of `Vec<u8>` scratch buffers reused
//! across encodes.
//!
//! Every message encode needs somewhere to serialize into before the bytes
//! are published as an immutable [`WireBytes`](crate::WireBytes). Without
//! pooling that is a fresh `Vec` per message — plus its growth
//! reallocations — on the runtime's hottest path. [`EncodePool`] keeps the
//! retired scratch buffers instead: a buffer is taken for the encode,
//! drained into one exact-size shared allocation, and returned, so at
//! steady state the scratch stays at its high-water capacity and each
//! message costs exactly one allocation (the published bytes).
//!
//! The runtime owns one pool per PE (the scheduler is single-threaded per
//! PE, so no locking). Call sites without a PE at hand — proxy broadcast
//! encodes inside handlers, coroutine threads, checkpoint writes — use the
//! calling thread's pool via [`with_pool`], which is per-PE under the
//! threaded backend (one thread per PE) and process-wide under the
//! single-threaded simulator.

use std::cell::RefCell;

use crate::buffer::WireBytes;

/// Most scratch buffers retained per pool; excess buffers are dropped.
pub const MAX_POOLED_BUFS: usize = 32;

/// Largest buffer capacity worth retaining; bigger ones are dropped so one
/// huge message cannot pin its allocation forever.
pub const MAX_POOLED_CAP: usize = 4 << 20;

/// A freelist of encode scratch buffers with hit/miss accounting.
///
/// The freelist is the runtime's per-PE envelope slab: every encoded
/// payload is serialized into a slab buffer, published (inline for small
/// payloads, one shared allocation otherwise), and the buffer recycled.
/// Slab hits/misses, inline-publish counts and encoded bytes are all
/// accounted here and surfaced per PE in `PePerf`.
pub struct EncodePool {
    free: Vec<Vec<u8>>,
    hits: u64,
    misses: u64,
    bytes: u64,
    inline_count: u64,
    inline_enabled: bool,
}

impl EncodePool {
    /// An empty pool (small-payload inlining enabled).
    pub const fn new() -> EncodePool {
        EncodePool {
            free: Vec::new(),
            hits: 0,
            misses: 0,
            bytes: 0,
            inline_count: 0,
            inline_enabled: true,
        }
    }

    /// Take a cleared scratch buffer, reusing a pooled one when available.
    pub fn take(&mut self) -> Vec<u8> {
        match self.free.pop() {
            Some(mut buf) => {
                buf.clear();
                self.hits += 1;
                buf
            }
            None => {
                self.misses += 1;
                Vec::with_capacity(256)
            }
        }
    }

    /// Return a scratch buffer for reuse. Oversized buffers and buffers
    /// beyond the retention cap are dropped.
    pub fn put(&mut self, buf: Vec<u8>) {
        if self.free.len() < MAX_POOLED_BUFS && buf.capacity() <= MAX_POOLED_CAP {
            self.free.push(buf);
        }
    }

    /// Buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// Takes satisfied from the freelist.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Takes that had to allocate.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Count `n` bytes of encoded payload produced through this pool
    /// (called by the shared-encode path; read by the trace report).
    pub fn record_encoded(&mut self, n: usize) {
        self.bytes += n as u64;
    }

    /// Total encoded payload bytes produced through this pool.
    pub fn bytes_encoded(&self) -> u64 {
        self.bytes
    }

    /// Fraction of takes satisfied without allocating (0.0 when unused).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Publish encoded `bytes` as a [`WireBytes`] payload: inline (zero
    /// allocations) when small and inlining is enabled, otherwise one
    /// exact-size shared allocation. This is the single exit point of both
    /// codecs' shared-encode paths, so the inline count here is the
    /// authoritative per-pool tally.
    pub fn publish(&mut self, bytes: &[u8]) -> WireBytes {
        if self.inline_enabled {
            if let Some(wb) = WireBytes::inline(bytes) {
                self.inline_count += 1;
                return wb;
            }
        }
        WireBytes::copy_from_slice(bytes)
    }

    /// Payloads published inline (no `Arc`, no heap) through this pool.
    pub fn inline_count(&self) -> u64 {
        self.inline_count
    }

    /// Enable or disable small-payload inlining (on by default). The
    /// runtime's fast-path toggle reaches here so an inlining-off run is
    /// representation-identical to the pre-fast-path runtime.
    pub fn set_inline(&mut self, enabled: bool) {
        self.inline_enabled = enabled;
    }

    /// Whether small-payload inlining is enabled.
    pub fn inline_enabled(&self) -> bool {
        self.inline_enabled
    }
}

impl Default for EncodePool {
    fn default() -> EncodePool {
        EncodePool::new()
    }
}

thread_local! {
    static TLS_POOL: RefCell<EncodePool> = const { RefCell::new(EncodePool::new()) };
}

/// Run `f` with the calling thread's encode pool.
pub fn with_pool<R>(f: impl FnOnce(&mut EncodePool) -> R) -> R {
    TLS_POOL.with(|p| f(&mut p.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_take_misses_then_hits() {
        let mut pool = EncodePool::new();
        let mut buf = pool.take();
        assert_eq!((pool.hits(), pool.misses()), (0, 1));
        buf.extend_from_slice(&[1, 2, 3]);
        let cap = buf.capacity();
        pool.put(buf);
        let buf = pool.take();
        assert_eq!((pool.hits(), pool.misses()), (1, 1));
        assert!(buf.is_empty(), "pooled buffers come back cleared");
        assert_eq!(buf.capacity(), cap, "capacity is retained across reuse");
        assert!(pool.hit_rate() > 0.49 && pool.hit_rate() < 0.51);
    }

    #[test]
    fn oversized_buffers_are_dropped() {
        let mut pool = EncodePool::new();
        pool.put(Vec::with_capacity(MAX_POOLED_CAP + 1));
        assert_eq!(pool.pooled(), 0);
        pool.put(Vec::with_capacity(16));
        assert_eq!(pool.pooled(), 1);
    }

    #[test]
    fn retention_is_bounded() {
        let mut pool = EncodePool::new();
        for _ in 0..MAX_POOLED_BUFS + 10 {
            pool.put(Vec::with_capacity(8));
        }
        assert_eq!(pool.pooled(), MAX_POOLED_BUFS);
    }

    #[test]
    fn publish_inlines_small_and_shares_large() {
        let mut pool = EncodePool::new();
        let small = pool.publish(&[1, 2, 3]);
        assert!(small.is_inline());
        let large = pool.publish(&[0u8; 200]);
        assert!(!large.is_inline());
        assert_eq!(pool.inline_count(), 1);

        pool.set_inline(false);
        let small_off = pool.publish(&[1, 2, 3]);
        assert!(!small_off.is_inline(), "inlining off publishes shared");
        assert_eq!(pool.inline_count(), 1, "disabled publishes don't count");
        assert_eq!(small, small_off, "representation never changes the bytes");
    }

    #[test]
    fn thread_local_pool_is_reusable() {
        let first = with_pool(|p| {
            let b = p.take();
            p.put(b);
            p.misses()
        });
        let hits = with_pool(|p| {
            let b = p.take();
            p.put(b);
            p.hits()
        });
        assert!(first >= 1);
        assert!(hits >= 1);
    }
}
