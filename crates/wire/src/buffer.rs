//! Zero-copy contiguous numeric buffers — the NumPy-array fast path —
//! plus [`WireBytes`], the shared refcounted payload every encoded message
//! travels in.
//!
//! CharmPy bypasses pickle for NumPy arrays: their contiguous memory is
//! copied directly into the message and rebuilt from metadata at the
//! destination (paper §IV-B). [`Buf<T>`] is the equivalent here: a typed
//! contiguous array that serializes as one raw byte block in *both* codecs,
//! so even the pickle (dynamic-dispatch) path moves bulk data at memcpy
//! speed. Application critical paths should carry their grids/particles in
//! `Buf<T>`, exactly as the paper recommends NumPy arrays.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

use serde::de::{self, Visitor};
use serde::{Deserialize, Deserializer, Serialize, Serializer};

mod sealed {
    pub trait Sealed {}
}

/// Plain-old-data scalars that may be reinterpreted as raw bytes.
///
/// Sealed: implemented only for primitive numeric types with no padding and
/// no invalid bit patterns. The wire format is the machine representation of
/// the elements (little-endian on all supported targets).
pub trait Scalar: sealed::Sealed + Copy + Default + Send + Sync + 'static {}

macro_rules! impl_scalar {
    ($($t:ty),*) => {
        $(impl sealed::Sealed for $t {}
          impl Scalar for $t {})*
    };
}

impl_scalar!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

// The raw-bytes representation assumes little-endian layout; all tier-1 Rust
// targets and every machine in the paper's evaluation are little-endian.
#[cfg(target_endian = "big")]
compile_error!("charm-wire Buf<T> requires a little-endian target");

/// A contiguous typed buffer with a zero-copy wire representation.
///
/// Dereferences to `[T]`, so it can be used like a `Vec<T>` for computation.
#[derive(Clone, PartialEq, Default)]
pub struct Buf<T: Scalar> {
    data: Vec<T>,
}

impl<T: Scalar> Buf<T> {
    /// Create an empty buffer.
    pub fn new() -> Self {
        Buf { data: Vec::new() }
    }

    /// Create a zero-filled buffer of `len` elements.
    pub fn zeros(len: usize) -> Self {
        Buf {
            data: vec![T::default(); len],
        }
    }

    /// Wrap an existing vector without copying.
    pub fn from_vec(data: Vec<T>) -> Self {
        Buf { data }
    }

    /// Consume the buffer, returning the underlying vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// View the elements as raw bytes.
    #[allow(unsafe_code)] // crate denies unsafe; this is one of the two sanctioned blocks
    pub fn as_bytes(&self) -> &[u8] {
        let ptr = self.data.as_ptr() as *const u8;
        let len = self.data.len() * std::mem::size_of::<T>();
        // SAFETY: `T: Scalar` is sealed to padding-free POD primitives, so
        // every byte of the element storage is initialized, and the
        // reinterpreted length covers exactly the initialized prefix.
        unsafe { std::slice::from_raw_parts(ptr, len) }
    }

    /// Rebuild a buffer from raw bytes produced by [`Buf::as_bytes`].
    ///
    /// Returns `None` if `bytes` is not a whole number of elements.
    #[allow(unsafe_code)] // crate denies unsafe; this is one of the two sanctioned blocks
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let esz = std::mem::size_of::<T>();
        if !bytes.len().is_multiple_of(esz) {
            return None;
        }
        let len = bytes.len() / esz;
        let mut data: Vec<T> = Vec::with_capacity(len);
        // SAFETY: the destination has capacity for `len` elements; the source
        // holds `len * size_of::<T>()` bytes; `T` is POD so any bit pattern
        // is a valid value; regions cannot overlap (fresh allocation).
        unsafe {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                data.as_mut_ptr() as *mut u8,
                bytes.len(),
            );
            data.set_len(len);
        }
        Some(Buf { data })
    }
}

impl<T: Scalar> From<Vec<T>> for Buf<T> {
    fn from(data: Vec<T>) -> Self {
        Buf { data }
    }
}

impl<T: Scalar> Deref for Buf<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.data
    }
}

impl<T: Scalar> DerefMut for Buf<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T: Scalar + fmt::Debug> fmt::Debug for Buf<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Buf(len={})", self.data.len())?;
        if self.data.len() <= 8 {
            write!(f, " {:?}", &self.data)?;
        }
        Ok(())
    }
}

impl<T: Scalar> Serialize for Buf<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bytes(self.as_bytes())
    }
}

struct BufVisitor<T: Scalar>(std::marker::PhantomData<T>);

impl<'de, T: Scalar> Visitor<'de> for BufVisitor<T> {
    type Value = Buf<T>;
    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a raw byte block holding Buf elements")
    }
    fn visit_bytes<E: de::Error>(self, v: &[u8]) -> Result<Buf<T>, E> {
        Buf::from_bytes(v)
            .ok_or_else(|| E::custom(format!("byte block of {} not element-aligned", v.len())))
    }
    fn visit_borrowed_bytes<E: de::Error>(self, v: &'de [u8]) -> Result<Buf<T>, E> {
        self.visit_bytes(v)
    }
    fn visit_byte_buf<E: de::Error>(self, v: Vec<u8>) -> Result<Buf<T>, E> {
        self.visit_bytes(&v)
    }
}

impl<'de, T: Scalar> Deserialize<'de> for Buf<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_bytes(BufVisitor(std::marker::PhantomData))
    }
}

/// Largest payload (in bytes) representable inline inside a [`WireBytes`]
/// handle itself, with no shared allocation behind it. Payloads strictly
/// shorter than 64 bytes fit.
pub const INLINE_CAP: usize = 63;

/// Internal representation: a refcounted shared allocation (the general
/// case, cheap fan-out clones) or a small fixed array stored directly in
/// the handle (the per-message fast path, zero allocations).
#[derive(Clone)]
enum Repr {
    Shared(Arc<[u8]>),
    Inline { len: u8, buf: [u8; INLINE_CAP] },
}

/// An immutable, reference-counted encoded payload.
///
/// Fan-out (broadcasts, section multicasts, collection creation) hands the
/// same encoded bytes to every destination. `WireBytes` makes that sharing
/// explicit and cheap: a clone bumps a refcount, never copies the bytes.
/// The buffer is immutable once built, so shares are safe across the
/// threaded backend's PE threads (`Arc<[u8]>` is `Send + Sync`).
///
/// Whether two handles share one allocation is observable via
/// [`WireBytes::ptr_eq`] — the zero-copy tests assert it.
///
/// Small payloads (< 64 B) built via [`WireBytes::inline`] skip the shared
/// allocation entirely and live inside the handle — the runtime's
/// per-message fast path. Inline handles clone by `memcpy` (still cheap at
/// this size) and are never `ptr_eq` to anything.
#[derive(Clone)]
pub struct WireBytes {
    repr: Repr,
}

impl Default for WireBytes {
    fn default() -> WireBytes {
        WireBytes {
            repr: Repr::Inline {
                len: 0,
                buf: [0; INLINE_CAP],
            },
        }
    }
}

impl WireBytes {
    /// An empty payload.
    pub fn new() -> WireBytes {
        WireBytes::default()
    }

    /// Take ownership of an encoded buffer. One exact-size shared
    /// allocation; the vector's storage is released.
    pub fn from_vec(v: Vec<u8>) -> WireBytes {
        WireBytes {
            repr: Repr::Shared(Arc::from(v)),
        }
    }

    /// Copy `bytes` into a new exact-size shared allocation. This is the
    /// encode-pool path: the scratch buffer stays with the pool and only
    /// the final bytes are published.
    pub fn copy_from_slice(bytes: &[u8]) -> WireBytes {
        WireBytes {
            repr: Repr::Shared(Arc::from(bytes)),
        }
    }

    /// Store `bytes` directly inside the handle with **zero** heap
    /// allocations, when they fit ([`INLINE_CAP`]). Returns `None` for
    /// larger payloads — callers fall back to [`copy_from_slice`].
    ///
    /// [`copy_from_slice`]: WireBytes::copy_from_slice
    pub fn inline(bytes: &[u8]) -> Option<WireBytes> {
        if bytes.len() > INLINE_CAP {
            return None;
        }
        let mut buf = [0u8; INLINE_CAP];
        buf[..bytes.len()].copy_from_slice(bytes);
        Some(WireBytes {
            repr: Repr::Inline {
                len: bytes.len() as u8,
                buf,
            },
        })
    }

    /// Whether this payload is stored inline (no shared allocation).
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline { .. })
    }

    /// Length of the encoded payload.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Shared(d) => d.len(),
            Repr::Inline { len, .. } => *len as usize,
        }
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The encoded bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Shared(d) => d,
            Repr::Inline { len, buf } => &buf[..*len as usize],
        }
    }

    /// Whether `a` and `b` share one allocation (no copy ever happened
    /// between them). Inline payloads own no allocation, so they are never
    /// `ptr_eq` — compare by value (`==`) instead.
    pub fn ptr_eq(a: &WireBytes, b: &WireBytes) -> bool {
        match (&a.repr, &b.repr) {
            (Repr::Shared(x), Repr::Shared(y)) => Arc::ptr_eq(x, y),
            _ => false,
        }
    }

    /// Number of live handles to this allocation (diagnostics/tests).
    /// Inline payloads report 1: each handle is its own storage.
    pub fn ref_count(&self) -> usize {
        match &self.repr {
            Repr::Shared(d) => Arc::strong_count(d),
            Repr::Inline { .. } => 1,
        }
    }
}

impl Deref for WireBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for WireBytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for WireBytes {
    fn from(v: Vec<u8>) -> WireBytes {
        WireBytes::from_vec(v)
    }
}

impl From<&[u8]> for WireBytes {
    fn from(bytes: &[u8]) -> WireBytes {
        WireBytes::copy_from_slice(bytes)
    }
}

impl PartialEq for WireBytes {
    fn eq(&self, other: &WireBytes) -> bool {
        WireBytes::ptr_eq(self, other) || self.as_slice() == other.as_slice()
    }
}

impl Eq for WireBytes {}

impl fmt::Debug for WireBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_inline() {
            write!(f, "WireBytes({}B, inline)", self.len())
        } else {
            write!(f, "WireBytes({}B, {} refs)", self.len(), self.ref_count())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip_f64() {
        let b = Buf::from_vec(vec![1.5f64, -2.25, 0.0, f64::MAX]);
        let raw = b.as_bytes().to_vec();
        assert_eq!(raw.len(), 32);
        let back: Buf<f64> = Buf::from_bytes(&raw).unwrap();
        assert_eq!(&*back, &*b);
    }

    #[test]
    fn misaligned_length_rejected() {
        assert!(Buf::<f64>::from_bytes(&[0u8; 9]).is_none());
        assert!(Buf::<u32>::from_bytes(&[0u8; 3]).is_none());
    }

    #[test]
    fn empty_buffer() {
        let b: Buf<f32> = Buf::new();
        assert_eq!(b.as_bytes().len(), 0);
        let back: Buf<f32> = Buf::from_bytes(&[]).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn deref_mutation() {
        let mut b = Buf::<i32>::zeros(4);
        b[2] = 7;
        assert_eq!(b.into_vec(), vec![0, 0, 7, 0]);
    }

    #[test]
    fn wirebytes_clone_shares_allocation() {
        let wb = WireBytes::from_vec(vec![1, 2, 3, 4]);
        let c = wb.clone();
        assert!(WireBytes::ptr_eq(&wb, &c));
        assert_eq!(&c[..], &[1, 2, 3, 4]);
        assert_eq!(wb.ref_count(), 2);
    }

    #[test]
    fn wirebytes_empty_and_eq() {
        let e = WireBytes::new();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        // Value equality holds across distinct allocations too.
        let a = WireBytes::copy_from_slice(b"abc");
        let b = WireBytes::from_vec(b"abc".to_vec());
        assert!(!WireBytes::ptr_eq(&a, &b));
        assert_eq!(a, b);
    }

    #[test]
    fn wirebytes_inline_fits_under_cap_only() {
        let small = WireBytes::inline(b"hello").expect("5B fits inline");
        assert!(small.is_inline());
        assert_eq!(small.len(), 5);
        assert_eq!(&small[..], b"hello");
        assert_eq!(small.ref_count(), 1);
        let edge = WireBytes::inline(&[7u8; INLINE_CAP]).expect("cap-size fits");
        assert_eq!(edge.len(), INLINE_CAP);
        assert!(WireBytes::inline(&[0u8; INLINE_CAP + 1]).is_none());
    }

    #[test]
    fn wirebytes_inline_clones_and_compares_by_value() {
        let a = WireBytes::inline(b"xyz").unwrap();
        let c = a.clone();
        // Inline handles own their bytes: clones are copies, never shares.
        assert!(!WireBytes::ptr_eq(&a, &c));
        assert_eq!(a, c);
        // Value equality crosses representations.
        let shared = WireBytes::copy_from_slice(b"xyz");
        assert!(!shared.is_inline());
        assert_eq!(a, shared);
        assert_eq!(format!("{a:?}"), "WireBytes(3B, inline)");
    }

    #[test]
    fn wirebytes_shared_constructors_stay_shared() {
        // `from_vec`/`copy_from_slice` must keep producing the shared
        // representation even for tiny inputs — fan-out paths rely on
        // `ptr_eq` to observe one-allocation sharing.
        let v = WireBytes::from_vec(vec![1, 2]);
        let s = WireBytes::copy_from_slice(&[3]);
        assert!(!v.is_inline() && !s.is_inline());
        assert!(WireBytes::ptr_eq(&v, &v.clone()));
    }
}
