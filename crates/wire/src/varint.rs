//! LEB128 variable-length integers and zigzag signed mapping.
//!
//! Both codecs store lengths and most integers as varints: small values
//! dominate message headers, so this keeps the common envelope a handful of
//! bytes, matching Charm++'s compact headers.

use crate::error::{Result, WireError};

/// Maximum encoded size of a `u64` varint (10 bytes of 7 payload bits).
pub const MAX_VARINT_LEN: usize = 10;

/// Append `v` to `out` in LEB128 form.
#[inline]
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode a LEB128 `u64` from the front of `buf`, returning the value and
/// the number of bytes consumed.
#[inline]
pub fn read_u64(buf: &[u8]) -> Result<(u64, usize)> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().enumerate() {
        if i >= MAX_VARINT_LEN {
            return Err(WireError::VarintOverflow);
        }
        let payload = (byte & 0x7f) as u64;
        // The 10th byte may only contribute one bit.
        if shift == 63 && payload > 1 {
            return Err(WireError::VarintOverflow);
        }
        v |= payload << shift;
        if byte & 0x80 == 0 {
            return Ok((v, i + 1));
        }
        shift += 7;
    }
    Err(WireError::Eof)
}

/// Map a signed integer onto an unsigned one so small magnitudes encode small.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_representative_values() {
        for &v in &[
            0u64,
            1,
            127,
            128,
            300,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let (got, used) = read_u64(&buf).unwrap();
            assert_eq!(got, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn single_byte_for_small_values() {
        for v in 0..=127u64 {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            assert_eq!(buf.len(), 1, "value {v} should fit one byte");
        }
    }

    #[test]
    fn max_value_is_ten_bytes() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        assert_eq!(buf.len(), MAX_VARINT_LEN);
    }

    #[test]
    fn eof_on_truncated_input() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 1u64 << 40);
        buf.pop();
        assert_eq!(read_u64(&buf), Err(WireError::Eof));
    }

    #[test]
    fn overflow_on_eleven_continuations() {
        let buf = [0x80u8; 11];
        assert_eq!(read_u64(&buf), Err(WireError::VarintOverflow));
    }

    #[test]
    fn overflow_on_tenth_byte_too_large() {
        // Nine continuation bytes then a final byte with more than 1 bit set.
        let mut buf = vec![0x80u8; 9];
        buf.push(0x02);
        assert_eq!(read_u64(&buf), Err(WireError::VarintOverflow));
    }

    #[test]
    fn zigzag_roundtrip() {
        for &v in &[
            0i64,
            -1,
            1,
            -2,
            2,
            i64::MIN,
            i64::MAX,
            -123456789,
            987654321,
        ] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn zigzag_small_magnitudes_encode_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        assert_eq!(zigzag(2), 4);
    }
}
