//! The *pickle* codec: a self-describing tagged binary format.
//!
//! This is the analog of Python's pickle as used by CharmPy for arbitrary
//! method arguments (paper §IV-B): every value carries a type tag, structs
//! carry their type and field names, and enums carry variant names. Decoding
//! allocates and compares those names, which makes this codec genuinely
//! slower than [`crate::fast`] — the same relationship pickle has to
//! Charm++'s native packing. The dynamic dispatch mode of the runtime uses
//! this codec; the ablation benches compare the two directly.

use serde::de::{self, DeserializeOwned, IntoDeserializer, Visitor};
use serde::ser::{self, Serialize};

use crate::buffer::WireBytes;
use crate::error::{Result, WireError};
use crate::pool::EncodePool;
use crate::varint;

// Type tags. Every serialized value begins with one of these.
const T_UNIT: u8 = 0x00;
const T_FALSE: u8 = 0x01;
const T_TRUE: u8 = 0x02;
const T_INT: u8 = 0x03; // zigzag varint i64
const T_UINT: u8 = 0x04; // varint u64
const T_F32: u8 = 0x05;
const T_F64: u8 = 0x06;
const T_CHAR: u8 = 0x07;
const T_STR: u8 = 0x08;
const T_BYTES: u8 = 0x09;
const T_LIST: u8 = 0x0a; // varint len, then tagged values
const T_MAP: u8 = 0x0b; // varint len, then (tagged key, tagged value)
const T_STRUCT: u8 = 0x0c; // name, varint len, then (field name, tagged value)
const T_ENUM: u8 = 0x0d; // enum name, variant name, tagged payload
const T_SOME: u8 = 0x0e; // tagged inner value
const T_NONE: u8 = 0x0f;
const T_I128: u8 = 0x10; // 16 LE bytes
const T_U128: u8 = 0x11; // 16 LE bytes

/// Encode `value` with the pickle codec.
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(128);
    to_writer(&mut out, value)?;
    Ok(out)
}

/// Encode `value` with the pickle codec, appending to `out`.
pub fn to_writer<T: Serialize + ?Sized>(out: &mut Vec<u8>, value: &T) -> Result<()> {
    let mut ser = PickleSerializer { out };
    value.serialize(&mut ser)
}

/// Encode `value` with the pickle codec into a shared, refcounted payload,
/// serializing through `pool`'s reusable scratch buffer. The pool publishes
/// the result: inline when small, one shared allocation otherwise.
pub fn to_shared<T: Serialize + ?Sized>(pool: &mut EncodePool, value: &T) -> Result<WireBytes> {
    let mut scratch = pool.take();
    let encoded = to_writer(&mut scratch, value).map(|()| pool.publish(&scratch));
    pool.put(scratch);
    encoded
}

/// Decode a value of type `T` from `bytes`, requiring all input be consumed.
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let mut de = PickleDeserializer { input: bytes };
    let value = T::deserialize(&mut de)?;
    if !de.input.is_empty() {
        return Err(WireError::TrailingBytes(de.input.len()));
    }
    Ok(value)
}

fn write_raw_str(out: &mut Vec<u8>, s: &str) {
    varint::write_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

struct PickleSerializer<'a> {
    out: &'a mut Vec<u8>,
}

impl<'a, 'b> ser::Serializer for &'b mut PickleSerializer<'a> {
    type Ok = ();
    type Error = WireError;
    type SerializeSeq = PCompound<'a, 'b>;
    type SerializeTuple = PCompound<'a, 'b>;
    type SerializeTupleStruct = PCompound<'a, 'b>;
    type SerializeTupleVariant = PCompound<'a, 'b>;
    type SerializeMap = PCompound<'a, 'b>;
    type SerializeStruct = PCompound<'a, 'b>;
    type SerializeStructVariant = PCompound<'a, 'b>;

    fn serialize_bool(self, v: bool) -> Result<()> {
        self.out.push(if v { T_TRUE } else { T_FALSE });
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<()> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i16(self, v: i16) -> Result<()> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i32(self, v: i32) -> Result<()> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i64(self, v: i64) -> Result<()> {
        self.out.push(T_INT);
        varint::write_u64(self.out, varint::zigzag(v));
        Ok(())
    }
    fn serialize_i128(self, v: i128) -> Result<()> {
        self.out.push(T_I128);
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<()> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u16(self, v: u16) -> Result<()> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u32(self, v: u32) -> Result<()> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u64(self, v: u64) -> Result<()> {
        self.out.push(T_UINT);
        varint::write_u64(self.out, v);
        Ok(())
    }
    fn serialize_u128(self, v: u128) -> Result<()> {
        self.out.push(T_U128);
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<()> {
        self.out.push(T_F32);
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<()> {
        self.out.push(T_F64);
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<()> {
        self.out.push(T_CHAR);
        varint::write_u64(self.out, v as u64);
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<()> {
        self.out.push(T_STR);
        write_raw_str(self.out, v);
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<()> {
        self.out.push(T_BYTES);
        varint::write_u64(self.out, v.len() as u64);
        self.out.extend_from_slice(v);
        Ok(())
    }
    fn serialize_none(self) -> Result<()> {
        self.out.push(T_NONE);
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<()> {
        self.out.push(T_SOME);
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<()> {
        self.out.push(T_UNIT);
        Ok(())
    }
    fn serialize_unit_struct(self, name: &'static str) -> Result<()> {
        self.out.push(T_STRUCT);
        write_raw_str(self.out, name);
        varint::write_u64(self.out, 0);
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<()> {
        self.out.push(T_ENUM);
        write_raw_str(self.out, name);
        write_raw_str(self.out, variant);
        self.out.push(T_UNIT);
        Ok(())
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<()> {
        self.out.push(T_ENUM);
        write_raw_str(self.out, name);
        write_raw_str(self.out, variant);
        value.serialize(self)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<PCompound<'a, 'b>> {
        let len = len.ok_or(WireError::Unsupported("seq with unknown length"))?;
        self.out.push(T_LIST);
        varint::write_u64(self.out, len as u64);
        Ok(PCompound { ser: self })
    }
    fn serialize_tuple(self, len: usize) -> Result<PCompound<'a, 'b>> {
        self.out.push(T_LIST);
        varint::write_u64(self.out, len as u64);
        Ok(PCompound { ser: self })
    }
    fn serialize_tuple_struct(self, _name: &'static str, len: usize) -> Result<PCompound<'a, 'b>> {
        self.serialize_tuple(len)
    }
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<PCompound<'a, 'b>> {
        self.out.push(T_ENUM);
        write_raw_str(self.out, name);
        write_raw_str(self.out, variant);
        self.out.push(T_LIST);
        varint::write_u64(self.out, len as u64);
        Ok(PCompound { ser: self })
    }
    fn serialize_map(self, len: Option<usize>) -> Result<PCompound<'a, 'b>> {
        let len = len.ok_or(WireError::Unsupported("map with unknown length"))?;
        self.out.push(T_MAP);
        varint::write_u64(self.out, len as u64);
        Ok(PCompound { ser: self })
    }
    fn serialize_struct(self, name: &'static str, len: usize) -> Result<PCompound<'a, 'b>> {
        self.out.push(T_STRUCT);
        write_raw_str(self.out, name);
        varint::write_u64(self.out, len as u64);
        Ok(PCompound { ser: self })
    }
    fn serialize_struct_variant(
        self,
        name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<PCompound<'a, 'b>> {
        self.out.push(T_ENUM);
        write_raw_str(self.out, name);
        write_raw_str(self.out, variant);
        // Struct-variant payload reuses the struct encoding with the variant
        // name standing in for the struct name.
        self.out.push(T_STRUCT);
        write_raw_str(self.out, variant);
        varint::write_u64(self.out, len as u64);
        Ok(PCompound { ser: self })
    }
    fn is_human_readable(&self) -> bool {
        false
    }
}

/// Compound serializer shared by all pickle container shapes.
pub struct PCompound<'a, 'b> {
    ser: &'b mut PickleSerializer<'a>,
}

macro_rules! impl_pcompound {
    ($trait:ident, $method:ident) => {
        impl<'a, 'b> ser::$trait for PCompound<'a, 'b> {
            type Ok = ();
            type Error = WireError;
            fn $method<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
                value.serialize(&mut *self.ser)
            }
            fn end(self) -> Result<()> {
                Ok(())
            }
        }
    };
}

impl_pcompound!(SerializeSeq, serialize_element);
impl_pcompound!(SerializeTuple, serialize_element);
impl_pcompound!(SerializeTupleStruct, serialize_field);
impl_pcompound!(SerializeTupleVariant, serialize_field);

impl<'a, 'b> ser::SerializeMap for PCompound<'a, 'b> {
    type Ok = ();
    type Error = WireError;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<()> {
        key.serialize(&mut *self.ser)
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl<'a, 'b> ser::SerializeStruct for PCompound<'a, 'b> {
    type Ok = ();
    type Error = WireError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<()> {
        write_raw_str(self.ser.out, key);
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl<'a, 'b> ser::SerializeStructVariant for PCompound<'a, 'b> {
    type Ok = ();
    type Error = WireError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<()> {
        write_raw_str(self.ser.out, key);
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<()> {
        Ok(())
    }
}

struct PickleDeserializer<'de> {
    input: &'de [u8],
}

impl<'de> PickleDeserializer<'de> {
    #[inline]
    fn take(&mut self, n: usize) -> Result<&'de [u8]> {
        if self.input.len() < n {
            return Err(WireError::Eof);
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }
    #[inline]
    fn get_u64(&mut self) -> Result<u64> {
        let (v, used) = varint::read_u64(self.input)?;
        self.input = &self.input[used..];
        Ok(v)
    }
    #[inline]
    fn get_byte(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    #[inline]
    fn peek_byte(&self) -> Result<u8> {
        self.input.first().copied().ok_or(WireError::Eof)
    }
    fn get_raw_str(&mut self) -> Result<&'de str> {
        let len = self.get_u64()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| WireError::Utf8)
    }

    /// Parse one tagged value and feed it to `visitor`. This is the heart of
    /// the self-describing decoder; all typed entry points delegate here.
    fn parse_value<V: Visitor<'de>>(&mut self, visitor: V) -> Result<V::Value> {
        let tag = self.get_byte()?;
        match tag {
            T_UNIT => visitor.visit_unit(),
            T_FALSE => visitor.visit_bool(false),
            T_TRUE => visitor.visit_bool(true),
            T_INT => {
                let v = varint::unzigzag(self.get_u64()?);
                visitor.visit_i64(v)
            }
            T_UINT => {
                let v = self.get_u64()?;
                visitor.visit_u64(v)
            }
            T_F32 => {
                let bytes = self.take(4)?;
                visitor.visit_f32(f32::from_le_bytes(bytes.try_into().unwrap()))
            }
            T_F64 => {
                let bytes = self.take(8)?;
                visitor.visit_f64(f64::from_le_bytes(bytes.try_into().unwrap()))
            }
            T_CHAR => {
                let raw = self.get_u64()?;
                let raw32 = u32::try_from(raw).map_err(|_| WireError::BadChar(u32::MAX))?;
                let c = char::from_u32(raw32).ok_or(WireError::BadChar(raw32))?;
                visitor.visit_char(c)
            }
            T_STR => {
                let s = self.get_raw_str()?;
                visitor.visit_borrowed_str(s)
            }
            T_BYTES => {
                let len = self.get_u64()? as usize;
                let bytes = self.take(len)?;
                visitor.visit_borrowed_bytes(bytes)
            }
            T_LIST => {
                let len = self.get_u64()? as usize;
                visitor.visit_seq(PSeqAccess {
                    de: self,
                    left: len,
                })
            }
            T_MAP => {
                let len = self.get_u64()? as usize;
                visitor.visit_map(PMapAccess {
                    de: self,
                    left: len,
                    struct_mode: false,
                })
            }
            T_STRUCT => {
                let _name = self.get_raw_str()?;
                let len = self.get_u64()? as usize;
                visitor.visit_map(PMapAccess {
                    de: self,
                    left: len,
                    struct_mode: true,
                })
            }
            T_ENUM => {
                let _name = self.get_raw_str()?;
                visitor.visit_enum(PEnumAccess { de: self })
            }
            T_SOME => visitor.visit_some(self),
            T_NONE => visitor.visit_none(),
            T_I128 => {
                let bytes = self.take(16)?;
                visitor.visit_i128(i128::from_le_bytes(bytes.try_into().unwrap()))
            }
            T_U128 => {
                let bytes = self.take(16)?;
                visitor.visit_u128(u128::from_le_bytes(bytes.try_into().unwrap()))
            }
            other => Err(WireError::BadTag(other)),
        }
    }
}

macro_rules! forward_to_parse_value {
    ($($method:ident)*) => {
        $(fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
            self.parse_value(visitor)
        })*
    };
}

impl<'de> de::Deserializer<'de> for &mut PickleDeserializer<'de> {
    type Error = WireError;

    forward_to_parse_value! {
        deserialize_any deserialize_bool
        deserialize_i8 deserialize_i16 deserialize_i32 deserialize_i64 deserialize_i128
        deserialize_u8 deserialize_u16 deserialize_u32 deserialize_u64 deserialize_u128
        deserialize_f32 deserialize_f64 deserialize_char
        deserialize_str deserialize_string
        deserialize_bytes deserialize_byte_buf
        deserialize_unit deserialize_seq deserialize_map
        deserialize_ignored_any
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self.peek_byte()? {
            T_NONE => {
                self.get_byte()?;
                visitor.visit_none()
            }
            T_SOME => {
                self.get_byte()?;
                visitor.visit_some(self)
            }
            _ => Err(WireError::TypeMismatch {
                found: "non-option tag",
                expected: "option",
            }),
        }
    }
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        // Encoded as an empty struct; accept it and yield unit.
        let tag = self.get_byte()?;
        if tag != T_STRUCT {
            return Err(WireError::TypeMismatch {
                found: "non-struct tag",
                expected: "unit struct",
            });
        }
        let _name = self.get_raw_str()?;
        let len = self.get_u64()?;
        if len != 0 {
            return Err(WireError::InvalidLength(len));
        }
        visitor.visit_unit()
    }
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_newtype_struct(self)
    }
    fn deserialize_tuple<V: Visitor<'de>>(self, _len: usize, visitor: V) -> Result<V::Value> {
        self.parse_value(visitor)
    }
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value> {
        self.parse_value(visitor)
    }
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        self.parse_value(visitor)
    }
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        let tag = self.get_byte()?;
        if tag != T_ENUM {
            return Err(WireError::TypeMismatch {
                found: "non-enum tag",
                expected: "enum",
            });
        }
        let _name = self.get_raw_str()?;
        visitor.visit_enum(PEnumAccess { de: self })
    }
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let s = self.get_raw_str()?;
        visitor.visit_borrowed_str(s)
    }
    fn is_human_readable(&self) -> bool {
        false
    }
}

struct PSeqAccess<'de, 'a> {
    de: &'a mut PickleDeserializer<'de>,
    left: usize,
}

impl<'de, 'a> de::SeqAccess<'de> for PSeqAccess<'de, 'a> {
    type Error = WireError;
    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

struct PMapAccess<'de, 'a> {
    de: &'a mut PickleDeserializer<'de>,
    left: usize,
    /// In struct mode keys are raw (untagged) field-name strings.
    struct_mode: bool,
}

impl<'de, 'a> de::MapAccess<'de> for PMapAccess<'de, 'a> {
    type Error = WireError;
    fn next_key_seed<K: de::DeserializeSeed<'de>>(&mut self, seed: K) -> Result<Option<K::Value>> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        if self.struct_mode {
            seed.deserialize(FieldNameDeserializer { de: &mut *self.de })
                .map(Some)
        } else {
            seed.deserialize(&mut *self.de).map(Some)
        }
    }
    fn next_value_seed<V: de::DeserializeSeed<'de>>(&mut self, seed: V) -> Result<V::Value> {
        seed.deserialize(&mut *self.de)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

/// Deserializer for raw (untagged) field-name strings inside structs.
struct FieldNameDeserializer<'de, 'a> {
    de: &'a mut PickleDeserializer<'de>,
}

impl<'de, 'a> de::Deserializer<'de> for FieldNameDeserializer<'de, 'a> {
    type Error = WireError;
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let s = self.de.get_raw_str()?;
        visitor.visit_borrowed_str(s)
    }
    serde::forward_to_deserialize_any! {
        bool i8 i16 i32 i64 i128 u8 u16 u32 u64 u128 f32 f64 char str string
        bytes byte_buf option unit unit_struct newtype_struct seq tuple
        tuple_struct map struct enum identifier ignored_any
    }
}

struct PEnumAccess<'de, 'a> {
    de: &'a mut PickleDeserializer<'de>,
}

impl<'de, 'a> de::EnumAccess<'de> for PEnumAccess<'de, 'a> {
    type Error = WireError;
    type Variant = PVariantAccess<'de, 'a>;
    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant)> {
        let variant = self.de.get_raw_str()?;
        let value = seed.deserialize(IntoDeserializer::<WireError>::into_deserializer(variant))?;
        Ok((value, PVariantAccess { de: self.de }))
    }
}

struct PVariantAccess<'de, 'a> {
    de: &'a mut PickleDeserializer<'de>,
}

impl<'de, 'a> de::VariantAccess<'de> for PVariantAccess<'de, 'a> {
    type Error = WireError;
    fn unit_variant(self) -> Result<()> {
        let tag = self.de.get_byte()?;
        if tag != T_UNIT {
            return Err(WireError::TypeMismatch {
                found: "non-unit payload",
                expected: "unit variant",
            });
        }
        Ok(())
    }
    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(self, seed: T) -> Result<T::Value> {
        seed.deserialize(self.de)
    }
    fn tuple_variant<V: Visitor<'de>>(self, _len: usize, visitor: V) -> Result<V::Value> {
        self.de.parse_value(visitor)
    }
    fn struct_variant<V: Visitor<'de>>(
        self,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        self.de.parse_value(visitor)
    }
}
