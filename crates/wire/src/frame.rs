//! Hardened length-prefixed framing for untrusted byte streams.
//!
//! This module is the *only* layer that parses raw socket bytes, so it is
//! written defensively: every malformed input maps to a typed [`FrameError`]
//! and nothing here panics on attacker-controlled data. The same source file
//! is compiled into `charm-net` (via `#[path]`) so the transport crate stays
//! std-only while the canonical definition lives with the codec crate.
//!
//! Wire layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       2     MAGIC        0x43AE ("charm" frame marker)
//! 2       1     VERSION      currently 1
//! 3       1     KIND         application tag byte (opaque to this layer)
//! 4       4     LEN          payload length in bytes
//! 8       4     HDR_CRC      FNV-1a over bytes 0..8
//! 12      4     PAYLOAD_CRC  FNV-1a over the payload bytes
//! 16      LEN   payload
//! ```
//!
//! The header checksum rejects desynchronised or bit-flipped headers before
//! the length field can be trusted; the length is additionally capped by a
//! caller-supplied maximum so a corrupt-but-checksummed frame can never make
//! the reader allocate unbounded memory. A clean EOF *between* frames is
//! reported as [`FrameError::Closed`] (normal disconnect); an EOF *inside* a
//! frame is [`FrameError::Torn`] (crash or truncation mid-write).

use std::io::{Read, Write};

/// Frame marker; deliberately asymmetric so byte-swapped streams fail fast.
pub const MAGIC: u16 = 0x43AE;
/// Current frame layout version.
pub const VERSION: u8 = 1;
/// Fixed header length in bytes.
pub const HDR_LEN: usize = 16;
/// Default cap on payload length readers enforce (64 MiB).
pub const DEFAULT_MAX_FRAME: usize = 64 * 1024 * 1024;

/// Typed decode/IO failures for untrusted frame streams.
///
/// `Closed` and `Torn` are connection-lifecycle signals; the rest indicate a
/// corrupt or hostile stream and should terminate the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Clean EOF on a frame boundary: the peer closed the stream.
    Closed,
    /// EOF (or short read) in the middle of a header or payload.
    Torn { needed: usize, got: usize },
    /// First two header bytes are not [`MAGIC`].
    BadMagic { found: u16 },
    /// Header version byte is not [`VERSION`].
    BadVersion { found: u8 },
    /// Declared payload length exceeds the reader's cap.
    TooLarge { len: usize, max: usize },
    /// Header checksum mismatch: desynchronised or bit-flipped header.
    BadHeaderCrc { expected: u32, found: u32 },
    /// Payload checksum mismatch: payload corrupted in flight.
    BadPayloadCrc { expected: u32, found: u32 },
    /// Underlying transport error (timeout, reset, ...).
    Io(std::io::ErrorKind, String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "stream closed on a frame boundary"),
            FrameError::Torn { needed, got } => {
                write!(f, "torn frame: needed {needed} bytes, got {got}")
            }
            FrameError::BadMagic { found } => {
                write!(f, "bad frame magic {found:#06x} (expected {MAGIC:#06x})")
            }
            FrameError::BadVersion { found } => {
                write!(f, "bad frame version {found} (expected {VERSION})")
            }
            FrameError::TooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds cap of {max}")
            }
            FrameError::BadHeaderCrc { expected, found } => {
                write!(
                    f,
                    "header checksum mismatch: expected {expected:#010x}, found {found:#010x}"
                )
            }
            FrameError::BadPayloadCrc { expected, found } => {
                write!(
                    f,
                    "payload checksum mismatch: expected {expected:#010x}, found {found:#010x}"
                )
            }
            FrameError::Io(kind, msg) => write!(f, "frame io error ({kind:?}): {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e.kind(), e.to_string())
    }
}

/// FNV-1a 32-bit: tiny, allocation-free, good enough to catch stream
/// desynchronisation and random corruption (not an integrity MAC).
pub fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Build the 16-byte header for `payload` tagged with `kind`.
pub fn encode_header(kind: u8, payload: &[u8]) -> [u8; HDR_LEN] {
    let mut hdr = [0u8; HDR_LEN];
    hdr[0..2].copy_from_slice(&MAGIC.to_le_bytes());
    hdr[2] = VERSION;
    hdr[3] = kind;
    hdr[4..8].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    let hcrc = fnv1a(&hdr[0..8]);
    hdr[8..12].copy_from_slice(&hcrc.to_le_bytes());
    hdr[12..16].copy_from_slice(&fnv1a(payload).to_le_bytes());
    hdr
}

/// Validate a header and return `(kind, payload_len, payload_crc)`.
///
/// `max` caps the payload length this reader is willing to accept.
pub fn parse_header(hdr: &[u8; HDR_LEN], max: usize) -> Result<(u8, usize, u32), FrameError> {
    let magic = u16::from_le_bytes([hdr[0], hdr[1]]);
    if magic != MAGIC {
        return Err(FrameError::BadMagic { found: magic });
    }
    if hdr[2] != VERSION {
        return Err(FrameError::BadVersion { found: hdr[2] });
    }
    let expected = fnv1a(&hdr[0..8]);
    let found = u32::from_le_bytes([hdr[8], hdr[9], hdr[10], hdr[11]]);
    if expected != found {
        return Err(FrameError::BadHeaderCrc { expected, found });
    }
    let len = u32::from_le_bytes([hdr[4], hdr[5], hdr[6], hdr[7]]) as usize;
    if len > max {
        return Err(FrameError::TooLarge { len, max });
    }
    let pcrc = u32::from_le_bytes([hdr[12], hdr[13], hdr[14], hdr[15]]);
    Ok((hdr[3], len, pcrc))
}

/// Write one frame (header + payload). Does not flush.
pub fn write_frame<W: Write>(w: &mut W, kind: u8, payload: &[u8]) -> Result<(), FrameError> {
    let hdr = encode_header(kind, payload);
    w.write_all(&hdr)?;
    w.write_all(payload)?;
    Ok(())
}

/// Read exactly `buf.len()` bytes, distinguishing a clean EOF at offset 0
/// (`Closed` is only reported when `at_boundary`) from a torn mid-frame EOF.
fn read_full<R: Read>(r: &mut R, buf: &mut [u8], at_boundary: bool) -> Result<(), FrameError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 && at_boundary {
                    return Err(FrameError::Closed);
                }
                return Err(FrameError::Torn {
                    needed: buf.len(),
                    got,
                });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Read and validate one frame, returning `(kind, payload)`.
///
/// `max` caps the payload length; use [`DEFAULT_MAX_FRAME`] unless the
/// protocol knows better. Never panics on malformed input.
pub fn read_frame<R: Read>(r: &mut R, max: usize) -> Result<(u8, Vec<u8>), FrameError> {
    let mut hdr = [0u8; HDR_LEN];
    read_full(r, &mut hdr, true)?;
    let (kind, len, pcrc) = parse_header(&hdr, max)?;
    let mut payload = vec![0u8; len];
    read_full(r, &mut payload, false)?;
    let found = fnv1a(&payload);
    if found != pcrc {
        return Err(FrameError::BadPayloadCrc {
            expected: pcrc,
            found,
        });
    }
    Ok((kind, payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn frame_bytes(kind: u8, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, kind, payload).unwrap();
        out
    }

    #[test]
    fn round_trip() {
        let payload = b"hello charm".to_vec();
        let bytes = frame_bytes(7, &payload);
        assert_eq!(bytes.len(), HDR_LEN + payload.len());
        let (kind, got) = read_frame(&mut Cursor::new(&bytes), DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(kind, 7);
        assert_eq!(got, payload);
    }

    #[test]
    fn round_trip_empty_payload() {
        let bytes = frame_bytes(0, b"");
        let (kind, got) = read_frame(&mut Cursor::new(&bytes), DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(kind, 0);
        assert!(got.is_empty());
    }

    #[test]
    fn several_frames_back_to_back() {
        let mut stream = Vec::new();
        for i in 0..5u8 {
            stream.extend(frame_bytes(i, &vec![i; i as usize * 3]));
        }
        let mut cur = Cursor::new(&stream);
        for i in 0..5u8 {
            let (kind, payload) = read_frame(&mut cur, DEFAULT_MAX_FRAME).unwrap();
            assert_eq!(kind, i);
            assert_eq!(payload, vec![i; i as usize * 3]);
        }
        assert_eq!(
            read_frame(&mut cur, DEFAULT_MAX_FRAME),
            Err(FrameError::Closed)
        );
    }

    #[test]
    fn clean_eof_is_closed() {
        let mut cur = Cursor::new(Vec::<u8>::new());
        assert_eq!(
            read_frame(&mut cur, DEFAULT_MAX_FRAME),
            Err(FrameError::Closed)
        );
    }

    #[test]
    fn torn_header_is_torn_not_panic() {
        let bytes = frame_bytes(1, b"payload");
        for cut in 1..HDR_LEN {
            let err = read_frame(&mut Cursor::new(&bytes[..cut]), DEFAULT_MAX_FRAME).unwrap_err();
            assert_eq!(
                err,
                FrameError::Torn {
                    needed: HDR_LEN,
                    got: cut
                }
            );
        }
    }

    #[test]
    fn torn_payload_is_torn_not_panic() {
        let payload = b"twelve bytes".to_vec();
        let bytes = frame_bytes(1, &payload);
        for cut in HDR_LEN..bytes.len() {
            let err = read_frame(&mut Cursor::new(&bytes[..cut]), DEFAULT_MAX_FRAME).unwrap_err();
            assert_eq!(
                err,
                FrameError::Torn {
                    needed: payload.len(),
                    got: cut - HDR_LEN
                }
            );
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = frame_bytes(1, b"x");
        bytes[0] ^= 0xff;
        let err = read_frame(&mut Cursor::new(&bytes), DEFAULT_MAX_FRAME).unwrap_err();
        assert!(matches!(err, FrameError::BadMagic { .. }), "{err:?}");
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = frame_bytes(1, b"x");
        bytes[2] = VERSION + 1;
        // A version flip also breaks the header CRC; re-seal the CRC so the
        // version check itself is exercised.
        let crc = fnv1a(&bytes[0..8]);
        bytes[8..12].copy_from_slice(&crc.to_le_bytes());
        let err = read_frame(&mut Cursor::new(&bytes), DEFAULT_MAX_FRAME).unwrap_err();
        assert_eq!(err, FrameError::BadVersion { found: VERSION + 1 });
    }

    #[test]
    fn flipped_header_bit_fails_header_crc() {
        for bit in 0..8 * 8usize {
            let mut bytes = frame_bytes(3, b"some payload");
            bytes[bit / 8] ^= 1 << (bit % 8);
            let err = read_frame(&mut Cursor::new(&bytes), DEFAULT_MAX_FRAME).unwrap_err();
            assert!(
                matches!(
                    err,
                    FrameError::BadMagic { .. }
                        | FrameError::BadVersion { .. }
                        | FrameError::BadHeaderCrc { .. }
                ),
                "bit {bit}: {err:?}"
            );
        }
    }

    #[test]
    fn flipped_payload_bit_fails_payload_crc() {
        let mut bytes = frame_bytes(3, b"some payload");
        let k = HDR_LEN + 4;
        bytes[k] ^= 0x10;
        let err = read_frame(&mut Cursor::new(&bytes), DEFAULT_MAX_FRAME).unwrap_err();
        assert!(matches!(err, FrameError::BadPayloadCrc { .. }), "{err:?}");
    }

    #[test]
    fn oversize_length_capped_before_allocation() {
        // A syntactically valid header declaring a huge payload must be
        // rejected by the cap, not trusted into a giant allocation.
        let big = u32::MAX as usize - 1;
        let mut hdr = [0u8; HDR_LEN];
        hdr[0..2].copy_from_slice(&MAGIC.to_le_bytes());
        hdr[2] = VERSION;
        hdr[3] = 9;
        hdr[4..8].copy_from_slice(&(big as u32).to_le_bytes());
        let crc = fnv1a(&hdr[0..8]);
        hdr[8..12].copy_from_slice(&crc.to_le_bytes());
        let err = read_frame(&mut Cursor::new(&hdr[..]), 1024).unwrap_err();
        assert_eq!(
            err,
            FrameError::TooLarge {
                len: big,
                max: 1024
            }
        );
    }

    #[test]
    fn max_boundary_is_inclusive() {
        let payload = vec![0xabu8; 64];
        let bytes = frame_bytes(2, &payload);
        assert!(read_frame(&mut Cursor::new(&bytes), 64).is_ok());
        let err = read_frame(&mut Cursor::new(&bytes), 63).unwrap_err();
        assert_eq!(err, FrameError::TooLarge { len: 64, max: 63 });
    }

    #[test]
    fn garbage_stream_never_panics() {
        // Deterministic pseudo-random garbage: decoding must produce typed
        // errors (or improbably a valid frame), never a panic.
        let mut x: u64 = 0x9e3779b97f4a7c15;
        let mut garbage = vec![0u8; 4096];
        for b in garbage.iter_mut() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *b = x as u8;
        }
        let _ = read_frame(&mut Cursor::new(&garbage), 1024);
    }
}
