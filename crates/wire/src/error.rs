//! Error type shared by the wire codecs.

use std::fmt;

/// Error produced while encoding or decoding a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before a complete value could be decoded.
    Eof,
    /// A length, variant index or tag was out of the representable range.
    InvalidLength(u64),
    /// An unknown type tag was encountered (self-describing codec only).
    BadTag(u8),
    /// A varint was longer than the maximum encodable width.
    VarintOverflow,
    /// A string was not valid UTF-8.
    Utf8,
    /// A `char` value was not a valid Unicode scalar.
    BadChar(u32),
    /// The decoded value did not match what the caller asked for.
    TypeMismatch {
        /// What the decoder found on the wire.
        found: &'static str,
        /// What the caller expected.
        expected: &'static str,
    },
    /// Trailing bytes remained after decoding a complete value.
    TrailingBytes(usize),
    /// The codec does not support this serde feature.
    Unsupported(&'static str),
    /// Error message propagated from serde itself.
    Custom(String),
    /// A framing-layer failure on an untrusted byte stream (bad magic,
    /// checksum mismatch, torn read, over-cap length).
    Frame(crate::frame::FrameError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Eof => write!(f, "unexpected end of input"),
            WireError::InvalidLength(n) => write!(f, "invalid length {n}"),
            WireError::BadTag(t) => write!(f, "unknown type tag {t:#04x}"),
            WireError::VarintOverflow => write!(f, "varint overflow"),
            WireError::Utf8 => write!(f, "invalid utf-8 in string"),
            WireError::BadChar(c) => write!(f, "invalid char scalar {c:#x}"),
            WireError::TypeMismatch { found, expected } => {
                write!(f, "type mismatch: found {found}, expected {expected}")
            }
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            WireError::Unsupported(what) => write!(f, "unsupported serde feature: {what}"),
            WireError::Custom(msg) => write!(f, "{msg}"),
            WireError::Frame(e) => write!(f, "framing error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<crate::frame::FrameError> for WireError {
    fn from(e: crate::frame::FrameError) -> Self {
        WireError::Frame(e)
    }
}

impl serde::ser::Error for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError::Custom(msg.to_string())
    }
}

impl serde::de::Error for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError::Custom(msg.to_string())
    }
}

/// Result alias for wire operations.
pub type Result<T> = std::result::Result<T, WireError>;
