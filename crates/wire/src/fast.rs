//! The *fast* codec: a compact, schema-static binary format.
//!
//! This is the analog of Charm++'s native message packing: both sides know
//! the message type, so nothing self-describing is written — no field names,
//! no type tags. Integers are varint/zigzag encoded, floats are little-endian,
//! enum variants are encoded by index.
//!
//! The format is not self-describing: decoding with the wrong type is
//! detected only probabilistically (usually as `Eof` or `InvalidLength`).

use serde::de::{self, DeserializeOwned, IntoDeserializer, Visitor};
use serde::ser::{self, Serialize};

use crate::buffer::WireBytes;
use crate::error::{Result, WireError};
use crate::pool::EncodePool;
use crate::varint;

/// Encode `value` with the fast codec.
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(64);
    to_writer(&mut out, value)?;
    Ok(out)
}

/// Encode `value` with the fast codec into a shared, refcounted payload.
/// The transient encode goes through `pool`'s scratch buffer (reused across
/// calls, so steady state pays no growth reallocation); the result is
/// published by the pool — inline for small payloads (zero allocations),
/// one exact-size shared allocation otherwise.
pub fn to_shared<T: Serialize + ?Sized>(pool: &mut EncodePool, value: &T) -> Result<WireBytes> {
    let mut scratch = pool.take();
    let encoded = to_writer(&mut scratch, value).map(|()| pool.publish(&scratch));
    pool.put(scratch);
    encoded
}

/// Encode `value` with the fast codec, appending to `out`.
pub fn to_writer<T: Serialize + ?Sized>(out: &mut Vec<u8>, value: &T) -> Result<()> {
    let mut ser = FastSerializer { out };
    value.serialize(&mut ser)
}

/// Decode a value of type `T` from `bytes`, requiring all input be consumed.
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let mut de = FastDeserializer { input: bytes };
    let value = T::deserialize(&mut de)?;
    if !de.input.is_empty() {
        return Err(WireError::TrailingBytes(de.input.len()));
    }
    Ok(value)
}

/// Decode a value of type `T` from the front of `bytes`; returns the value
/// and the number of bytes consumed.
pub fn from_bytes_prefix<T: DeserializeOwned>(bytes: &[u8]) -> Result<(T, usize)> {
    let mut de = FastDeserializer { input: bytes };
    let value = T::deserialize(&mut de)?;
    Ok((value, bytes.len() - de.input.len()))
}

struct FastSerializer<'a> {
    out: &'a mut Vec<u8>,
}

impl<'a> FastSerializer<'a> {
    #[inline]
    fn put_u64(&mut self, v: u64) {
        varint::write_u64(self.out, v);
    }
    #[inline]
    fn put_i64(&mut self, v: i64) {
        varint::write_u64(self.out, varint::zigzag(v));
    }
    #[inline]
    fn put_len(&mut self, len: usize) {
        varint::write_u64(self.out, len as u64);
    }
}

impl<'a, 'b> ser::Serializer for &'b mut FastSerializer<'a> {
    type Ok = ();
    type Error = WireError;
    type SerializeSeq = Compound<'a, 'b>;
    type SerializeTuple = Compound<'a, 'b>;
    type SerializeTupleStruct = Compound<'a, 'b>;
    type SerializeTupleVariant = Compound<'a, 'b>;
    type SerializeMap = Compound<'a, 'b>;
    type SerializeStruct = Compound<'a, 'b>;
    type SerializeStructVariant = Compound<'a, 'b>;

    fn serialize_bool(self, v: bool) -> Result<()> {
        self.out.push(v as u8);
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<()> {
        self.out.push(v as u8);
        Ok(())
    }
    fn serialize_i16(self, v: i16) -> Result<()> {
        self.put_i64(v as i64);
        Ok(())
    }
    fn serialize_i32(self, v: i32) -> Result<()> {
        self.put_i64(v as i64);
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<()> {
        self.put_i64(v);
        Ok(())
    }
    fn serialize_i128(self, v: i128) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<()> {
        self.out.push(v);
        Ok(())
    }
    fn serialize_u16(self, v: u16) -> Result<()> {
        self.put_u64(v as u64);
        Ok(())
    }
    fn serialize_u32(self, v: u32) -> Result<()> {
        self.put_u64(v as u64);
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<()> {
        self.put_u64(v);
        Ok(())
    }
    fn serialize_u128(self, v: u128) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<()> {
        self.put_u64(v as u64);
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<()> {
        self.put_len(v.len());
        self.out.extend_from_slice(v.as_bytes());
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<()> {
        self.put_len(v.len());
        self.out.extend_from_slice(v);
        Ok(())
    }
    fn serialize_none(self) -> Result<()> {
        self.out.push(0);
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<()> {
        self.out.push(1);
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<()> {
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<()> {
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<()> {
        self.put_u64(variant_index as u64);
        Ok(())
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<()> {
        self.put_u64(variant_index as u64);
        value.serialize(self)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<Compound<'a, 'b>> {
        let len = len.ok_or(WireError::Unsupported("seq with unknown length"))?;
        self.put_len(len);
        Ok(Compound { ser: self })
    }
    fn serialize_tuple(self, _len: usize) -> Result<Compound<'a, 'b>> {
        Ok(Compound { ser: self })
    }
    fn serialize_tuple_struct(self, _name: &'static str, _len: usize) -> Result<Compound<'a, 'b>> {
        Ok(Compound { ser: self })
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a, 'b>> {
        self.put_u64(variant_index as u64);
        Ok(Compound { ser: self })
    }
    fn serialize_map(self, len: Option<usize>) -> Result<Compound<'a, 'b>> {
        let len = len.ok_or(WireError::Unsupported("map with unknown length"))?;
        self.put_len(len);
        Ok(Compound { ser: self })
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Compound<'a, 'b>> {
        Ok(Compound { ser: self })
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a, 'b>> {
        self.put_u64(variant_index as u64);
        Ok(Compound { ser: self })
    }
    fn is_human_readable(&self) -> bool {
        false
    }
}

/// Compound serializer shared by all sequence-like shapes.
pub struct Compound<'a, 'b> {
    ser: &'b mut FastSerializer<'a>,
}

macro_rules! impl_compound {
    ($trait:ident, $method:ident) => {
        impl<'a, 'b> ser::$trait for Compound<'a, 'b> {
            type Ok = ();
            type Error = WireError;
            fn $method<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
                value.serialize(&mut *self.ser)
            }
            fn end(self) -> Result<()> {
                Ok(())
            }
        }
    };
}

impl_compound!(SerializeSeq, serialize_element);
impl_compound!(SerializeTuple, serialize_element);
impl_compound!(SerializeTupleStruct, serialize_field);
impl_compound!(SerializeTupleVariant, serialize_field);

impl<'a, 'b> ser::SerializeMap for Compound<'a, 'b> {
    type Ok = ();
    type Error = WireError;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<()> {
        key.serialize(&mut *self.ser)
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl<'a, 'b> ser::SerializeStruct for Compound<'a, 'b> {
    type Ok = ();
    type Error = WireError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl<'a, 'b> ser::SerializeStructVariant for Compound<'a, 'b> {
    type Ok = ();
    type Error = WireError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<()> {
        Ok(())
    }
}

struct FastDeserializer<'de> {
    input: &'de [u8],
}

impl<'de> FastDeserializer<'de> {
    #[inline]
    fn take(&mut self, n: usize) -> Result<&'de [u8]> {
        if self.input.len() < n {
            return Err(WireError::Eof);
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }
    #[inline]
    fn get_u64(&mut self) -> Result<u64> {
        let (v, used) = varint::read_u64(self.input)?;
        self.input = &self.input[used..];
        Ok(v)
    }
    #[inline]
    fn get_i64(&mut self) -> Result<i64> {
        Ok(varint::unzigzag(self.get_u64()?))
    }
    #[inline]
    fn get_len(&mut self) -> Result<usize> {
        let v = self.get_u64()?;
        // Lengths may never exceed the remaining input (1 byte per element
        // minimum does not hold for unit-element seqs, but a sanity cap of
        // the full input length plus slack catches corrupt frames early).
        if v > (self.input.len() as u64).saturating_add(1 << 20) {
            return Err(WireError::InvalidLength(v));
        }
        Ok(v as usize)
    }
    #[inline]
    fn get_byte(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
}

impl<'de> de::Deserializer<'de> for &mut FastDeserializer<'de> {
    type Error = WireError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(WireError::Unsupported(
            "fast codec is not self-describing (deserialize_any)",
        ))
    }
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self.get_byte()? {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            other => Err(WireError::BadTag(other)),
        }
    }
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_i8(self.get_byte()? as i8)
    }
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let v = self.get_i64()?;
        visitor.visit_i16(v.try_into().map_err(|_| WireError::TypeMismatch {
            found: "i64 out of range",
            expected: "i16",
        })?)
    }
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let v = self.get_i64()?;
        visitor.visit_i32(v.try_into().map_err(|_| WireError::TypeMismatch {
            found: "i64 out of range",
            expected: "i32",
        })?)
    }
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let v = self.get_i64()?;
        visitor.visit_i64(v)
    }
    fn deserialize_i128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let bytes = self.take(16)?;
        visitor.visit_i128(i128::from_le_bytes(bytes.try_into().unwrap()))
    }
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_u8(self.get_byte()?)
    }
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let v = self.get_u64()?;
        visitor.visit_u16(v.try_into().map_err(|_| WireError::TypeMismatch {
            found: "u64 out of range",
            expected: "u16",
        })?)
    }
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let v = self.get_u64()?;
        visitor.visit_u32(v.try_into().map_err(|_| WireError::TypeMismatch {
            found: "u64 out of range",
            expected: "u32",
        })?)
    }
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let v = self.get_u64()?;
        visitor.visit_u64(v)
    }
    fn deserialize_u128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let bytes = self.take(16)?;
        visitor.visit_u128(u128::from_le_bytes(bytes.try_into().unwrap()))
    }
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let bytes = self.take(4)?;
        visitor.visit_f32(f32::from_le_bytes(bytes.try_into().unwrap()))
    }
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let bytes = self.take(8)?;
        visitor.visit_f64(f64::from_le_bytes(bytes.try_into().unwrap()))
    }
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let raw = self.get_u64()?;
        let raw32 = u32::try_from(raw).map_err(|_| WireError::BadChar(u32::MAX))?;
        let c = char::from_u32(raw32).ok_or(WireError::BadChar(raw32))?;
        visitor.visit_char(c)
    }
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.get_len()?;
        let bytes = self.take(len)?;
        let s = std::str::from_utf8(bytes).map_err(|_| WireError::Utf8)?;
        visitor.visit_borrowed_str(s)
    }
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        self.deserialize_str(visitor)
    }
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.get_len()?;
        let bytes = self.take(len)?;
        visitor.visit_borrowed_bytes(bytes)
    }
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        self.deserialize_bytes(visitor)
    }
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self.get_byte()? {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            other => Err(WireError::BadTag(other)),
        }
    }
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_unit()
    }
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_unit()
    }
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_newtype_struct(self)
    }
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.get_len()?;
        visitor.visit_seq(SeqAccess {
            de: self,
            left: len,
        })
    }
    fn deserialize_tuple<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value> {
        visitor.visit_seq(SeqAccess {
            de: self,
            left: len,
        })
    }
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_seq(SeqAccess {
            de: self,
            left: len,
        })
    }
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.get_len()?;
        visitor.visit_map(MapAccess {
            de: self,
            left: len,
        })
    }
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_seq(SeqAccess {
            de: self,
            left: fields.len(),
        })
    }
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_enum(EnumAccess { de: self })
    }
    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(WireError::Unsupported("identifier in fast codec"))
    }
    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(WireError::Unsupported(
            "ignored_any in fast codec (non-self-describing)",
        ))
    }
    fn is_human_readable(&self) -> bool {
        false
    }
}

struct SeqAccess<'de, 'a> {
    de: &'a mut FastDeserializer<'de>,
    left: usize,
}

impl<'de, 'a> de::SeqAccess<'de> for SeqAccess<'de, 'a> {
    type Error = WireError;
    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

struct MapAccess<'de, 'a> {
    de: &'a mut FastDeserializer<'de>,
    left: usize,
}

impl<'de, 'a> de::MapAccess<'de> for MapAccess<'de, 'a> {
    type Error = WireError;
    fn next_key_seed<K: de::DeserializeSeed<'de>>(&mut self, seed: K) -> Result<Option<K::Value>> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn next_value_seed<V: de::DeserializeSeed<'de>>(&mut self, seed: V) -> Result<V::Value> {
        seed.deserialize(&mut *self.de)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

struct EnumAccess<'de, 'a> {
    de: &'a mut FastDeserializer<'de>,
}

impl<'de, 'a> de::EnumAccess<'de> for EnumAccess<'de, 'a> {
    type Error = WireError;
    type Variant = VariantAccess<'de, 'a>;
    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant)> {
        let index = self.de.get_u64()?;
        let index = u32::try_from(index).map_err(|_| WireError::InvalidLength(index))?;
        let value = seed.deserialize(IntoDeserializer::<WireError>::into_deserializer(index))?;
        Ok((value, VariantAccess { de: self.de }))
    }
}

struct VariantAccess<'de, 'a> {
    de: &'a mut FastDeserializer<'de>,
}

impl<'de, 'a> de::VariantAccess<'de> for VariantAccess<'de, 'a> {
    type Error = WireError;
    fn unit_variant(self) -> Result<()> {
        Ok(())
    }
    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(self, seed: T) -> Result<T::Value> {
        seed.deserialize(self.de)
    }
    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value> {
        visitor.visit_seq(SeqAccess {
            de: self.de,
            left: len,
        })
    }
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_seq(SeqAccess {
            de: self.de,
            left: fields.len(),
        })
    }
}
