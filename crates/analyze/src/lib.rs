//! # charm-analyze — the workspace invariant linter
//!
//! A small, dependency-free static analyzer that enforces the repo's
//! correctness rules as CI-failing lints (DESIGN.md §6):
//!
//! * **`panic`** — no `unwrap()` / `expect()` / explicit `panic!` / slice
//!   or map indexing in the runtime hot paths
//!   (`crates/core/src/{pe,msg,ctx,proxy,reduction}.rs`) without an
//!   explicit justification annotation. Every panic that survives must
//!   document the invariant that makes it unreachable.
//! * **`payload-copy`** — `WireBytes` payloads are shared, never deep
//!   copied (DESIGN.md §5): `.to_vec()` / `.into_vec()` / `Vec::from(`
//!   inside `crates/core/src` and `crates/wire/src` non-test code must be
//!   annotated as a sanctioned decode/extraction site.
//! * **`unsafe`** — every crate root carries `#![forbid(unsafe_code)]`,
//!   or `#![deny(unsafe_code)]` plus an annotation naming why unsafe is
//!   genuinely needed.
//! * **`blocking`** — no `std::thread::sleep` or blocking `Mutex`/`RwLock`
//!   use inside entry-method execution paths (the scheduler files): entry
//!   methods are asynchronous and must never block the PE.
//! * **`nondeterminism`** — no `HashMap`/`HashSet` iteration-order
//!   dependence (`.keys()`, `.values()`, `.drain()`, …) and no wall-clock
//!   reads (`Instant::now` / `SystemTime::now`) in the
//!   scheduling-order-sensitive paths: the PE scheduler, the run drivers
//!   (including the Net driver), the model checker, the sim crate and the
//!   net crate.
//!   Anything that feeds message emission order or virtual time must be
//!   sorted/key-ordered or virtual; every surviving site documents why its
//!   order or time cannot leak into observable scheduling. (The scanner is
//!   token-based: `for _ in &hash_map` evades it — the rule catches the
//!   unambiguous accessor spellings, review catches the rest.)
//!
//! The workspace walk additionally audits annotations for staleness
//! (**`stale-allow`**): a well-formed `analyze: allow(..)` that no longer
//! suppresses anything is reported — as a warning by default, as a
//! CI-failing finding under `charm-analyze --workspace --strict`.
//!
//! ## Annotation syntax
//!
//! ```text
//! // analyze: allow(<rule>, "reason the invariant holds")
//! ```
//!
//! placed either at the end of the offending line or on a comment line
//! directly above it (a block of consecutive comment lines counts). The
//! reason string is mandatory — an allow without a reason is itself a
//! finding (`annotation`).
//!
//! The scanner is line/token based: comments and string literals are
//! masked out before pattern matching, so a `panic!` inside a string or a
//! doc comment never trips a lint. It does not type-check; the rules are
//! scoped to files where the patterns are unambiguous enough that a
//! heuristic match is a real finding or worth a one-line annotation.

#![forbid(unsafe_code)]

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The lint rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Panicking construct in a runtime hot path.
    Panic,
    /// Deep copy of a shared wire payload.
    PayloadCopy,
    /// Crate root missing `#![forbid(unsafe_code)]`.
    ForbidUnsafe,
    /// Blocking call inside entry-method execution paths.
    Blocking,
    /// Hash-order iteration or wall-clock read in a scheduling-order-
    /// sensitive path.
    Nondeterminism,
    /// Malformed or unknown `analyze: allow(..)` annotation.
    Annotation,
    /// Well-formed `analyze: allow(..)` that suppresses nothing (workspace
    /// audit only; a warning unless `--strict`).
    StaleAllow,
}

impl Rule {
    /// The key used in `analyze: allow(<key>, "...")` annotations.
    pub fn key(self) -> &'static str {
        match self {
            Rule::Panic => "panic",
            Rule::PayloadCopy => "payload-copy",
            Rule::ForbidUnsafe => "unsafe",
            Rule::Blocking => "blocking",
            Rule::Nondeterminism => "nondeterminism",
            Rule::Annotation => "annotation",
            Rule::StaleAllow => "stale-allow",
        }
    }

    /// All enforceable rules (excludes the meta `annotation` and
    /// `stale-allow` rules, which fire on the annotations themselves).
    pub fn all() -> [Rule; 5] {
        [
            Rule::Panic,
            Rule::PayloadCopy,
            Rule::ForbidUnsafe,
            Rule::Blocking,
            Rule::Nondeterminism,
        ]
    }

    /// One-line description, for `--list-rules`.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::Panic => {
                "no unwrap()/expect()/panic!/indexing in runtime hot paths without justification"
            }
            Rule::PayloadCopy => {
                "no .to_vec()/.into_vec()/Vec::from deep copies of wire payloads outside sanctioned sites"
            }
            Rule::ForbidUnsafe => {
                "every crate root carries #![forbid(unsafe_code)] (or deny + documented exception)"
            }
            Rule::Blocking => {
                "no thread::sleep or blocking Mutex/RwLock in entry-method execution paths"
            }
            Rule::Nondeterminism => {
                "no hash-order iteration or Instant/SystemTime::now() in scheduling-order-sensitive paths"
            }
            Rule::Annotation => "analyze: allow(..) annotations must be well-formed with a reason",
            Rule::StaleAllow => {
                "analyze: allow(..) annotations must suppress something (workspace audit; --strict)"
            }
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.key(),
            self.msg
        )
    }
}

/// Files subject to the `panic` rule (the runtime hot paths).
pub const PANIC_SCOPE: &[&str] = &[
    "crates/core/src/pe.rs",
    "crates/core/src/msg.rs",
    "crates/core/src/ctx.rs",
    "crates/core/src/proxy.rs",
    "crates/core/src/reduction.rs",
];

/// Directory prefixes subject to the `payload-copy` rule.
pub const COPY_SCOPE: &[&str] = &["crates/core/src/", "crates/wire/src/"];

/// Files subject to the `blocking` rule (entry-method execution paths; the
/// Net driver runs PE 0's scheduler loop in-process, so it counts).
pub const BLOCKING_SCOPE: &[&str] = &[
    "crates/core/src/pe.rs",
    "crates/core/src/msg.rs",
    "crates/core/src/ctx.rs",
    "crates/core/src/proxy.rs",
    "crates/core/src/reduction.rs",
    "crates/core/src/chare.rs",
    "crates/core/src/coro.rs",
    "crates/core/src/net.rs",
];

/// Directory prefixes subject to the `blocking` rule. The transport crate
/// *does* block by design (writer threads, heartbeats, backoff sleeps) —
/// scoping it forces every such site behind a reasoned `net-hook` allow,
/// so a blocking call can never sneak into the crate unexamined.
pub const BLOCKING_PREFIX: &[&str] = &["crates/net/src/"];

/// Files subject to the `nondeterminism` rule: everything whose control
/// flow decides message emission order or virtual time — the PE scheduler,
/// the backend drivers, the model checker's controlled driver.
pub const NONDET_SCOPE: &[&str] = &[
    "crates/core/src/pe.rs",
    "crates/core/src/runtime.rs",
    "crates/core/src/check.rs",
    "crates/core/src/net.rs",
];

/// Directory prefixes subject to the `nondeterminism` rule: the whole sim
/// crate (a virtual-time engine must never consult hash order or the host
/// clock) and the whole net crate (its wall-clock reads are legitimate but
/// each must carry a `net-hook` allow naming why the time never feeds
/// scheduling decisions visible to the deterministic backends).
pub const NONDET_PREFIX: &[&str] = &["crates/sim/src/", "crates/net/src/"];

/// A source line after lexical masking: `code` has comments and string
/// literals replaced by spaces (same length), `comment` holds the text of
/// any comment on the line.
#[derive(Debug, Default, Clone)]
struct MaskedLine {
    code: String,
    comment: String,
}

/// Lexical masking: walk the source once, routing characters into per-line
/// code and comment buffers. Strings (incl. raw strings and chars) are
/// blanked from the code buffer; comment text is collected separately so
/// annotations can be read without code patterns matching inside comments.
fn mask(src: &str) -> Vec<MaskedLine> {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let mut lines = vec![MaskedLine::default()];
    let mut st = St::Code;
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    macro_rules! cur {
        () => {
            lines.last_mut().expect("lines never empty")
        };
    }
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if st == St::LineComment {
                st = St::Code;
            }
            lines.push(MaskedLine::default());
            i += 1;
            continue;
        }
        match st {
            St::Code => {
                let next = chars.get(i + 1).copied().unwrap_or('\0');
                let prev_ident = i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
                if c == '/' && next == '/' {
                    st = St::LineComment;
                    cur!().code.push_str("  ");
                    i += 2;
                } else if c == '/' && next == '*' {
                    st = St::BlockComment(1);
                    cur!().code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    st = St::Str;
                    cur!().code.push(' ');
                    i += 1;
                } else if (c == 'r' || c == 'b') && !prev_ident {
                    // Possible raw/byte string start: r", r#", br", b"...
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    let is_raw =
                        (c == 'r' || (c == 'b' && j > i + 1)) && chars.get(j) == Some(&'"');
                    if is_raw {
                        for _ in i..=j {
                            cur!().code.push(' ');
                        }
                        st = St::RawStr(hashes);
                        i = j + 1;
                    } else if c == 'b' && chars.get(i + 1) == Some(&'"') {
                        cur!().code.push_str("  ");
                        st = St::Str;
                        i += 2;
                    } else {
                        cur!().code.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal vs lifetime: a literal is 'x' or '\..'.
                    let is_char = next == '\\' || (chars.get(i + 2) == Some(&'\'') && next != '\'');
                    if is_char {
                        st = St::Char;
                        cur!().code.push(' ');
                        i += 1;
                    } else {
                        cur!().code.push(c);
                        i += 1;
                    }
                } else {
                    cur!().code.push(c);
                    i += 1;
                }
            }
            St::LineComment => {
                cur!().comment.push(c);
                i += 1;
            }
            St::BlockComment(depth) => {
                let next = chars.get(i + 1).copied().unwrap_or('\0');
                if c == '*' && next == '/' {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == '*' {
                    st = St::BlockComment(depth + 1);
                    cur!().comment.push_str("  ");
                    i += 2;
                } else {
                    cur!().comment.push(c);
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    i += 2;
                } else if c == '"' {
                    st = St::Code;
                    cur!().code.push(' ');
                    i += 1;
                } else {
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if chars.get(i + 1 + k as usize) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        st = St::Code;
                        i += 1 + hashes as usize;
                        cur!().code.push(' ');
                        continue;
                    }
                }
                i += 1;
            }
            St::Char => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    st = St::Code;
                    cur!().code.push(' ');
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    lines
}

/// A parsed `analyze: allow(rule, "reason")` annotation.
struct Allow {
    rule: String,
    has_reason: bool,
}

/// Parse an annotation from one comment string. The annotation must be the
/// start of the comment text (`// analyze: allow(..)` — whether trailing a
/// code line or alone on its own line); this keeps prose and doc comments
/// that merely *mention* the syntax from parsing as annotations (doc
/// comment text begins with a third `/`, so it never matches).
fn parse_allows(comment: &str) -> Vec<Allow> {
    const NEEDLE: &str = "analyze: allow(";
    let Some(body) = comment.trim_start().strip_prefix(NEEDLE) else {
        return Vec::new();
    };
    let rule: String = body
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '-' || *c == '_')
        .collect();
    let after = &body[rule.len()..];
    // A reason is `, "non-empty"` right after the rule key.
    let has_reason = after
        .trim_start()
        .strip_prefix(',')
        .map(|s| {
            let s = s.trim_start();
            s.starts_with('"') && s.len() > 2 && !s.starts_with("\"\"")
        })
        .unwrap_or(false);
    vec![Allow { rule, has_reason }]
}

/// Whether line `idx` (0-based) is covered by an `allow(rule)` annotation:
/// on the same line, or on the block of pure-comment lines directly above.
/// Malformed annotations are reported into `out` (once, by the caller
/// scanning every line's comments — this helper only answers coverage).
/// A successful hit records the annotation's line in `used`, which feeds
/// the stale-allow audit.
fn allowed(
    lines: &[MaskedLine],
    idx: usize,
    rule: Rule,
    used: &mut std::collections::BTreeSet<usize>,
) -> bool {
    // Scheduler trace hooks may index/probe state the surrounding dispatch
    // already validated; `allow(trace-hook, "...")` is an umbrella key that
    // suppresses the panic and blocking rules for such instrumentation
    // lines without widening either rule's general budget.
    // `allow(recovery-hook, "...")` is the same umbrella for the
    // fault-tolerance paths (checkpoint encode, injected kills, restore
    // bootstrap), where a panic is either deliberate or pre-validated.
    // `allow(telemetry-hook, "...")` covers the in-band telemetry sweep
    // and metric-sampling paths (frame encode, sink dispatch), where the
    // same pre-validated indexing and deliberate-panic patterns recur.
    // `allow(net-hook, "...")` is the transport umbrella: it additionally
    // covers the nondeterminism rule, because the Net backend's sanctioned
    // sites are precisely blocking I/O *and* wall-clock reads (heartbeat
    // deadlines, backoff sleeps) that by design never reach the
    // deterministic schedulers.
    let umbrella = matches!(rule, Rule::Panic | Rule::Blocking);
    let net_umbrella = matches!(rule, Rule::Panic | Rule::Blocking | Rule::Nondeterminism);
    let hit = |l: &MaskedLine| {
        parse_allows(&l.comment).iter().any(|a| {
            a.has_reason
                && (a.rule == rule.key()
                    || (umbrella
                        && (a.rule == "trace-hook"
                            || a.rule == "recovery-hook"
                            || a.rule == "telemetry-hook"))
                    || (net_umbrella && a.rule == "net-hook"))
        })
    };
    if hit(&lines[idx]) {
        used.insert(idx);
        return true;
    }
    // Scan upward through pure-comment lines.
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let l = &lines[i];
        if !l.code.trim().is_empty() {
            return false; // a code line interrupts the comment block
        }
        if l.comment.trim().is_empty() {
            return false; // a blank line ends the comment block
        }
        if hit(l) {
            used.insert(i);
            return true;
        }
    }
    false
}

/// Report malformed/unknown annotations anywhere in the file.
fn check_annotations(path: &str, lines: &[MaskedLine], out: &mut Vec<Finding>) {
    let mut valid: Vec<&str> = Rule::all().iter().map(|r| r.key()).collect();
    valid.push("trace-hook");
    valid.push("recovery-hook");
    valid.push("telemetry-hook");
    valid.push("net-hook");
    for (i, l) in lines.iter().enumerate() {
        for a in parse_allows(&l.comment) {
            if !valid.contains(&a.rule.as_str()) {
                out.push(Finding {
                    file: path.to_string(),
                    line: i + 1,
                    rule: Rule::Annotation,
                    msg: format!(
                        "unknown rule `{}` in analyze: allow(..) — valid: {}",
                        a.rule,
                        valid.join(", ")
                    ),
                });
            } else if !a.has_reason {
                out.push(Finding {
                    file: path.to_string(),
                    line: i + 1,
                    rule: Rule::Annotation,
                    msg: format!(
                        "allow({}) without a reason — write analyze: allow({}, \"why the invariant holds\")",
                        a.rule, a.rule
                    ),
                });
            }
        }
    }
}

/// Positions of indexing expressions in a masked code line: a `[` directly
/// following an identifier character, `)` or `]` is an `Index`/`IndexMut`
/// call (or slice), which panics out of bounds. Attribute lines are skipped
/// (`#[..]` is not an expression).
fn has_indexing(code: &str) -> bool {
    let t = code.trim_start();
    if t.starts_with("#[") || t.starts_with("#![") {
        return false;
    }
    let chars: Vec<char> = code.chars().collect();
    for i in 1..chars.len() {
        if chars[i] == '[' {
            let p = chars[i - 1];
            if p.is_alphanumeric() || p == '_' || p == ')' || p == ']' {
                return true;
            }
        }
    }
    false
}

fn find_pattern(
    path: &str,
    lines: &[MaskedLine],
    rule: Rule,
    patterns: &[&str],
    what: &str,
    out: &mut Vec<Finding>,
    used: &mut std::collections::BTreeSet<usize>,
) {
    for (i, l) in lines.iter().enumerate() {
        for pat in patterns {
            if l.code.contains(pat) && !allowed(lines, i, rule, used) {
                out.push(Finding {
                    file: path.to_string(),
                    line: i + 1,
                    rule,
                    msg: format!(
                        "{what} `{}` — justify with `// analyze: allow({}, \"..\")` or rework",
                        pat.trim_end_matches('('),
                        rule.key()
                    ),
                });
                break; // one finding per line per rule
            }
        }
    }
}

/// Path-scoped source rules over pre-masked lines, recording which allow
/// annotations earned their keep in `used`.
fn scan_source(
    path: &str,
    lines: &[MaskedLine],
    out: &mut Vec<Finding>,
    used: &mut std::collections::BTreeSet<usize>,
) {
    check_annotations(path, lines, out);

    if PANIC_SCOPE.contains(&path) {
        find_pattern(
            path,
            lines,
            Rule::Panic,
            &[
                ".unwrap()",
                ".expect(",
                "panic!(",
                "unreachable!(",
                "todo!(",
                "unimplemented!(",
            ],
            "panicking construct in runtime hot path:",
            out,
            used,
        );
        for (i, l) in lines.iter().enumerate() {
            if has_indexing(&l.code) && !allowed(lines, i, Rule::Panic, used) {
                out.push(Finding {
                    file: path.to_string(),
                    line: i + 1,
                    rule: Rule::Panic,
                    msg: "indexing expression in runtime hot path (panics out of bounds / on \
                          missing key) — justify with `// analyze: allow(panic, \"..\")` or use get()"
                        .to_string(),
                });
            }
        }
    }

    if COPY_SCOPE.iter().any(|p| path.starts_with(p)) {
        // Test modules sit at file end by repo convention; everything after
        // a `#[cfg(test)]` line is test code and exempt (tests may copy
        // buffers to build fixtures).
        let cut = lines
            .iter()
            .position(|l| l.code.trim() == "#[cfg(test)]")
            .unwrap_or(lines.len());
        find_pattern(
            path,
            &lines[..cut],
            Rule::PayloadCopy,
            &[".to_vec()", ".into_vec()", "Vec::from("],
            "deep copy of a byte buffer in payload-handling code:",
            out,
            used,
        );
    }

    if BLOCKING_SCOPE.contains(&path) || BLOCKING_PREFIX.iter().any(|p| path.starts_with(p)) {
        find_pattern(
            path,
            lines,
            Rule::Blocking,
            &[
                "thread::sleep",
                "Mutex<",
                "Mutex::new",
                "RwLock<",
                ".lock()",
            ],
            "blocking construct in entry-method execution path:",
            out,
            used,
        );
    }

    if NONDET_SCOPE.contains(&path) || NONDET_PREFIX.iter().any(|p| path.starts_with(p)) {
        // Same end-of-file test-module exemption as payload-copy: tests may
        // read the wall clock and iterate hash maps freely.
        let cut = lines
            .iter()
            .position(|l| l.code.trim() == "#[cfg(test)]")
            .unwrap_or(lines.len());
        find_pattern(
            path,
            &lines[..cut],
            Rule::Nondeterminism,
            &[
                ".keys()",
                ".into_keys()",
                ".values()",
                ".values_mut()",
                ".into_values()",
                ".drain()",
                "Instant::now(",
                "SystemTime::now(",
            ],
            "hash-order iteration or wall-clock read in a scheduling-order-sensitive path:",
            out,
            used,
        );
    }
}

/// Apply all path-scoped rules to one source file. `path` must be
/// workspace-relative with forward slashes. (No stale-allow audit — that
/// needs the crate-root rule's usage too; see [`lint_file`].)
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    let lines = mask(src);
    let mut out = Vec::new();
    let mut used = std::collections::BTreeSet::new();
    scan_source(path, &lines, &mut out, &mut used);
    out
}

/// The unsafe-code policy over pre-masked lines (see [`lint_crate_root`]).
fn scan_crate_root(
    path: &str,
    lines: &[MaskedLine],
    out: &mut Vec<Finding>,
    used: &mut std::collections::BTreeSet<usize>,
) {
    let mut forbid = false;
    let mut deny_line = None;
    for (i, l) in lines.iter().enumerate() {
        let code: String = l.code.split_whitespace().collect::<Vec<_>>().join("");
        if code.contains("#![forbid(unsafe_code)]") {
            forbid = true;
        }
        if code.contains("#![deny(unsafe_code)]") {
            deny_line = Some(i);
        }
    }
    match (forbid, deny_line) {
        (true, _) => {}
        (false, Some(i)) => {
            if !allowed(lines, i, Rule::ForbidUnsafe, used) {
                out.push(Finding {
                    file: path.to_string(),
                    line: i + 1,
                    rule: Rule::ForbidUnsafe,
                    msg: "deny(unsafe_code) without a documented exception — add \
                          `// analyze: allow(unsafe, \"why unsafe is needed here\")`"
                        .to_string(),
                });
            }
        }
        (false, None) => {
            out.push(Finding {
                file: path.to_string(),
                line: 1,
                rule: Rule::ForbidUnsafe,
                msg: "crate root lacks #![forbid(unsafe_code)] (or deny + documented exception)"
                    .to_string(),
            });
        }
    }
}

/// Check one crate root for the unsafe-code policy: `#![forbid(unsafe_code)]`
/// passes; `#![deny(unsafe_code)]` passes only with an
/// `analyze: allow(unsafe, "..")` annotation nearby (same or preceding
/// comment lines); anything else is a finding.
pub fn lint_crate_root(path: &str, src: &str) -> Vec<Finding> {
    let lines = mask(src);
    let mut out = Vec::new();
    let mut used = std::collections::BTreeSet::new();
    scan_crate_root(path, &lines, &mut out, &mut used);
    out
}

/// Lint one file completely: source rules, the crate-root rule when the
/// file is a crate root, and the stale-allow audit — a well-formed,
/// reasoned annotation that suppressed nothing across *all* rules is dead
/// weight and gets a [`Rule::StaleAllow`] finding. (Malformed annotations
/// already fire [`Rule::Annotation`] and are not double-reported.)
pub fn lint_file(path: &str, src: &str, is_crate_root: bool) -> Vec<Finding> {
    let lines = mask(src);
    let mut out = Vec::new();
    let mut used = std::collections::BTreeSet::new();
    scan_source(path, &lines, &mut out, &mut used);
    if is_crate_root {
        scan_crate_root(path, &lines, &mut out, &mut used);
    }
    let mut valid: Vec<&str> = Rule::all().iter().map(|r| r.key()).collect();
    valid.push("trace-hook");
    valid.push("recovery-hook");
    valid.push("telemetry-hook");
    valid.push("net-hook");
    for (i, l) in lines.iter().enumerate() {
        for a in parse_allows(&l.comment) {
            if a.has_reason && valid.contains(&a.rule.as_str()) && !used.contains(&i) {
                out.push(Finding {
                    file: path.to_string(),
                    line: i + 1,
                    rule: Rule::StaleAllow,
                    msg: format!(
                        "allow({}) suppresses nothing — the pattern is gone, the file is out of \
                         the rule's scope, or the annotation drifted from the offending line; \
                         remove it or move it back",
                        a.rule
                    ),
                });
            }
        }
    }
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let p = entry.path();
        if p.is_dir() {
            // target/ never lives under src/, but be safe
            if p.file_name().map(|n| n == "target").unwrap_or(false) {
                continue;
            }
            walk(&p, out)?;
        } else if p.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(p);
        }
    }
    Ok(())
}

fn rel(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Lint the whole workspace rooted at `root` (the directory holding the
/// workspace `Cargo.toml`). Every source file gets the path-scoped rules
/// plus the stale-allow audit; crate roots (lib.rs, or main.rs for
/// bin-only crates) additionally get the unsafe-code policy.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();

    // Every source under crates/*/src and src/.
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                walk(&src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk(&root_src, &mut files)?;
    }
    files.sort();

    // Crate roots: lib.rs (or main.rs for bin-only crates) of every
    // workspace member plus the umbrella crate.
    let mut roots = Vec::new();
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let dir = entry?.path();
            if !dir.is_dir() {
                continue;
            }
            let lib = dir.join("src/lib.rs");
            let main = dir.join("src/main.rs");
            if lib.is_file() {
                roots.push(lib);
            } else if main.is_file() {
                roots.push(main);
            }
        }
    }
    if root_src.join("lib.rs").is_file() {
        roots.push(root_src.join("lib.rs"));
    }

    for f in &files {
        let content = fs::read_to_string(f)?;
        findings.extend(lint_file(&rel(root, f), &content, roots.contains(f)));
    }

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

// ---------------------------------------------------------------------------
// Self-test corpus: one synthetic violation per rule, linted in memory.
// ---------------------------------------------------------------------------

/// Synthetic sources, each seeded with exactly one violation of one rule.
/// Returns `(rule, label, source)` triples; `label` selects the rule scope.
pub fn self_test_corpus() -> Vec<(Rule, &'static str, &'static str)> {
    vec![
        (
            Rule::Panic,
            "crates/core/src/pe.rs",
            "fn hot(map: &std::collections::HashMap<u32, u32>) -> u32 {\n    *map.get(&0).unwrap()\n}\n",
        ),
        (
            Rule::Panic,
            "crates/core/src/msg.rs",
            "fn idx(v: &[u8]) -> u8 {\n    v[3]\n}\n",
        ),
        (
            Rule::PayloadCopy,
            "crates/core/src/pe.rs",
            "fn copy(bytes: &charm_wire::WireBytes) -> Vec<u8> {\n    bytes.to_vec()\n}\n",
        ),
        (
            Rule::ForbidUnsafe,
            "crates/fake/src/lib.rs",
            "//! A crate that forgot the unsafe policy.\npub fn f() {}\n",
        ),
        (
            Rule::Blocking,
            "crates/core/src/ctx.rs",
            "fn nap() {\n    std::thread::sleep(std::time::Duration::from_millis(1));\n}\n",
        ),
        (
            Rule::Nondeterminism,
            "crates/core/src/runtime.rs",
            "fn order(m: &std::collections::HashMap<u32, u32>) -> Vec<u32> {\n    m.keys().copied().collect()\n}\n",
        ),
        (
            Rule::Nondeterminism,
            "crates/sim/src/queue.rs",
            "fn stamp() -> std::time::Instant {\n    std::time::Instant::now()\n}\n",
        ),
    ]
}

/// Run the linter over the synthetic corpus. Returns `Ok(findings)` when
/// every seeded violation was detected (the expected outcome — the caller
/// exits nonzero, as a real violating tree would), or `Err(missed)` naming
/// rules the linter failed to catch.
pub fn self_test() -> Result<Vec<Finding>, Vec<Rule>> {
    let mut all = Vec::new();
    let mut missed = Vec::new();
    for (rule, label, src) in self_test_corpus() {
        let found = if rule == Rule::ForbidUnsafe {
            lint_crate_root(label, src)
        } else {
            lint_source(label, src)
        };
        if !found.iter().any(|f| f.rule == rule) {
            missed.push(rule);
        }
        all.extend(found);
    }
    // Over-firing guard: an annotated site must pass clean.
    let annotated = "fn hot(v: &[u8]) -> u8 {\n    // analyze: allow(panic, \"caller bounds-checks\")\n    v[0]\n}\n";
    if lint_source("crates/core/src/pe.rs", annotated)
        .iter()
        .any(|f| f.rule == Rule::Panic)
    {
        missed.push(Rule::Annotation);
    }
    // The trace-hook umbrella must also suppress panic-rule hits on
    // instrumentation lines.
    let hooked = "fn hot(v: &[u8]) -> u8 {\n    // analyze: allow(trace-hook, \"depth probe; the slot was validated by the dispatch above\")\n    v[0]\n}\n";
    if lint_source("crates/core/src/pe.rs", hooked)
        .iter()
        .any(|f| f.rule == Rule::Panic)
    {
        missed.push(Rule::Annotation);
    }
    // Likewise the recovery-hook umbrella for the fault-tolerance paths.
    let recovery = "fn die() {\n    // analyze: allow(recovery-hook, \"injected PE failure the supervisor catches\")\n    panic!(\"boom\");\n}\n";
    if lint_source("crates/core/src/pe.rs", recovery)
        .iter()
        .any(|f| f.rule == Rule::Panic)
    {
        missed.push(Rule::Annotation);
    }
    // And the telemetry-hook umbrella for the metric-sampling paths.
    let sampled = "fn sample(v: &[u8]) -> u8 {\n    // analyze: allow(telemetry-hook, \"frame encode of a value the sampler just built\")\n    v[0]\n}\n";
    if lint_source("crates/core/src/pe.rs", sampled)
        .iter()
        .any(|f| f.rule == Rule::Panic)
    {
        missed.push(Rule::Annotation);
    }
    // The net-hook umbrella must cover blocking I/O *and* wall-clock reads
    // in the transport crate — but never a non-umbrella rule elsewhere.
    let netted = "fn beat() {\n    // analyze: allow(net-hook, \"heartbeat cadence: wall-clock sleep on a supervision thread\")\n    std::thread::sleep(d());\n    // analyze: allow(net-hook, \"deadline arithmetic for the same heartbeat\")\n    let _ = std::time::Instant::now();\n}\n";
    if lint_source("crates/net/src/peer.rs", netted)
        .iter()
        .any(|f| matches!(f.rule, Rule::Blocking | Rule::Nondeterminism))
    {
        missed.push(Rule::Annotation);
    }
    // Stale-allow audit: a dead annotation must be flagged by the full
    // file lint, a load-bearing one must not.
    let stale = "// analyze: allow(panic, \"there is no panic here any more\")\nfn fine() {}\n";
    if !lint_file("crates/core/src/pe.rs", stale, false)
        .iter()
        .any(|f| f.rule == Rule::StaleAllow)
    {
        missed.push(Rule::StaleAllow);
    }
    let live = "fn hot(v: &[u8]) -> u8 {\n    // analyze: allow(panic, \"caller bounds-checks\")\n    v[0]\n}\n";
    if lint_file("crates/core/src/pe.rs", live, false)
        .iter()
        .any(|f| f.rule == Rule::StaleAllow)
    {
        missed.push(Rule::StaleAllow);
    }
    if missed.is_empty() {
        Ok(all)
    } else {
        Err(missed)
    }
}
