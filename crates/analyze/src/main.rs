//! `charm-analyze` CLI.
//!
//! ```text
//! charm-analyze --workspace [--root <path>]   lint the workspace tree
//! charm-analyze --self-test                   seed synthetic violations
//! charm-analyze --list-rules                  print the rule table
//! ```
//!
//! Exit codes: 0 = clean, 1 = findings (for `--self-test`: every seeded
//! violation was detected, i.e. the linter works — CI asserts exactly 1),
//! 2 = usage/io error, or a self-test in which the linter *missed* a rule.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use charm_analyze::{lint_workspace, self_test, Rule};

fn usage() -> ExitCode {
    eprintln!("usage: charm-analyze --workspace [--root <path>] | --self-test | --list-rules");
    ExitCode::from(2)
}

/// Locate the workspace root: `--root` wins; else the manifest dir baked in
/// at compile time (two levels up from crates/analyze); else the cwd.
fn find_root(explicit: Option<PathBuf>) -> PathBuf {
    if let Some(r) = explicit {
        return r;
    }
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    if let Some(ws) = manifest.parent().and_then(|p| p.parent()) {
        if ws.join("Cargo.toml").is_file() {
            return ws.to_path_buf();
        }
    }
    PathBuf::from(".")
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut mode = None;
    let mut root = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workspace" => mode = Some("workspace"),
            "--self-test" => mode = Some("self-test"),
            "--list-rules" => mode = Some("list-rules"),
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    match mode {
        Some("list-rules") => {
            for r in Rule::all() {
                println!("{:<14} {}", r.key(), r.describe());
            }
            println!(
                "{:<14} {}",
                "trace-hook",
                "allow-key for scheduler trace instrumentation: suppresses panic + blocking on the annotated line"
            );
            ExitCode::SUCCESS
        }
        Some("self-test") => match self_test() {
            Ok(findings) => {
                println!(
                    "self-test: all {} rules detected their seeded violations ({} findings):",
                    Rule::all().len(),
                    findings.len()
                );
                for f in &findings {
                    println!("  {f}");
                }
                // Nonzero by design: a tree with these violations must fail.
                ExitCode::from(1)
            }
            Err(missed) => {
                eprintln!(
                    "self-test FAILED: linter missed rule(s): {}",
                    missed
                        .iter()
                        .map(|r| r.key())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                ExitCode::from(2)
            }
        },
        Some("workspace") => {
            let root = find_root(root);
            match lint_workspace(&root) {
                Ok(findings) if findings.is_empty() => {
                    println!("charm-analyze: workspace clean ({})", root.display());
                    ExitCode::SUCCESS
                }
                Ok(findings) => {
                    eprintln!("charm-analyze: {} finding(s):", findings.len());
                    for f in &findings {
                        eprintln!("  {f}");
                    }
                    ExitCode::from(1)
                }
                Err(e) => {
                    eprintln!("charm-analyze: io error walking {}: {e}", root.display());
                    ExitCode::from(2)
                }
            }
        }
        _ => usage(),
    }
}
