//! `charm-analyze` CLI.
//!
//! ```text
//! charm-analyze --workspace [--root <path>] [--strict]   lint the tree
//! charm-analyze --self-test                              seed synthetic violations
//! charm-analyze --list-rules                             print the rule table
//! ```
//!
//! Stale `analyze: allow(..)` annotations (well-formed but suppressing
//! nothing) print as warnings; `--strict` promotes them to findings.
//!
//! Exit codes: 0 = clean, 1 = findings (for `--self-test`: every seeded
//! violation was detected, i.e. the linter works — CI asserts exactly 1),
//! 2 = usage/io error, or a self-test in which the linter *missed* a rule.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use charm_analyze::{lint_workspace, self_test, Rule};

fn usage() -> ExitCode {
    eprintln!(
        "usage: charm-analyze --workspace [--root <path>] [--strict] | --self-test | --list-rules"
    );
    ExitCode::from(2)
}

/// Locate the workspace root: `--root` wins; else the manifest dir baked in
/// at compile time (two levels up from crates/analyze); else the cwd.
fn find_root(explicit: Option<PathBuf>) -> PathBuf {
    if let Some(r) = explicit {
        return r;
    }
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    if let Some(ws) = manifest.parent().and_then(|p| p.parent()) {
        if ws.join("Cargo.toml").is_file() {
            return ws.to_path_buf();
        }
    }
    PathBuf::from(".")
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut mode = None;
    let mut root = None;
    let mut strict = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workspace" => mode = Some("workspace"),
            "--self-test" => mode = Some("self-test"),
            "--list-rules" => mode = Some("list-rules"),
            "--strict" => strict = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    match mode {
        Some("list-rules") => {
            for r in Rule::all() {
                println!("{:<14} {}", r.key(), r.describe());
            }
            println!(
                "{:<14} {}",
                "trace-hook",
                "allow-key for scheduler trace instrumentation: suppresses panic + blocking on the annotated line"
            );
            println!(
                "{:<14} {}",
                "recovery-hook",
                "allow-key for fault-tolerance paths: suppresses panic + blocking on the annotated line"
            );
            println!(
                "{:<14} {}",
                "telemetry-hook",
                "allow-key for in-band telemetry sweep paths: suppresses panic + blocking on the annotated line"
            );
            println!(
                "{:<14} {}",
                "net-hook",
                "allow-key for the net transport: suppresses panic + blocking + nondeterminism on the annotated line"
            );
            println!(
                "{:<14} {}",
                "stale-allow",
                "audit: allow(..) annotations that suppress nothing (warning; finding under --strict)"
            );
            ExitCode::SUCCESS
        }
        Some("self-test") => match self_test() {
            Ok(findings) => {
                println!(
                    "self-test: all {} rules detected their seeded violations ({} findings):",
                    Rule::all().len(),
                    findings.len()
                );
                for f in &findings {
                    println!("  {f}");
                }
                // Nonzero by design: a tree with these violations must fail.
                ExitCode::from(1)
            }
            Err(missed) => {
                eprintln!(
                    "self-test FAILED: linter missed rule(s): {}",
                    missed
                        .iter()
                        .map(|r| r.key())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                ExitCode::from(2)
            }
        },
        Some("workspace") => {
            let root = find_root(root);
            match lint_workspace(&root) {
                Ok(findings) => {
                    // Stale allows are advisory unless --strict promotes them.
                    let (stale, errors): (Vec<_>, Vec<_>) = findings
                        .into_iter()
                        .partition(|f| f.rule == Rule::StaleAllow);
                    if !stale.is_empty() && !strict {
                        eprintln!(
                            "charm-analyze: {} stale allow(s) (warnings; --strict fails on them):",
                            stale.len()
                        );
                        for f in &stale {
                            eprintln!("  {f}");
                        }
                    }
                    let mut fatal: Vec<_> = if strict {
                        errors.into_iter().chain(stale).collect()
                    } else {
                        errors
                    };
                    fatal.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
                    if fatal.is_empty() {
                        println!("charm-analyze: workspace clean ({})", root.display());
                        ExitCode::SUCCESS
                    } else {
                        eprintln!("charm-analyze: {} finding(s):", fatal.len());
                        for f in &fatal {
                            eprintln!("  {f}");
                        }
                        ExitCode::from(1)
                    }
                }
                Err(e) => {
                    eprintln!("charm-analyze: io error walking {}: {e}", root.display());
                    ExitCode::from(2)
                }
            }
        }
        _ => usage(),
    }
}
