//! Unit coverage for the lint engine: masking, annotations, each rule's
//! positive and negative cases, and the in-memory self-test corpus.

use charm_analyze::{lint_crate_root, lint_file, lint_source, self_test, Rule};

const HOT: &str = "crates/core/src/pe.rs";

fn rules(findings: &[charm_analyze::Finding]) -> Vec<Rule> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn unwrap_in_hot_path_fires() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    assert!(rules(&lint_source(HOT, src)).contains(&Rule::Panic));
}

#[test]
fn unwrap_outside_scope_is_ignored() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    assert!(lint_source("crates/apps/src/lib.rs", src).is_empty());
}

#[test]
fn annotation_on_same_line_suppresses() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // analyze: allow(panic, \"checked by caller\")\n}\n";
    assert!(!rules(&lint_source(HOT, src)).contains(&Rule::Panic));
}

#[test]
fn annotation_on_line_above_suppresses() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    // analyze: allow(panic, \"checked by caller\")\n    x.unwrap()\n}\n";
    assert!(!rules(&lint_source(HOT, src)).contains(&Rule::Panic));
}

#[test]
fn annotation_without_reason_is_a_finding_and_does_not_suppress() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // analyze: allow(panic)\n}\n";
    let got = rules(&lint_source(HOT, src));
    assert!(got.contains(&Rule::Panic));
    assert!(got.contains(&Rule::Annotation));
}

#[test]
fn unknown_rule_annotation_is_a_finding() {
    let src = "// analyze: allow(bogus, \"reason\")\nfn f() {}\n";
    assert!(rules(&lint_source(HOT, src)).contains(&Rule::Annotation));
}

#[test]
fn panic_inside_string_or_comment_is_masked() {
    let src = concat!(
        "fn f() {\n",
        "    let s = \"do not .unwrap() here\";\n",
        "    // a comment mentioning panic!( and v[0]\n",
        "    /* block with .expect( inside */\n",
        "    let _ = s;\n",
        "}\n"
    );
    assert!(lint_source(HOT, src).is_empty());
}

#[test]
fn raw_string_is_masked() {
    let src = "fn f() -> &'static str {\n    r#\"x.unwrap() v[0]\"#\n}\n";
    assert!(lint_source(HOT, src).is_empty());
}

#[test]
fn indexing_fires_but_attributes_and_macros_do_not() {
    let bad = "fn f(v: &[u8]) -> u8 {\n    v[0]\n}\n";
    assert!(rules(&lint_source(HOT, bad)).contains(&Rule::Panic));
    let ok = "#[derive(Clone)]\nstruct S;\nfn g() -> Vec<u8> {\n    vec![1, 2]\n}\n";
    assert!(lint_source(HOT, ok).is_empty());
}

#[test]
fn lifetime_is_not_a_char_literal() {
    // A lifetime after `'` must not put the lexer into char-literal state
    // and swallow the rest of the line.
    let src = "fn f<'a>(v: &'a [u8]) -> &'a u8 {\n    &v[0]\n}\n";
    assert!(rules(&lint_source(HOT, src)).contains(&Rule::Panic));
}

#[test]
fn payload_copy_fires_in_core_and_wire_only() {
    let src = "fn f(v: &[u8]) -> Vec<u8> {\n    v.to_vec()\n}\n";
    assert!(rules(&lint_source("crates/core/src/msg.rs", src)).contains(&Rule::PayloadCopy));
    assert!(rules(&lint_source("crates/wire/src/buffer.rs", src)).contains(&Rule::PayloadCopy));
    assert!(lint_source("crates/lb/src/lib.rs", src).is_empty());
}

#[test]
fn payload_copy_exempts_test_modules() {
    let src = concat!(
        "fn prod(v: &[u8]) -> usize { v.len() }\n",
        "#[cfg(test)]\n",
        "mod tests {\n",
        "    fn fixture(v: &[u8]) -> Vec<u8> { v.to_vec() }\n",
        "}\n"
    );
    assert!(lint_source("crates/wire/src/buffer.rs", src).is_empty());
}

#[test]
fn blocking_fires_on_sleep_and_mutex() {
    let sleep = "fn f() {\n    std::thread::sleep(std::time::Duration::from_millis(1));\n}\n";
    assert!(rules(&lint_source("crates/core/src/ctx.rs", sleep)).contains(&Rule::Blocking));
    let mutex = "use std::sync::Mutex;\nstruct S {\n    m: Mutex<u32>,\n}\n";
    assert!(rules(&lint_source("crates/core/src/pe.rs", mutex)).contains(&Rule::Blocking));
}

#[test]
fn crate_root_policy() {
    let forbid = "#![forbid(unsafe_code)]\npub fn f() {}\n";
    assert!(lint_crate_root("crates/x/src/lib.rs", forbid).is_empty());

    let nothing = "pub fn f() {}\n";
    assert!(rules(&lint_crate_root("crates/x/src/lib.rs", nothing)).contains(&Rule::ForbidUnsafe));

    let bare_deny = "#![deny(unsafe_code)]\npub fn f() {}\n";
    assert!(rules(&lint_crate_root("crates/x/src/lib.rs", bare_deny)).contains(&Rule::ForbidUnsafe));

    let deny_doc = "// analyze: allow(unsafe, \"FFI shim for page-locked buffers\")\n#![deny(unsafe_code)]\npub fn f() {}\n";
    assert!(lint_crate_root("crates/x/src/lib.rs", deny_doc).is_empty());
}

#[test]
fn trace_hook_suppresses_panic_and_blocking() {
    let idx = "fn f(v: &[u8]) -> u8 {\n    // analyze: allow(trace-hook, \"depth probe; dispatch validated the slot\")\n    v[0]\n}\n";
    assert!(!rules(&lint_source(HOT, idx)).contains(&Rule::Panic));
    let sleep = "fn f() {\n    // analyze: allow(trace-hook, \"clock read may park briefly on this platform\")\n    std::thread::sleep(std::time::Duration::from_millis(1));\n}\n";
    assert!(!rules(&lint_source(HOT, sleep)).contains(&Rule::Blocking));
}

#[test]
fn trace_hook_is_a_known_key_but_needs_a_reason() {
    // Recognized key: no unknown-rule finding...
    let with_reason = "// analyze: allow(trace-hook, \"why\")\nfn f() {}\n";
    assert!(lint_source(HOT, with_reason).is_empty());
    // ...but a reason is still mandatory.
    let bare = "fn f(v: &[u8]) -> u8 {\n    v[0] // analyze: allow(trace-hook)\n}\n";
    let got = rules(&lint_source(HOT, bare));
    assert!(got.contains(&Rule::Annotation));
    assert!(got.contains(&Rule::Panic));
}

#[test]
fn trace_hook_does_not_suppress_payload_copy() {
    let src = "fn f(b: &WireBytes) -> Vec<u8> {\n    // analyze: allow(trace-hook, \"not a trace hook at all\")\n    b.to_vec()\n}\n";
    assert!(rules(&lint_source("crates/wire/src/buffer.rs", src)).contains(&Rule::PayloadCopy));
}

#[test]
fn recovery_hook_suppresses_panic_and_blocking() {
    let kill = "fn f() {\n    // analyze: allow(recovery-hook, \"injected PE failure the restart supervisor catches\")\n    panic!(\"injected PE failure\");\n}\n";
    assert!(!rules(&lint_source(HOT, kill)).contains(&Rule::Panic));
    let sleep = "fn f() {\n    // analyze: allow(recovery-hook, \"grace wait for straggler PEs to report salvage\")\n    std::thread::sleep(std::time::Duration::from_millis(1));\n}\n";
    assert!(!rules(&lint_source(HOT, sleep)).contains(&Rule::Blocking));
}

#[test]
fn recovery_hook_is_a_known_key_but_needs_a_reason() {
    let with_reason = "// analyze: allow(recovery-hook, \"why\")\nfn f() {}\n";
    assert!(lint_source(HOT, with_reason).is_empty());
    let bare = "fn f() {\n    panic!(\"x\"); // analyze: allow(recovery-hook)\n}\n";
    let got = rules(&lint_source(HOT, bare));
    assert!(got.contains(&Rule::Annotation));
    assert!(got.contains(&Rule::Panic));
}

#[test]
fn recovery_hook_does_not_suppress_payload_copy() {
    let src = "fn f(b: &WireBytes) -> Vec<u8> {\n    // analyze: allow(recovery-hook, \"not a recovery path at all\")\n    b.to_vec()\n}\n";
    assert!(rules(&lint_source("crates/wire/src/buffer.rs", src)).contains(&Rule::PayloadCopy));
}

#[test]
fn telemetry_hook_suppresses_panic_and_blocking() {
    let idx = "fn f(v: &[u8]) -> u8 {\n    // analyze: allow(telemetry-hook, \"frame encode of a value the sampler just built\")\n    v[0]\n}\n";
    assert!(!rules(&lint_source(HOT, idx)).contains(&Rule::Panic));
    let sleep = "fn f() {\n    // analyze: allow(telemetry-hook, \"sink flush may park briefly on this platform\")\n    std::thread::sleep(std::time::Duration::from_millis(1));\n}\n";
    assert!(!rules(&lint_source(HOT, sleep)).contains(&Rule::Blocking));
}

#[test]
fn telemetry_hook_is_a_known_key_but_needs_a_reason() {
    let with_reason = "// analyze: allow(telemetry-hook, \"why\")\nfn f() {}\n";
    assert!(lint_source(HOT, with_reason).is_empty());
    let bare = "fn f(v: &[u8]) -> u8 {\n    v[0] // analyze: allow(telemetry-hook)\n}\n";
    let got = rules(&lint_source(HOT, bare));
    assert!(got.contains(&Rule::Annotation));
    assert!(got.contains(&Rule::Panic));
}

#[test]
fn telemetry_hook_does_not_suppress_payload_copy() {
    let src = "fn f(b: &WireBytes) -> Vec<u8> {\n    // analyze: allow(telemetry-hook, \"not a telemetry path at all\")\n    b.to_vec()\n}\n";
    assert!(rules(&lint_source("crates/wire/src/buffer.rs", src)).contains(&Rule::PayloadCopy));
}

#[test]
fn net_hook_suppresses_blocking_and_nondeterminism_in_net_scope() {
    // The transport crate and the core Net driver are in the blocking and
    // nondeterminism scopes; one net-hook allow covers either rule.
    let sleep = "fn beat() {\n    // analyze: allow(net-hook, \"heartbeat cadence sleep on a supervision thread\")\n    std::thread::sleep(std::time::Duration::from_millis(1));\n}\n";
    assert!(lint_source("crates/net/src/peer.rs", sleep).is_empty());
    let clock = "fn deadline() -> std::time::Instant {\n    // analyze: allow(net-hook, \"transport deadlines are wall-clock by definition\")\n    std::time::Instant::now()\n}\n";
    assert!(lint_source("crates/core/src/net.rs", clock).is_empty());
}

#[test]
fn net_scope_fires_without_annotation() {
    // Unannotated blocking I/O in the transport crate is a finding, as is
    // an unannotated wall-clock read (Instant or SystemTime) in the core
    // Net driver.
    let mutex = "use std::sync::Mutex;\nstruct S {\n    m: Mutex<u32>,\n}\n";
    assert!(rules(&lint_source("crates/net/src/node.rs", mutex)).contains(&Rule::Blocking));
    let clock = "fn nonce() -> u64 {\n    std::time::SystemTime::now();\n    0\n}\n";
    assert!(rules(&lint_source("crates/core/src/net.rs", clock)).contains(&Rule::Nondeterminism));
}

#[test]
fn net_hook_does_not_suppress_payload_copy_or_leak_scope() {
    // The umbrella covers panic/blocking/nondeterminism only...
    let copy = "fn f(b: &WireBytes) -> Vec<u8> {\n    // analyze: allow(net-hook, \"not a transport path at all\")\n    b.to_vec()\n}\n";
    assert!(rules(&lint_source("crates/wire/src/buffer.rs", copy)).contains(&Rule::PayloadCopy));
    // ...and a reason is still mandatory.
    let bare = "fn f() {\n    std::thread::sleep(d()); // analyze: allow(net-hook)\n}\n";
    let got = rules(&lint_source("crates/net/src/peer.rs", bare));
    assert!(got.contains(&Rule::Annotation));
    assert!(got.contains(&Rule::Blocking));
}

#[test]
fn nondeterminism_fires_on_hash_iteration_in_scope() {
    let src = "fn order(m: &std::collections::HashMap<u32, u32>) -> Vec<u32> {\n    m.keys().copied().collect()\n}\n";
    assert!(rules(&lint_source(HOT, src)).contains(&Rule::Nondeterminism));
    assert!(rules(&lint_source("crates/sim/src/queue.rs", src)).contains(&Rule::Nondeterminism));
}

#[test]
fn nondeterminism_fires_on_wall_clock_in_scope() {
    let src = "fn stamp() -> std::time::Instant {\n    std::time::Instant::now()\n}\n";
    assert!(rules(&lint_source(HOT, src)).contains(&Rule::Nondeterminism));
}

#[test]
fn nondeterminism_outside_scope_is_ignored() {
    let src = "fn order(m: &std::collections::HashMap<u32, u32>) -> Vec<u32> {\n    m.keys().copied().collect()\n}\n";
    assert!(lint_source("crates/apps/src/lib.rs", src).is_empty());
}

#[test]
fn nondeterminism_exempts_test_modules() {
    let src = concat!(
        "fn prod() {}\n",
        "#[cfg(test)]\n",
        "mod tests {\n",
        "    fn t(m: &std::collections::HashMap<u32, u32>) -> usize { m.keys().count() }\n",
        "}\n"
    );
    assert!(lint_source(HOT, src).is_empty());
}

#[test]
fn nondeterminism_allow_suppresses() {
    let src = "fn order(m: &std::collections::HashMap<u32, u32>) -> Vec<u32> {\n    // analyze: allow(nondeterminism, \"hash order erased by the sort below\")\n    let mut v: Vec<u32> = m.keys().copied().collect();\n    v.sort_unstable();\n    v\n}\n";
    assert!(lint_source(HOT, src).is_empty());
}

#[test]
fn vec_drain_with_range_does_not_fire() {
    // Vec::drain takes a range; only the argless map/set form is flagged.
    let src = "fn f(v: &mut Vec<u8>) -> Vec<u8> {\n    v.drain(..).collect()\n}\n";
    assert!(lint_source(HOT, src).is_empty());
}

#[test]
fn stale_allow_is_flagged_by_lint_file() {
    // Well-formed, reasoned, known key — but nothing on the line (or below)
    // for it to suppress.
    let src = "// analyze: allow(panic, \"stale: the unwrap was refactored away\")\nfn f() -> u32 {\n    1\n}\n";
    let got = lint_file(HOT, src, false);
    assert!(rules(&got).contains(&Rule::StaleAllow));
}

#[test]
fn used_allow_is_not_stale() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    // analyze: allow(panic, \"checked by caller\")\n    x.unwrap()\n}\n";
    let got = lint_file(HOT, src, false);
    assert!(got.is_empty());
}

#[test]
fn stale_allow_out_of_rule_scope_is_flagged() {
    // The pattern is present, but the file is outside the rule's scope, so
    // the allow suppresses nothing there.
    let src = "fn f(x: Option<u32>) -> u32 {\n    // analyze: allow(panic, \"checked by caller\")\n    x.unwrap()\n}\n";
    let got = lint_file("crates/apps/src/lib.rs", src, false);
    assert!(rules(&got).contains(&Rule::StaleAllow));
}

#[test]
fn unsafe_allow_counts_as_used_on_crate_root() {
    let src = "// analyze: allow(unsafe, \"FFI shim for page-locked buffers\")\n#![deny(unsafe_code)]\npub fn f() {}\n";
    assert!(lint_file("crates/x/src/lib.rs", src, true).is_empty());
    // But the same annotation on a non-root file suppresses nothing.
    let got = lint_file("crates/x/src/other.rs", src, false);
    assert!(rules(&got).contains(&Rule::StaleAllow));
}

#[test]
fn malformed_allow_is_not_reported_stale() {
    // Missing reason already yields an Annotation finding; it must not ALSO
    // be double-reported as stale.
    let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // analyze: allow(panic)\n}\n";
    let got = lint_file(HOT, src, false);
    assert!(rules(&got).contains(&Rule::Annotation));
    assert!(!rules(&got).contains(&Rule::StaleAllow));
}

#[test]
fn self_test_detects_every_seeded_violation() {
    let findings = self_test().expect("linter must catch every seeded violation");
    for r in Rule::all() {
        assert!(
            findings.iter().any(|f| f.rule == r),
            "no finding for rule {:?}",
            r
        );
    }
}
