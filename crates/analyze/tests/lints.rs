//! Unit coverage for the lint engine: masking, annotations, each rule's
//! positive and negative cases, and the in-memory self-test corpus.

use charm_analyze::{lint_crate_root, lint_source, self_test, Rule};

const HOT: &str = "crates/core/src/pe.rs";

fn rules(findings: &[charm_analyze::Finding]) -> Vec<Rule> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn unwrap_in_hot_path_fires() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    assert!(rules(&lint_source(HOT, src)).contains(&Rule::Panic));
}

#[test]
fn unwrap_outside_scope_is_ignored() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    assert!(lint_source("crates/apps/src/lib.rs", src).is_empty());
}

#[test]
fn annotation_on_same_line_suppresses() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // analyze: allow(panic, \"checked by caller\")\n}\n";
    assert!(!rules(&lint_source(HOT, src)).contains(&Rule::Panic));
}

#[test]
fn annotation_on_line_above_suppresses() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    // analyze: allow(panic, \"checked by caller\")\n    x.unwrap()\n}\n";
    assert!(!rules(&lint_source(HOT, src)).contains(&Rule::Panic));
}

#[test]
fn annotation_without_reason_is_a_finding_and_does_not_suppress() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // analyze: allow(panic)\n}\n";
    let got = rules(&lint_source(HOT, src));
    assert!(got.contains(&Rule::Panic));
    assert!(got.contains(&Rule::Annotation));
}

#[test]
fn unknown_rule_annotation_is_a_finding() {
    let src = "// analyze: allow(bogus, \"reason\")\nfn f() {}\n";
    assert!(rules(&lint_source(HOT, src)).contains(&Rule::Annotation));
}

#[test]
fn panic_inside_string_or_comment_is_masked() {
    let src = concat!(
        "fn f() {\n",
        "    let s = \"do not .unwrap() here\";\n",
        "    // a comment mentioning panic!( and v[0]\n",
        "    /* block with .expect( inside */\n",
        "    let _ = s;\n",
        "}\n"
    );
    assert!(lint_source(HOT, src).is_empty());
}

#[test]
fn raw_string_is_masked() {
    let src = "fn f() -> &'static str {\n    r#\"x.unwrap() v[0]\"#\n}\n";
    assert!(lint_source(HOT, src).is_empty());
}

#[test]
fn indexing_fires_but_attributes_and_macros_do_not() {
    let bad = "fn f(v: &[u8]) -> u8 {\n    v[0]\n}\n";
    assert!(rules(&lint_source(HOT, bad)).contains(&Rule::Panic));
    let ok = "#[derive(Clone)]\nstruct S;\nfn g() -> Vec<u8> {\n    vec![1, 2]\n}\n";
    assert!(lint_source(HOT, ok).is_empty());
}

#[test]
fn lifetime_is_not_a_char_literal() {
    // A lifetime after `'` must not put the lexer into char-literal state
    // and swallow the rest of the line.
    let src = "fn f<'a>(v: &'a [u8]) -> &'a u8 {\n    &v[0]\n}\n";
    assert!(rules(&lint_source(HOT, src)).contains(&Rule::Panic));
}

#[test]
fn payload_copy_fires_in_core_and_wire_only() {
    let src = "fn f(v: &[u8]) -> Vec<u8> {\n    v.to_vec()\n}\n";
    assert!(rules(&lint_source("crates/core/src/msg.rs", src)).contains(&Rule::PayloadCopy));
    assert!(rules(&lint_source("crates/wire/src/buffer.rs", src)).contains(&Rule::PayloadCopy));
    assert!(lint_source("crates/lb/src/lib.rs", src).is_empty());
}

#[test]
fn payload_copy_exempts_test_modules() {
    let src = concat!(
        "fn prod(v: &[u8]) -> usize { v.len() }\n",
        "#[cfg(test)]\n",
        "mod tests {\n",
        "    fn fixture(v: &[u8]) -> Vec<u8> { v.to_vec() }\n",
        "}\n"
    );
    assert!(lint_source("crates/wire/src/buffer.rs", src).is_empty());
}

#[test]
fn blocking_fires_on_sleep_and_mutex() {
    let sleep = "fn f() {\n    std::thread::sleep(std::time::Duration::from_millis(1));\n}\n";
    assert!(rules(&lint_source("crates/core/src/ctx.rs", sleep)).contains(&Rule::Blocking));
    let mutex = "use std::sync::Mutex;\nstruct S {\n    m: Mutex<u32>,\n}\n";
    assert!(rules(&lint_source("crates/core/src/pe.rs", mutex)).contains(&Rule::Blocking));
}

#[test]
fn crate_root_policy() {
    let forbid = "#![forbid(unsafe_code)]\npub fn f() {}\n";
    assert!(lint_crate_root("crates/x/src/lib.rs", forbid).is_empty());

    let nothing = "pub fn f() {}\n";
    assert!(rules(&lint_crate_root("crates/x/src/lib.rs", nothing)).contains(&Rule::ForbidUnsafe));

    let bare_deny = "#![deny(unsafe_code)]\npub fn f() {}\n";
    assert!(rules(&lint_crate_root("crates/x/src/lib.rs", bare_deny)).contains(&Rule::ForbidUnsafe));

    let deny_doc = "// analyze: allow(unsafe, \"FFI shim for page-locked buffers\")\n#![deny(unsafe_code)]\npub fn f() {}\n";
    assert!(lint_crate_root("crates/x/src/lib.rs", deny_doc).is_empty());
}

#[test]
fn trace_hook_suppresses_panic_and_blocking() {
    let idx = "fn f(v: &[u8]) -> u8 {\n    // analyze: allow(trace-hook, \"depth probe; dispatch validated the slot\")\n    v[0]\n}\n";
    assert!(!rules(&lint_source(HOT, idx)).contains(&Rule::Panic));
    let sleep = "fn f() {\n    // analyze: allow(trace-hook, \"clock read may park briefly on this platform\")\n    std::thread::sleep(std::time::Duration::from_millis(1));\n}\n";
    assert!(!rules(&lint_source(HOT, sleep)).contains(&Rule::Blocking));
}

#[test]
fn trace_hook_is_a_known_key_but_needs_a_reason() {
    // Recognized key: no unknown-rule finding...
    let with_reason = "// analyze: allow(trace-hook, \"why\")\nfn f() {}\n";
    assert!(lint_source(HOT, with_reason).is_empty());
    // ...but a reason is still mandatory.
    let bare = "fn f(v: &[u8]) -> u8 {\n    v[0] // analyze: allow(trace-hook)\n}\n";
    let got = rules(&lint_source(HOT, bare));
    assert!(got.contains(&Rule::Annotation));
    assert!(got.contains(&Rule::Panic));
}

#[test]
fn trace_hook_does_not_suppress_payload_copy() {
    let src = "fn f(b: &WireBytes) -> Vec<u8> {\n    // analyze: allow(trace-hook, \"not a trace hook at all\")\n    b.to_vec()\n}\n";
    assert!(rules(&lint_source("crates/wire/src/buffer.rs", src)).contains(&Rule::PayloadCopy));
}

#[test]
fn recovery_hook_suppresses_panic_and_blocking() {
    let kill = "fn f() {\n    // analyze: allow(recovery-hook, \"injected PE failure the restart supervisor catches\")\n    panic!(\"injected PE failure\");\n}\n";
    assert!(!rules(&lint_source(HOT, kill)).contains(&Rule::Panic));
    let sleep = "fn f() {\n    // analyze: allow(recovery-hook, \"grace wait for straggler PEs to report salvage\")\n    std::thread::sleep(std::time::Duration::from_millis(1));\n}\n";
    assert!(!rules(&lint_source(HOT, sleep)).contains(&Rule::Blocking));
}

#[test]
fn recovery_hook_is_a_known_key_but_needs_a_reason() {
    let with_reason = "// analyze: allow(recovery-hook, \"why\")\nfn f() {}\n";
    assert!(lint_source(HOT, with_reason).is_empty());
    let bare = "fn f() {\n    panic!(\"x\"); // analyze: allow(recovery-hook)\n}\n";
    let got = rules(&lint_source(HOT, bare));
    assert!(got.contains(&Rule::Annotation));
    assert!(got.contains(&Rule::Panic));
}

#[test]
fn recovery_hook_does_not_suppress_payload_copy() {
    let src = "fn f(b: &WireBytes) -> Vec<u8> {\n    // analyze: allow(recovery-hook, \"not a recovery path at all\")\n    b.to_vec()\n}\n";
    assert!(rules(&lint_source("crates/wire/src/buffer.rs", src)).contains(&Rule::PayloadCopy));
}

#[test]
fn self_test_detects_every_seeded_violation() {
    let findings = self_test().expect("linter must catch every seeded violation");
    for r in Rule::all() {
        assert!(
            findings.iter().any(|f| f.rule == r),
            "no finding for rule {:?}",
            r
        );
    }
}
