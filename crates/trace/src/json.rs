//! Minimal strict JSON: an escaper for the Chrome exporter and a
//! recursive-descent parser used by the round-trip tests.
//!
//! The container image has no crates-io access, so the usual `serde_json`
//! round-trip check is performed against this parser instead. It accepts
//! exactly RFC 8259 JSON (objects, arrays, strings with full escape
//! handling including surrogate pairs, numbers, booleans, null) and
//! rejects trailing garbage — anything it parses, `serde_json` parses too.

use std::collections::BTreeMap;

/// Escape `s` for inclusion inside a JSON string literal (no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing whitespace only).
pub fn parse(s: &str) -> Result<Value, String> {
    let mut p = Parser {
        b: s.as_bytes(),
        i: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.i += 1;
        }
        c
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.bump() == Some(c) {
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.i))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        let w = word.as_bytes();
        if self.b[self.i..].starts_with(w) {
            self.i += w.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(m));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let v = self.value()?;
            m.insert(k, v);
            self.ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(m)),
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(v));
        }
        loop {
            self.ws();
            v.push(self.value()?);
            self.ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(v)),
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut n = 0u32;
        for _ in 0..4 {
            let c = self
                .bump()
                .ok_or_else(|| "truncated \\u escape".to_string())?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| format!("bad hex digit at byte {}", self.i))?;
            n = n * 16 + d;
        }
        Ok(n)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let cp = if (0xd800..0xdc00).contains(&hi) {
                            // Surrogate pair: require the low half.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err("lone high surrogate".into());
                            }
                            let lo = self.hex4()?;
                            if !(0xdc00..0xe000).contains(&lo) {
                                return Err("invalid low surrogate".into());
                            }
                            0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(cp)
                                .ok_or_else(|| "invalid \\u codepoint".to_string())?,
                        );
                    }
                    _ => return Err(format!("bad escape at byte {}", self.i)),
                },
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.i));
                }
                Some(c) => {
                    // Re-assemble UTF-8 multibyte sequences byte-for-byte;
                    // the input came from a &str so they are valid.
                    let start = self.i - 1;
                    let width = match c {
                        c if c < 0x80 => 1,
                        c if c >= 0xf0 => 4,
                        c if c >= 0xe0 => 3,
                        _ => 2,
                    };
                    let end = start + width;
                    let chunk = self
                        .b
                        .get(start..end)
                        .ok_or_else(|| "truncated UTF-8 sequence".to_string())?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    out.push_str(s);
                    self.i = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i])
            .map_err(|_| "non-UTF-8 number".to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Num(-1250.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_containers() {
        let v = parse(r#"{"a":[1,2,{"b":false}],"c":"x"}"#).unwrap();
        let arr = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[2].get("b").and_then(Value::as_bool), Some(false));
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{0001}π::<T>";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap(), Value::Str(nasty.to_string()));
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(parse(r#""😀""#).unwrap(), Value::Str("\u{1f600}".into()));
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("{'a':1}").is_err());
    }
}
