//! End-of-run trace artifacts: per-PE performance blocks, the assembled
//! [`TraceReport`], and its two exporters (Chrome trace-event JSON for
//! Perfetto / `chrome://tracing`, and a plain-text summary table).

use std::collections::{BTreeMap, BTreeSet};

use crate::event::{EntryKind, Event, EventKind};
use crate::hist::Hist;
use crate::json;
use crate::summary::PeSummary;
use crate::telemetry::MetricFrame;
use crate::tracer::EntryStat;

/// Cheap per-PE performance counters — always present in `RunReport`,
/// whatever the trace level.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PePerf {
    /// Which PE this block describes.
    pub pe: usize,
    /// Scheduler lifetime in ns (virtual time under the sim backend).
    pub wall_ns: u64,
    /// Entry-method / coroutine execution time.
    pub busy_ns: u64,
    /// Time spent waiting for work.
    pub idle_ns: u64,
    /// Runtime bookkeeping, codec work, and unattributed scheduler time.
    pub overhead_ns: u64,
    /// QD-counted envelopes emitted.
    pub msgs_sent: u64,
    /// QD-counted envelopes handled.
    pub msgs_processed: u64,
    /// Cross-PE envelopes emitted (trace-level ≥ counters).
    pub sent_remote: u64,
    /// Same-PE envelopes emitted (trace-level ≥ counters).
    pub sent_local: u64,
    /// Bytes shipped to other PEs.
    pub bytes_sent_remote: u64,
    /// Bytes of same-PE sends (delivered by reference).
    pub bytes_sent_local: u64,
    /// Bytes received by this scheduler.
    pub bytes_recv: u64,
    /// Bytes produced by this PE's wire-encode pool.
    pub bytes_encoded: u64,
    /// Entry-method activations.
    pub entries: u64,
    /// Chares migrated away.
    pub migrations: u64,
    /// Messages buffered behind a when-guard.
    pub guard_buffered: u64,
    /// Buffered messages later drained.
    pub guard_drained: u64,
    /// Reduction contributions.
    pub red_contributes: u64,
    /// Reductions delivered at a root here.
    pub red_delivers: u64,
    /// Broadcasts relayed down the spanning tree.
    pub bcast_relays: u64,
    /// Checkpoint bytes written.
    pub ckpt_bytes: u64,
    /// Envelopes from a previous recovery epoch discarded by this PE.
    pub stale_discarded: u64,
    /// Aggregation batch frames flushed — physical envelopes, vs. the
    /// logical per-message `sent_remote`/`msgs_sent` counts (which are
    /// unaffected by batching).
    pub batches_sent: u64,
    /// Logical messages carried inside those batches.
    pub batch_msgs: u64,
    /// Encode-scratch takes served from the per-PE envelope slab (the
    /// `EncodePool` freelist) without allocating.
    pub slab_hits: u64,
    /// Encode-scratch takes that had to allocate a fresh buffer.
    pub slab_misses: u64,
    /// Payloads published inline inside the envelope (< 64 B), skipping
    /// the shared allocation entirely.
    pub inline_payloads: u64,
    /// Entry-dispatch lookups served from the per-PE dispatch cache.
    pub dispatch_hits: u64,
    /// Entry-dispatch lookups that resolved through the registry.
    pub dispatch_misses: u64,
    /// Events overwritten in the full-capture ring.
    pub events_dropped: u64,
    /// Entry messages this PE forwarded through a migration stub (the
    /// chare lived here and moved on). Bounded per chain by the runtime's
    /// forwarding-trail collapse.
    pub fwd_hops: u64,
    /// Peak load-balancing chare-stat records materialized on this PE at
    /// once. Central mode concentrates O(nchares) on PE 0; hierarchical
    /// mode bounds this by the group size.
    pub lb_peak_stats: u64,
}

impl PePerf {
    /// Fraction of wall time spent in entry methods (0 when wall is 0).
    pub fn utilization(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.busy_ns as f64 / self.wall_ns as f64
        }
    }

    /// Mean coalesced messages per flushed aggregation batch (0 when no
    /// batch was ever flushed, i.e. aggregation off or never triggered).
    pub fn batch_occupancy(&self) -> f64 {
        if self.batches_sent == 0 {
            0.0
        } else {
            self.batch_msgs as f64 / self.batches_sent as f64
        }
    }

    /// Fraction of encode-scratch takes served by the envelope slab
    /// without allocating (0 when the slab was never used).
    pub fn slab_hit_rate(&self) -> f64 {
        let total = self.slab_hits + self.slab_misses;
        if total == 0 {
            0.0
        } else {
            self.slab_hits as f64 / total as f64
        }
    }

    /// Fraction of entry-dispatch lookups served from the dispatch cache
    /// (0 when dispatch never ran, e.g. dynamic mode or cache disabled).
    pub fn dispatch_hit_rate(&self) -> f64 {
        let total = self.dispatch_hits + self.dispatch_misses;
        if total == 0 {
            0.0
        } else {
            self.dispatch_hits as f64 / total as f64
        }
    }
}

/// One (chare type, entry kind) row of the per-entry statistics.
#[derive(Debug, Clone)]
pub struct EntrySummary {
    /// Chare type id (index into the runtime's registry).
    pub ctype: u32,
    /// Resolved chare type name.
    pub name: String,
    /// Activation kind.
    pub kind: EntryKind,
    /// Call counts and time histogram.
    pub stat: EntryStat,
}

/// Everything one PE recorded.
#[derive(Debug, Clone, Default)]
pub struct PeTrace {
    /// Counter block (always meaningful).
    pub perf: PePerf,
    /// Per-entry statistics (empty below counters level).
    pub entries: Vec<EntrySummary>,
    /// Captured events in record order (empty below full level).
    pub events: Vec<Event>,
    /// Send→deliver latency distribution (empty below counters level).
    pub latency: Hist,
    /// Bounded time-bin profile (present at level ≥ summary).
    pub summary: Option<PeSummary>,
    /// Telemetry time series — populated on PE 0 only, when
    /// `Runtime::telemetry` is armed (the reduction root retains it).
    pub telemetry: Vec<MetricFrame>,
    /// Trace level was ≥ counters.
    pub enabled: bool,
    /// Trace level was full (events were captured).
    pub captured: bool,
}

impl Default for EntrySummary {
    fn default() -> Self {
        EntrySummary {
            ctype: 0,
            name: String::new(),
            kind: EntryKind::Receive,
            stat: EntryStat::default(),
        }
    }
}

/// The whole machine's trace, one [`PeTrace`] per PE in PE order.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Per-PE traces, indexed by PE number.
    pub pes: Vec<PeTrace>,
}

fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1000.0)
}

fn complete(pe: usize, name: &str, cat: &str, begin_ns: u64, end_ns: u64) -> String {
    format!(
        r#"{{"ph":"X","pid":1,"tid":{pe},"ts":{},"dur":{},"name":"{}","cat":"{cat}"}}"#,
        us(begin_ns),
        us(end_ns.saturating_sub(begin_ns)),
        json::escape(name)
    )
}

fn instant(pe: usize, name: &str, cat: &str, ts_ns: u64, args: &str) -> String {
    let args = if args.is_empty() {
        String::new()
    } else {
        format!(r#","args":{{{args}}}"#)
    };
    format!(
        r#"{{"ph":"i","pid":1,"tid":{pe},"ts":{},"s":"t","name":"{}","cat":"{cat}"{args}}}"#,
        us(ts_ns),
        json::escape(name)
    )
}

impl TraceReport {
    /// Chrome trace-event JSON (array form): metadata rows naming one
    /// track per PE, `"X"` complete events for entry/idle/LB spans, and
    /// `"i"` instants for everything else. Timestamps are microseconds.
    pub fn chrome_json(&self) -> String {
        let mut objs: Vec<String> = Vec::new();
        objs.push(
            r#"{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"charm-rs"}}"#
                .to_string(),
        );
        for t in &self.pes {
            let pe = t.perf.pe;
            objs.push(format!(
                r#"{{"ph":"M","pid":1,"tid":{pe},"name":"thread_name","args":{{"name":"PE {pe}"}}}}"#
            ));
        }
        // Per-PE health metadata: ring-drop count and encode-slab hit rate
        // travel with the trace so a viewer (or charm-perf) can flag a
        // truncated or allocation-bound capture without the RunReport.
        for t in &self.pes {
            let pe = t.perf.pe;
            objs.push(format!(
                r#"{{"ph":"M","pid":1,"tid":{pe},"name":"charm_stats","args":{{"events_dropped":{},"slab_hit_rate":{:.4}}}}}"#,
                t.perf.events_dropped,
                t.perf.slab_hit_rate()
            ));
        }
        for t in &self.pes {
            let pe = t.perf.pe;
            let names: BTreeMap<u32, &str> = t
                .entries
                .iter()
                .map(|e| (e.ctype, e.name.as_str()))
                .collect();
            let entry_name = |ctype: u32, kind: EntryKind| match names.get(&ctype) {
                Some(n) => format!("{n}::{}", kind.label()),
                None => format!("ctype{}::{}", ctype, kind.label()),
            };
            let mut iter = t.events.iter().peekable();
            while let Some(ev) = iter.next() {
                match &ev.kind {
                    EventKind::EntryBegin { ctype, kind } => {
                        let paired = matches!(
                            iter.peek(),
                            Some(n) if n.kind == (EventKind::EntryEnd { ctype: *ctype, kind: *kind })
                        );
                        if paired {
                            let end = iter.next().map(|n| n.ts_ns).unwrap_or(ev.ts_ns);
                            objs.push(complete(
                                pe,
                                &entry_name(*ctype, *kind),
                                "entry",
                                ev.ts_ns,
                                end,
                            ));
                        } else {
                            objs.push(instant(pe, ev.kind.name(), "entry", ev.ts_ns, ""));
                        }
                    }
                    EventKind::IdleBegin => {
                        if matches!(iter.peek(), Some(n) if n.kind == EventKind::IdleEnd) {
                            let end = iter.next().map(|n| n.ts_ns).unwrap_or(ev.ts_ns);
                            objs.push(complete(pe, "idle", "idle", ev.ts_ns, end));
                        } else {
                            objs.push(instant(pe, ev.kind.name(), "idle", ev.ts_ns, ""));
                        }
                    }
                    // Orphan ends can only come from a ring-wrap cut.
                    EventKind::EntryEnd { .. } => {
                        objs.push(instant(pe, ev.kind.name(), "entry", ev.ts_ns, ""));
                    }
                    EventKind::IdleEnd => {
                        objs.push(instant(pe, ev.kind.name(), "idle", ev.ts_ns, ""));
                    }
                    EventKind::MsgSend { bytes, remote } => {
                        objs.push(instant(
                            pe,
                            ev.kind.name(),
                            "msg",
                            ev.ts_ns,
                            &format!(r#""bytes":{bytes},"remote":{remote}"#),
                        ));
                    }
                    EventKind::MsgRecv { bytes } => {
                        objs.push(instant(
                            pe,
                            ev.kind.name(),
                            "msg",
                            ev.ts_ns,
                            &format!(r#""bytes":{bytes}"#),
                        ));
                    }
                    EventKind::BatchFlush { msgs, bytes } => {
                        objs.push(instant(
                            pe,
                            ev.kind.name(),
                            "msg",
                            ev.ts_ns,
                            &format!(r#""msgs":{msgs},"bytes":{bytes}"#),
                        ));
                    }
                    EventKind::GuardBuffer { depth } | EventKind::GuardDrain { depth } => {
                        objs.push(instant(
                            pe,
                            ev.kind.name(),
                            "guard",
                            ev.ts_ns,
                            &format!(r#""depth":{depth}"#),
                        ));
                    }
                    EventKind::RedContribute | EventKind::RedDeliver => {
                        objs.push(instant(pe, ev.kind.name(), "red", ev.ts_ns, ""));
                    }
                    EventKind::BcastFanout { children, members } => {
                        objs.push(instant(
                            pe,
                            ev.kind.name(),
                            "bcast",
                            ev.ts_ns,
                            &format!(r#""children":{children},"members":{members}"#),
                        ));
                    }
                    EventKind::MigrateOut { bytes } | EventKind::MigrateIn { bytes } => {
                        objs.push(instant(
                            pe,
                            ev.kind.name(),
                            "migrate",
                            ev.ts_ns,
                            &format!(r#""bytes":{bytes}"#),
                        ));
                    }
                    EventKind::LbEpoch { dur_ns } => {
                        objs.push(complete(
                            pe,
                            ev.kind.name(),
                            "lb",
                            ev.ts_ns.saturating_sub(*dur_ns),
                            ev.ts_ns,
                        ));
                    }
                    EventKind::Ckpt { bytes } => {
                        objs.push(instant(
                            pe,
                            ev.kind.name(),
                            "ckpt",
                            ev.ts_ns,
                            &format!(r#""bytes":{bytes}"#),
                        ));
                    }
                    EventKind::Recovery { epoch } => {
                        objs.push(instant(
                            pe,
                            ev.kind.name(),
                            "ckpt",
                            ev.ts_ns,
                            &format!(r#""epoch":{epoch}"#),
                        ));
                    }
                    EventKind::StaleDrop => {
                        objs.push(instant(pe, ev.kind.name(), "ckpt", ev.ts_ns, ""));
                    }
                    EventKind::Mark { label } => {
                        objs.push(instant(pe, label, "mark", ev.ts_ns, ""));
                    }
                }
            }
        }
        let mut out = String::from("[\n");
        out.push_str(&objs.join(",\n"));
        out.push_str("\n]\n");
        out
    }

    /// Write the Chrome JSON to `path` (open the file in Perfetto).
    pub fn write_chrome(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.chrome_json())
    }

    /// Plain-text utilization + per-entry summary table.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:>4}  {:>12} {:>7} {:>7} {:>7}  {:>8} {:>8}  {:>12} {:>8} {:>6} {:>6} {:>7} {:>6} {:>8}\n",
            "PE",
            "wall_ms",
            "busy%",
            "idle%",
            "ovhd%",
            "sent",
            "procd",
            "rem_bytes",
            "batches",
            "occ",
            "slab%",
            "inline",
            "disp%",
            "dropped"
        ));
        for t in &self.pes {
            let p = &t.perf;
            let pct = |ns: u64| {
                if p.wall_ns == 0 {
                    0.0
                } else {
                    100.0 * ns as f64 / p.wall_ns as f64
                }
            };
            out.push_str(&format!(
                "{:>4}  {:>12.3} {:>7.1} {:>7.1} {:>7.1}  {:>8} {:>8}  {:>12} {:>8} {:>6.1} {:>6.1} {:>7} {:>6.1} {:>8}\n",
                p.pe,
                p.wall_ns as f64 / 1e6,
                pct(p.busy_ns),
                pct(p.idle_ns),
                pct(p.overhead_ns),
                p.msgs_sent,
                p.msgs_processed,
                p.bytes_sent_remote,
                p.batches_sent,
                p.batch_occupancy(),
                100.0 * p.slab_hit_rate(),
                p.inline_payloads,
                100.0 * p.dispatch_hit_rate(),
                p.events_dropped,
            ));
        }
        // Merge entry stats across PEs by (name, kind) — histograms merge
        // bucket-wise, so the p50/p99 columns are cluster-wide quantiles.
        let mut merged: BTreeMap<(String, EntryKind), EntryStat> = BTreeMap::new();
        for t in &self.pes {
            for e in &t.entries {
                merged
                    .entry((e.name.clone(), e.kind))
                    .or_default()
                    .merge(&e.stat);
            }
        }
        if !merged.is_empty() {
            out.push_str(&format!(
                "\n{:<48} {:<16} {:>8} {:>12} {:>10} {:>10} {:>10} {:>10}\n",
                "entry", "kind", "calls", "total_ms", "max_us", "avg_us", "p50_us", "p99_us"
            ));
            for ((name, kind), s) in &merged {
                let q = |p: f64| s.hist.quantile(p).unwrap_or(0) as f64 / 1e3;
                out.push_str(&format!(
                    "{:<48} {:<16} {:>8} {:>12.3} {:>10.1} {:>10.1} {:>10.1} {:>10.1}\n",
                    name,
                    kind.label(),
                    s.calls,
                    s.total_ns as f64 / 1e6,
                    s.max_ns as f64 / 1e3,
                    s.mean_ns() as f64 / 1e3,
                    q(0.5),
                    q(0.99),
                ));
            }
        }
        // Cluster-wide send→deliver latency distribution.
        let mut lat = Hist::default();
        for t in &self.pes {
            lat.merge(&t.latency);
        }
        if lat.count() > 0 {
            let q = |p: f64| lat.quantile(p).unwrap_or(0) as f64 / 1e3;
            out.push_str(&format!(
                "\nmsg latency: n={} p50={:.1}us p99={:.1}us p999={:.1}us max={:.1}us\n",
                lat.count(),
                q(0.5),
                q(0.99),
                q(0.999),
                lat.max() as f64 / 1e3,
            ));
        }
        // Summary-mode profile digest (full bins live in the artifact).
        for t in &self.pes {
            if let Some(s) = &t.summary {
                out.push_str(&format!(
                    "summary: PE {} quantum={}ns bins={} merges={}\n",
                    t.perf.pe,
                    s.quantum_ns,
                    s.bins.len(),
                    s.merges,
                ));
            }
        }
        out
    }

    /// Plain-text summary-mode artifact (`charm-summary v1`): one `pe`
    /// header per PE that ran at summary level, followed by its time bins.
    /// The per-class nanosecond totals in the header equal the `PePerf`
    /// counters exactly — `charm-perf` re-derives and checks this.
    pub fn summary_artifact(&self) -> String {
        let mut out = String::from("charm-summary v1\n");
        for t in &self.pes {
            let Some(s) = &t.summary else { continue };
            let p = &t.perf;
            out.push_str(&format!(
                "pe {} wall_ns={} quantum_ns={} merges={} bins={} busy_ns={} idle_ns={} overhead_ns={}\n",
                p.pe,
                p.wall_ns,
                s.quantum_ns,
                s.merges,
                s.bins.len(),
                p.busy_ns,
                p.idle_ns,
                p.overhead_ns,
            ));
            for (i, b) in s.bins.iter().enumerate() {
                out.push_str(&format!(
                    "bin {i} busy_ns={} idle_ns={} overhead_ns={} entries={} msgs={} bytes={}\n",
                    b.busy_ns, b.idle_ns, b.overhead_ns, b.entries, b.msgs, b.bytes,
                ));
            }
        }
        out
    }

    /// Write the summary-mode artifact to `path`.
    pub fn write_summary_artifact(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.summary_artifact())
    }

    /// Distinct event-kind names captured across all PEs (paired spans
    /// count once), handy for coverage assertions.
    pub fn event_kind_names(&self) -> BTreeSet<&'static str> {
        let mut names = BTreeSet::new();
        for t in &self.pes {
            for ev in &t.events {
                names.insert(ev.kind.name());
            }
        }
        names
    }

    /// Check event well-formedness: per PE, timestamps must be
    /// non-decreasing and every begin must be immediately followed by its
    /// matching end (the recorder pushes pairs back-to-back; a ring wrap
    /// may leave at most one orphan end, and only as the first event).
    pub fn validate(&self) -> Result<(), String> {
        for t in &self.pes {
            let pe = t.perf.pe;
            let evs = &t.events;
            let mut last = 0u64;
            let mut i = 0usize;
            while let Some(ev) = evs.get(i) {
                if ev.ts_ns < last {
                    return Err(format!(
                        "PE {pe}: timestamp went backwards at event {i} ({} < {last})",
                        ev.ts_ns
                    ));
                }
                last = ev.ts_ns;
                match &ev.kind {
                    EventKind::EntryBegin { ctype, kind } => match evs.get(i + 1) {
                        Some(n)
                            if n.kind
                                == (EventKind::EntryEnd {
                                    ctype: *ctype,
                                    kind: *kind,
                                })
                                && n.ts_ns >= ev.ts_ns =>
                        {
                            last = n.ts_ns;
                            i += 2;
                            continue;
                        }
                        _ => {
                            return Err(format!(
                                "PE {pe}: EntryBegin at event {i} lacks an adjacent matching EntryEnd"
                            ));
                        }
                    },
                    EventKind::IdleBegin => match evs.get(i + 1) {
                        Some(n) if n.kind == EventKind::IdleEnd && n.ts_ns >= ev.ts_ns => {
                            last = n.ts_ns;
                            i += 2;
                            continue;
                        }
                        _ => {
                            return Err(format!(
                                "PE {pe}: IdleBegin at event {i} lacks an adjacent IdleEnd"
                            ));
                        }
                    },
                    EventKind::EntryEnd { .. } | EventKind::IdleEnd => {
                        if i != 0 {
                            return Err(format!(
                                "PE {pe}: orphan end event at {i} (only allowed at the ring cut)"
                            ));
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};

    fn span(ts: u64, dur: u64, ctype: u32) -> [Event; 2] {
        [
            Event {
                ts_ns: ts,
                kind: EventKind::EntryBegin {
                    ctype,
                    kind: EntryKind::Receive,
                },
            },
            Event {
                ts_ns: ts + dur,
                kind: EventKind::EntryEnd {
                    ctype,
                    kind: EntryKind::Receive,
                },
            },
        ]
    }

    fn one_pe(events: Vec<Event>) -> TraceReport {
        TraceReport {
            pes: vec![PeTrace {
                perf: PePerf {
                    pe: 0,
                    wall_ns: 1_000_000,
                    ..PePerf::default()
                },
                entries: Vec::new(),
                events,
                enabled: true,
                captured: true,
                ..PeTrace::default()
            }],
        }
    }

    #[test]
    fn validate_accepts_paired_monotone() {
        let mut evs: Vec<Event> = span(100, 50, 1).to_vec();
        evs.push(Event {
            ts_ns: 200,
            kind: EventKind::MsgSend {
                bytes: 16,
                remote: true,
            },
        });
        evs.extend(span(300, 10, 1));
        assert!(one_pe(evs).validate().is_ok());
    }

    #[test]
    fn validate_rejects_backwards_time() {
        let mut evs: Vec<Event> = span(500, 10, 1).to_vec();
        evs.push(Event {
            ts_ns: 10,
            kind: EventKind::RedContribute,
        });
        assert!(one_pe(evs).validate().is_err());
    }

    #[test]
    fn validate_rejects_unpaired_begin() {
        let evs = vec![Event {
            ts_ns: 1,
            kind: EventKind::IdleBegin,
        }];
        assert!(one_pe(evs).validate().is_err());
    }

    #[test]
    fn validate_allows_orphan_end_at_ring_cut_only() {
        let mut evs = vec![Event {
            ts_ns: 5,
            kind: EventKind::IdleEnd,
        }];
        evs.extend(span(10, 5, 2));
        assert!(one_pe(evs.clone()).validate().is_ok());
        evs.push(Event {
            ts_ns: 100,
            kind: EventKind::IdleEnd,
        });
        assert!(one_pe(evs).validate().is_err());
    }

    #[test]
    fn chrome_json_parses_and_names_tracks() {
        let mut evs: Vec<Event> = span(1_000, 2_000, 3).to_vec();
        evs.push(Event {
            ts_ns: 4_000,
            kind: EventKind::Mark {
                label: "weird \"label\"\n<T>".into(),
            },
        });
        let mut rep = one_pe(evs);
        rep.pes[0].entries.push(EntrySummary {
            ctype: 3,
            name: "demo::Chare".into(),
            kind: EntryKind::Receive,
            stat: EntryStat::default(),
        });
        let doc = parse(&rep.chrome_json()).expect("exporter emits valid JSON");
        let arr = doc.as_arr().expect("top level is an array");
        // Metadata: process name + one thread_name per PE.
        let tracks: Vec<&Value> = arr
            .iter()
            .filter(|o| o.get("name").and_then(Value::as_str) == Some("thread_name"))
            .collect();
        assert_eq!(tracks.len(), 1);
        // The entry span resolved its chare name and is a complete event.
        assert!(arr.iter().any(|o| {
            o.get("ph").and_then(Value::as_str) == Some("X")
                && o.get("name").and_then(Value::as_str) == Some("demo::Chare::receive")
                && o.get("dur").and_then(Value::as_f64) == Some(2.0)
        }));
        // The nasty mark label survived the escaping round trip.
        assert!(arr
            .iter()
            .any(|o| { o.get("name").and_then(Value::as_str) == Some("weird \"label\"\n<T>") }));
    }

    #[test]
    fn summary_mentions_entries_and_pes() {
        let mut rep = one_pe(Vec::new());
        rep.pes[0].entries.push(EntrySummary {
            ctype: 0,
            name: "demo::Chare".into(),
            kind: EntryKind::Reduced,
            stat: {
                let mut s = EntryStat::default();
                s.record(1_500);
                s
            },
        });
        let text = rep.summary();
        assert!(text.contains("demo::Chare"));
        assert!(text.contains("reduced"));
        assert!(text.contains("wall_ms"));
    }

    #[test]
    fn batch_flush_exports_and_summarizes() {
        let evs = vec![Event {
            ts_ns: 10,
            kind: EventKind::BatchFlush {
                msgs: 64,
                bytes: 4_096,
            },
        }];
        let mut rep = one_pe(evs);
        rep.pes[0].perf.batches_sent = 3;
        rep.pes[0].perf.batch_msgs = 96;
        rep.validate().expect("instant events validate");
        let doc = parse(&rep.chrome_json()).expect("exporter emits valid JSON");
        let arr = doc.as_arr().expect("top level is an array");
        assert!(arr.iter().any(|o| {
            o.get("name").and_then(Value::as_str) == Some("batch_flush")
                && o.get("args")
                    .and_then(|a| a.get("msgs"))
                    .and_then(Value::as_f64)
                    == Some(64.0)
        }));
        let text = rep.summary();
        assert!(text.contains("batches"));
        assert!(text.contains("occ"));
        assert!((rep.pes[0].perf.batch_occupancy() - 32.0).abs() < 1e-9);
    }

    #[test]
    fn fast_path_counters_summarize_and_rate() {
        let mut rep = one_pe(Vec::new());
        {
            let p = &mut rep.pes[0].perf;
            p.slab_hits = 90;
            p.slab_misses = 10;
            p.inline_payloads = 75;
            p.dispatch_hits = 99;
            p.dispatch_misses = 1;
        }
        let p = &rep.pes[0].perf;
        assert!((p.slab_hit_rate() - 0.9).abs() < 1e-9);
        assert!((p.dispatch_hit_rate() - 0.99).abs() < 1e-9);
        let text = rep.summary();
        assert!(text.contains("slab%"));
        assert!(text.contains("inline"));
        assert!(text.contains("disp%"));
        assert!(text.contains("75"), "inline count appears in the row");
        // Untouched blocks report 0, not NaN.
        assert_eq!(PePerf::default().slab_hit_rate(), 0.0);
        assert_eq!(PePerf::default().dispatch_hit_rate(), 0.0);
    }

    #[test]
    fn chrome_metadata_surfaces_drops_and_slab_rate() {
        let mut rep = one_pe(Vec::new());
        rep.pes[0].perf.events_dropped = 42;
        rep.pes[0].perf.slab_hits = 3;
        rep.pes[0].perf.slab_misses = 1;
        let doc = parse(&rep.chrome_json()).expect("exporter emits valid JSON");
        let arr = doc.as_arr().expect("top level is an array");
        let stats = arr
            .iter()
            .find(|o| o.get("name").and_then(Value::as_str) == Some("charm_stats"))
            .expect("charm_stats metadata row present");
        let args = stats.get("args").expect("args object");
        assert_eq!(
            args.get("events_dropped").and_then(Value::as_f64),
            Some(42.0)
        );
        assert_eq!(
            args.get("slab_hit_rate").and_then(Value::as_f64),
            Some(0.75)
        );
    }

    #[test]
    fn summary_artifact_lists_bins_and_matches_perf() {
        use crate::summary::{PeSummary, SummaryBin};
        let mut rep = one_pe(Vec::new());
        {
            let t = &mut rep.pes[0];
            t.perf.busy_ns = 30;
            t.perf.idle_ns = 20;
            t.perf.overhead_ns = 950;
            t.summary = Some(PeSummary {
                quantum_ns: 500,
                merges: 1,
                bins: vec![
                    SummaryBin {
                        busy_ns: 30,
                        idle_ns: 20,
                        overhead_ns: 450,
                        entries: 2,
                        msgs: 5,
                        bytes: 160,
                    },
                    SummaryBin {
                        overhead_ns: 500,
                        ..SummaryBin::default()
                    },
                ],
            });
        }
        let art = rep.summary_artifact();
        assert!(art.starts_with("charm-summary v1\n"));
        assert!(art.contains(
            "pe 0 wall_ns=1000000 quantum_ns=500 merges=1 bins=2 busy_ns=30 idle_ns=20 overhead_ns=950"
        ));
        assert!(
            art.contains("bin 0 busy_ns=30 idle_ns=20 overhead_ns=450 entries=2 msgs=5 bytes=160")
        );
        assert!(art.contains("bin 1 busy_ns=0 idle_ns=0 overhead_ns=500 entries=0 msgs=0 bytes=0"));
        let text = rep.summary();
        assert!(text.contains("summary: PE 0 quantum=500ns bins=2 merges=1"));
        // A counters-only report emits the header and nothing else.
        assert_eq!(one_pe(Vec::new()).summary_artifact(), "charm-summary v1\n");
    }

    #[test]
    fn summary_reports_latency_quantiles() {
        let mut rep = one_pe(Vec::new());
        for v in [10_000u64, 20_000, 30_000, 40_000] {
            rep.pes[0].latency.record(v);
        }
        let text = rep.summary();
        assert!(text.contains("msg latency: n=4"));
        assert!(text.contains("p50="));
        assert!(text.contains("p99="));
        // No latency samples → no latency line.
        assert!(!one_pe(Vec::new()).summary().contains("msg latency"));
    }

    #[test]
    fn event_kind_names_collects_distinct() {
        let mut evs: Vec<Event> = span(0, 1, 0).to_vec();
        evs.push(Event {
            ts_ns: 2,
            kind: EventKind::RedContribute,
        });
        evs.push(Event {
            ts_ns: 3,
            kind: EventKind::RedDeliver,
        });
        let names = one_pe(evs).event_kind_names();
        assert!(names.contains("entry_begin") && names.contains("red_deliver"));
        assert_eq!(names.len(), 4);
    }
}
