//! Trace event schema: what happened, when.
//!
//! Events are recorded per PE into a fixed-capacity [`Ring`]; when the ring
//! is full the oldest event is overwritten and the drop is counted, so full
//! capture never grows memory without bound (Projections' log buffers
//! behave the same way). Paired kinds (`EntryBegin`/`EntryEnd`,
//! `IdleBegin`/`IdleEnd`) are always pushed back-to-back by the recorder,
//! which is what lets the exporter and the validator pair them without a
//! stack — a ring wrap can cut at most the very first pair.

/// Which kind of entry-method activation a begin/end pair brackets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EntryKind {
    /// Chare constructor run on arrival of a collection-create fragment.
    Construct,
    /// Ordinary message delivery into a `receive` entry.
    Receive,
    /// Reduction result delivered back into the contributing chare.
    Reduced,
    /// `resume_from_sync` after an AtSync load-balancing epoch.
    ResumeFromSync,
    /// One coroutine segment (between two yields of a `Co` body).
    Coroutine,
}

impl EntryKind {
    /// Short label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            EntryKind::Construct => "construct",
            EntryKind::Receive => "receive",
            EntryKind::Reduced => "reduced",
            EntryKind::ResumeFromSync => "resume_from_sync",
            EntryKind::Coroutine => "coroutine",
        }
    }
}

/// One traced occurrence. Payload sizes are clamped to `u32` — a 4 GiB
/// single message would be a bug worth tracing in itself.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// Entry-method activation started (paired with the next `EntryEnd`).
    EntryBegin { ctype: u32, kind: EntryKind },
    /// Entry-method activation finished.
    EntryEnd { ctype: u32, kind: EntryKind },
    /// Envelope queued for a destination; `remote` is false for same-PE.
    MsgSend { bytes: u32, remote: bool },
    /// Envelope handed to this PE's scheduler.
    MsgRecv { bytes: u32 },
    /// A per-destination aggregation buffer was flushed into one batch
    /// envelope: `msgs` coalesced messages, `bytes` of frame. The gap
    /// between `MsgSend` counts and `BatchFlush` totals is the
    /// logical-vs-physical send ratio.
    BatchFlush { msgs: u32, bytes: u32 },
    /// Scheduler went idle (paired with the next `IdleEnd`).
    IdleBegin,
    /// Scheduler woke up.
    IdleEnd,
    /// A message missed its when-guard and was buffered (`depth` = queue
    /// length after buffering).
    GuardBuffer { depth: u32 },
    /// A buffered message became deliverable and was drained (`depth` =
    /// queue length after draining).
    GuardDrain { depth: u32 },
    /// A chare contributed to a reduction on this PE.
    RedContribute,
    /// A finished reduction was delivered at its root.
    RedDeliver,
    /// Broadcast relayed down the PE spanning tree.
    BcastFanout { children: u32, members: u32 },
    /// Chare packed and shipped to another PE.
    MigrateOut { bytes: u32 },
    /// Chare unpacked on arrival.
    MigrateIn { bytes: u32 },
    /// Load-balancing epoch finished; `dur_ns` spans stats → resume.
    LbEpoch { dur_ns: u64 },
    /// Checkpoint file written for this PE.
    Ckpt { bytes: u64 },
    /// The supervisor restarted the machine from a checkpoint; `epoch` is
    /// the new incarnation number.
    Recovery { epoch: u64 },
    /// An in-flight envelope from a previous incarnation was discarded.
    StaleDrop,
    /// User annotation recorded via `Ctx::trace_mark`.
    Mark { label: String },
}

impl EventKind {
    /// Stable kind name, used as the exporter event/category name.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::EntryBegin { .. } => "entry_begin",
            EventKind::EntryEnd { .. } => "entry_end",
            EventKind::MsgSend { .. } => "msg_send",
            EventKind::MsgRecv { .. } => "msg_recv",
            EventKind::BatchFlush { .. } => "batch_flush",
            EventKind::IdleBegin => "idle_begin",
            EventKind::IdleEnd => "idle_end",
            EventKind::GuardBuffer { .. } => "guard_buffer",
            EventKind::GuardDrain { .. } => "guard_drain",
            EventKind::RedContribute => "red_contribute",
            EventKind::RedDeliver => "red_deliver",
            EventKind::BcastFanout { .. } => "bcast_fanout",
            EventKind::MigrateOut { .. } => "migrate_out",
            EventKind::MigrateIn { .. } => "migrate_in",
            EventKind::LbEpoch { .. } => "lb_epoch",
            EventKind::Ckpt { .. } => "ckpt",
            EventKind::Recovery { .. } => "recovery",
            EventKind::StaleDrop => "stale_drop",
            EventKind::Mark { .. } => "mark",
        }
    }
}

/// A timestamped event on one PE's clock (see crate docs for clock rules).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Nanoseconds on the owning PE's scheduler clock.
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Fixed-capacity overwrite-oldest event buffer.
///
/// A default-constructed ring has zero capacity and records nothing (the
/// tracer only pushes at full-capture level, which always builds a ring
/// via [`Ring::new`]).
#[derive(Debug, Default)]
pub struct Ring {
    buf: Vec<Event>,
    cap: usize,
    start: usize,
    dropped: u64,
}

impl Ring {
    /// Ring holding at most `cap.max(1)` events.
    pub fn new(cap: usize) -> Ring {
        Ring {
            buf: Vec::new(),
            cap: cap.max(1),
            start: 0,
            dropped: 0,
        }
    }

    /// Append, overwriting (and counting) the oldest event when full.
    pub fn push(&mut self, ev: Event) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
            return;
        }
        if let Some(slot) = self.buf.get_mut(self.start) {
            *slot = ev;
            self.start = (self.start + 1) % self.cap;
        }
        self.dropped += 1;
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// How many events were overwritten.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consume the ring: events in record order plus the drop count.
    pub fn into_parts(mut self) -> (Vec<Event>, u64) {
        self.buf.rotate_left(self.start);
        (self.buf, self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mark(ts: u64) -> Event {
        Event {
            ts_ns: ts,
            kind: EventKind::Mark {
                label: format!("m{ts}"),
            },
        }
    }

    #[test]
    fn ring_keeps_newest_in_order() {
        let mut r = Ring::new(4);
        for ts in 0..10 {
            r.push(mark(ts));
        }
        let (evs, dropped) = r.into_parts();
        assert_eq!(dropped, 6);
        let ts: Vec<u64> = evs.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![6, 7, 8, 9]);
    }

    #[test]
    fn ring_under_capacity_drops_nothing() {
        let mut r = Ring::new(8);
        for ts in 0..3 {
            r.push(mark(ts));
        }
        assert_eq!(r.len(), 3);
        let (evs, dropped) = r.into_parts();
        assert_eq!(dropped, 0);
        assert_eq!(evs.len(), 3);
    }

    #[test]
    fn default_ring_records_nothing() {
        let mut r = Ring::default();
        r.push(mark(1));
        let (evs, dropped) = r.into_parts();
        assert!(evs.is_empty());
        assert_eq!(dropped, 1);
    }

    #[test]
    fn kind_names_are_distinct() {
        let kinds = [
            EventKind::IdleBegin,
            EventKind::IdleEnd,
            EventKind::RedContribute,
            EventKind::RedDeliver,
            EventKind::MsgSend {
                bytes: 1,
                remote: true,
            },
            EventKind::MsgRecv { bytes: 1 },
        ];
        let names: std::collections::BTreeSet<&str> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), kinds.len());
    }
}
