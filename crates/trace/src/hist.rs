//! HDR-style log-linear histograms with bounded-relative-error quantiles.
//!
//! A [`Hist`] buckets `u64` samples (nanoseconds, in this crate's use) on a
//! log-linear grid: values below `2^sub_bits` get one exact bucket each;
//! above that, every power-of-two range is split into `2^sub_bits` linear
//! sub-buckets. A bucket's bounds therefore differ by at most a factor of
//! `1 + 2^-sub_bits`, so [`Hist::quantile`] — which returns the midpoint of
//! the bucket holding the requested rank — is off from the true rank
//! statistic by at most [`Hist::max_rel_error`] (relative), independent of
//! the sample distribution. Histograms with equal `sub_bits` merge by
//! bucket-wise addition (exact); unequal grids merge by re-bucketing
//! midpoints, which only widens the error by one grid step.
//!
//! The bucket array is dense and fixed-size (`(64 - sub_bits + 1) *
//! 2^sub_bits` slots — 15 KiB at the default `sub_bits = 5`), so `record`
//! is two shifts and an add: cheap enough to sit on the per-delivery and
//! per-entry paths, and the memory bound is O(1) in the sample count —
//! the property the cluster-scale telemetry layer needs.

/// Default sub-bucket resolution: 2^5 = 32 linear sub-buckets per octave,
/// giving a worst-case quantile error of 1/32 ≈ 3.1% (midpoint estimates
/// halve that in practice).
pub const DEFAULT_SUB_BITS: u32 = 5;

/// A mergeable log-linear histogram over `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    sub_bits: u32,
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist::new(DEFAULT_SUB_BITS)
    }
}

impl Hist {
    /// Build a histogram with `2^sub_bits` sub-buckets per octave
    /// (clamped to `1..=10`).
    pub fn new(sub_bits: u32) -> Hist {
        let b = sub_bits.clamp(1, 10);
        let buckets = ((64 - b + 1) as usize) << b;
        Hist {
            sub_bits: b,
            counts: vec![0; buckets],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The configured sub-bucket resolution.
    pub fn sub_bits(&self) -> u32 {
        self.sub_bits
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact (saturating) sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.sum / self.total
        }
    }

    /// Worst-case relative error of [`Hist::quantile`] against the true
    /// rank statistic: one bucket width over the bucket's lower bound,
    /// i.e. `2^-sub_bits`.
    pub fn max_rel_error(&self) -> f64 {
        1.0 / (1u64 << self.sub_bits) as f64
    }

    fn index_of(&self, v: u64) -> usize {
        let b = self.sub_bits;
        if v < (1 << b) {
            v as usize
        } else {
            let e = 63 - v.leading_zeros();
            let sub = ((v >> (e - b)) as usize) & ((1 << b) - 1);
            ((((e - b + 1) as usize) << b) | sub).min(self.counts.len() - 1)
        }
    }

    /// `[lower, upper]` value bounds of bucket `idx`.
    fn bounds(&self, idx: usize) -> (u64, u64) {
        let b = self.sub_bits;
        if idx < (1 << b) {
            (idx as u64, idx as u64)
        } else {
            let octave = (idx >> b) as u32 + b - 1;
            let sub = (idx & ((1 << b) - 1)) as u64;
            let width = 1u64 << (octave - b);
            let lo = ((1u64 << b) + sub) << (octave - b);
            // `width - 1` first: the top bucket's upper bound is exactly
            // `u64::MAX`, so `lo + width` would wrap.
            (lo, lo + (width - 1))
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` identical samples.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = self.index_of(v);
        self.counts[idx] += n;
        self.total += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merge another histogram into this one. Equal grids add bucket-wise
    /// (exact); a different grid is folded in by re-bucketing midpoints.
    pub fn merge(&mut self, other: &Hist) {
        if other.total == 0 {
            return;
        }
        if other.sub_bits == self.sub_bits {
            for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
                *dst += src;
            }
            self.total += other.total;
        } else {
            for (idx, &n) in other.counts.iter().enumerate() {
                if n > 0 {
                    let (lo, hi) = other.bounds(idx);
                    let mid = lo + (hi - lo) / 2;
                    let i = self.index_of(mid);
                    self.counts[i] += n;
                    self.total += n;
                }
            }
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (nearest-rank, `0.0 ..= 1.0`) as the midpoint of
    /// the bucket containing that rank; `None` when empty. The estimate is
    /// within [`Hist::max_rel_error`] of the true rank statistic.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        // The extreme ranks are tracked exactly — answer them exactly.
        if rank == 1 {
            return Some(self.min);
        }
        if rank == self.total {
            return Some(self.max);
        }
        let mut seen = 0u64;
        for (idx, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (lo, hi) = self.bounds(idx);
                // Clamp to the exact extremes: the top and bottom buckets
                // may extend past anything actually recorded.
                return Some((lo + (hi - lo) / 2).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Non-empty buckets as `(lower, upper, count)`, in value order.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts.iter().enumerate().filter_map(|(i, &n)| {
            (n > 0).then(|| {
                let (lo, hi) = self.bounds(i);
                (lo, hi, n)
            })
        })
    }

    /// Order-sensitive FNV-1a digest over the bucket contents (grid,
    /// non-empty buckets, total) — the logical-identity fingerprint the
    /// telemetry determinism suites compare. Timing-free only if the
    /// recorded samples themselves are deterministic.
    pub fn digest(&self) -> u64 {
        let mut d = crate::fnv::Fnv::new();
        d.eat_u64(u64::from(self.sub_bits));
        d.eat_u64(self.total);
        for (i, &n) in self.counts.iter().enumerate() {
            if n > 0 {
                d.eat_u64(i as u64);
                d.eat_u64(n);
            }
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Hist::new(5);
        for v in 0..32 {
            h.record(v);
        }
        assert_eq!(h.count(), 32);
        for v in 0..32u64 {
            let (lo, hi, n) = h.buckets().nth(v as usize).unwrap();
            assert_eq!((lo, hi, n), (v, v, 1));
        }
    }

    #[test]
    fn quantile_bounds_and_extremes() {
        let mut h = Hist::default();
        for v in [10, 20, 30, 40, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(10));
        let q = h.quantile(1.0).unwrap() as f64;
        assert!((q - 1e6).abs() <= 1e6 * h.max_rel_error());
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 1_000_000);
        assert!(Hist::default().quantile(0.5).is_none());
    }

    #[test]
    fn merge_equal_grids_is_exact() {
        let mut a = Hist::new(5);
        let mut b = Hist::new(5);
        for v in [1u64, 100, 10_000] {
            a.record(v);
            b.record(v * 3);
        }
        let mut all = Hist::new(5);
        for v in [1u64, 100, 10_000, 3, 300, 30_000] {
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 6);
        assert_eq!(a.digest(), all.digest());
        assert_eq!(a.sum(), all.sum());
    }

    #[test]
    fn merge_unequal_grids_rebuckets() {
        let mut coarse = Hist::new(2);
        coarse.record(1_000);
        let mut fine = Hist::new(5);
        fine.record(5);
        fine.merge(&coarse);
        assert_eq!(fine.count(), 2);
        let q = fine.quantile(1.0).unwrap();
        // One extra grid step of slack for the re-bucketing.
        assert!((q as f64 - 1_000.0).abs() <= 1_000.0 * 2.0 * coarse.max_rel_error());
    }

    #[test]
    fn top_bucket_saturates() {
        let mut h = Hist::new(5);
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.quantile(0.5).is_some());
    }
}
