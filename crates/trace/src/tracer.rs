//! Per-PE recorder: always-on counters, cheap aggregates, optional ring.
//!
//! One [`PeTracer`] lives inside every PE scheduler. The scheduler checks
//! [`PeTracer::enabled`] / [`PeTracer::full`] before computing hook
//! arguments, so an `Off` tracer costs one branch per boundary; the
//! [`Counters`] block alone is maintained unconditionally because
//! quiescence detection and `RunReport` read it.

use std::collections::BTreeMap;

use crate::event::{EntryKind, Event, EventKind, Ring};
use crate::hist::Hist;
use crate::report::{EntrySummary, PePerf, PeTrace};
use crate::summary::{BinClass, SummaryRec};
use crate::{TraceConfig, TraceLevel};

/// Message/byte counters (quiescence detection + `RunReport`). Maintained
/// unconditionally, even at [`TraceLevel::Off`].
#[derive(Default, Debug, Clone, Copy)]
pub struct Counters {
    /// QD-counted envelopes emitted by this PE.
    pub sent: u64,
    /// QD-counted envelopes handled by this PE.
    pub processed: u64,
    /// Bytes shipped to *other* PEs (same-PE sends move no wire bytes).
    pub bytes: u64,
    /// Entry-method activations.
    pub entries: u64,
    /// Chares migrated away from this PE.
    pub migrations: u64,
}

/// How charged scheduler time is classified in the utilization breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkClass {
    /// Entry-method / coroutine-segment execution — the useful work.
    Entry,
    /// Runtime bookkeeping: codec work, dynamic-dispatch decode, metering.
    Overhead,
}

/// Per-(chare type, entry kind) call statistics with a log-linear
/// execution-time histogram ([`Hist`]): `stat.hist.quantile(0.99)` answers
/// the p99 question the serving scenario's SLOs need, with bounded
/// relative error and exact cross-PE merging.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EntryStat {
    /// Activations recorded.
    pub calls: u64,
    /// Total charged nanoseconds.
    pub total_ns: u64,
    /// Longest single activation.
    pub max_ns: u64,
    /// Activation-time distribution (quantiles via [`Hist::quantile`]).
    pub hist: Hist,
}

impl EntryStat {
    /// Record one activation of `ns` nanoseconds.
    pub fn record(&mut self, ns: u64) {
        self.calls += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
        self.hist.record(ns);
    }

    /// Fold another stat block (same entry, another PE) into this one.
    pub fn merge(&mut self, other: &EntryStat) {
        self.calls += other.calls;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        self.hist.merge(&other.hist);
    }

    /// Mean activation time (0 when nothing was recorded).
    pub fn mean_ns(&self) -> u64 {
        if self.calls == 0 {
            0
        } else {
            self.total_ns / self.calls
        }
    }
}

/// Per-PE trace recorder. `Default` yields an `Off` tracer (used by
/// `mem::take` when the scheduler finishes and hands its trace over).
pub struct PeTracer {
    level: TraceLevel,
    /// Always-on counters (see [`Counters`]).
    pub counters: Counters,
    /// Same-PE envelopes emitted.
    pub sent_local: u64,
    /// Cross-PE envelopes emitted.
    pub sent_remote: u64,
    /// Bytes of same-PE sends (delivered by reference, no wire copy).
    pub bytes_local: u64,
    /// Bytes received by this scheduler (all sources).
    pub bytes_recv: u64,
    /// Messages that missed their when-guard and were buffered.
    pub guard_buffered: u64,
    /// Buffered messages later drained to their entry.
    pub guard_drained: u64,
    /// Reduction contributions made on this PE.
    pub red_contributes: u64,
    /// Finished reductions delivered at a root on this PE.
    pub red_delivers: u64,
    /// Broadcasts relayed down the spanning tree by this PE.
    pub bcast_relays: u64,
    /// Checkpoint bytes written by this PE.
    pub ckpt_bytes: u64,
    /// Envelopes from a previous recovery epoch discarded by this PE.
    /// Maintained unconditionally (like [`Counters`]): recovery audits
    /// need it even at trace level off.
    pub stale_discarded: u64,
    /// Aggregation batch frames flushed by this PE — the *physical*
    /// envelope count, next to the *logical* `sent_remote` (which counts
    /// each coalesced message individually). Maintained unconditionally:
    /// the batching tests audit it even at trace level off.
    pub batches_sent: u64,
    /// Logical messages carried inside those batches.
    pub batch_msgs: u64,
    busy_ns: u64,
    idle_ns: u64,
    overhead_ns: u64,
    entries: BTreeMap<(u32, EntryKind), EntryStat>,
    /// Send→deliver latency distribution (one sample per QD-counted
    /// delivery, on the receiver's clock; level ≥ counters).
    latency: Hist,
    /// Bounded time-bin profile (level ≥ summary).
    summary: Option<Box<SummaryRec>>,
    ring: Ring,
    /// Last ring timestamp; [`PeTracer::push`] clamps to it so the ring
    /// stays monotone even when a coroutine begin is back-dated
    /// (`end - measured`) past an already-recorded event.
    last_ts: u64,
}

impl Default for PeTracer {
    /// An `Off` tracer regardless of `TraceLevel::default()` (which is
    /// `Counters`, the *config* default): a taken-from tracer must record
    /// nothing.
    fn default() -> Self {
        PeTracer {
            level: TraceLevel::Off,
            counters: Counters::default(),
            sent_local: 0,
            sent_remote: 0,
            bytes_local: 0,
            bytes_recv: 0,
            guard_buffered: 0,
            guard_drained: 0,
            red_contributes: 0,
            red_delivers: 0,
            bcast_relays: 0,
            ckpt_bytes: 0,
            stale_discarded: 0,
            batches_sent: 0,
            batch_msgs: 0,
            busy_ns: 0,
            idle_ns: 0,
            overhead_ns: 0,
            entries: BTreeMap::new(),
            latency: Hist::default(),
            summary: None,
            ring: Ring::default(),
            last_ts: 0,
        }
    }
}

impl PeTracer {
    /// Build a tracer for one PE from the run's config.
    pub fn new(cfg: &TraceConfig) -> PeTracer {
        PeTracer {
            level: cfg.level,
            ring: if cfg.level == TraceLevel::Full {
                Ring::new(cfg.ring_capacity)
            } else {
                Ring::default()
            },
            summary: (cfg.level >= TraceLevel::Summary)
                .then(|| Box::new(SummaryRec::new(cfg.quantum_ns, cfg.max_bins))),
            ..PeTracer::default()
        }
    }

    /// Aggregates (and everything above) are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.level >= TraceLevel::Counters
    }

    /// Summary time-binning (and everything above) is on.
    #[inline]
    pub fn summary_on(&self) -> bool {
        self.level >= TraceLevel::Summary
    }

    /// Full event capture is on.
    #[inline]
    pub fn full(&self) -> bool {
        self.level == TraceLevel::Full
    }

    /// Record a timestamped event (no-op below full capture). Timestamps
    /// are clamped to be non-decreasing per PE.
    #[inline]
    pub fn push(&mut self, ts_ns: u64, kind: EventKind) {
        if self.level == TraceLevel::Full {
            let ts = ts_ns.max(self.last_ts);
            self.last_ts = ts;
            self.ring.push(Event { ts_ns: ts, kind });
        }
    }

    /// Classify `ns` of charged scheduler time.
    #[inline]
    pub fn work(&mut self, class: WorkClass, ns: u64) {
        if self.level < TraceLevel::Counters {
            return;
        }
        match class {
            WorkClass::Entry => self.busy_ns += ns,
            WorkClass::Overhead => self.overhead_ns += ns,
        }
    }

    /// Classify `ns` of charged time ending at clock stamp `end_ns`, so
    /// summary mode can bin the span `[end_ns - ns, end_ns)`. Equivalent
    /// to [`PeTracer::work`] below summary level.
    #[inline]
    pub fn work_at(&mut self, class: WorkClass, ns: u64, end_ns: u64) {
        self.work(class, ns);
        if ns > 0 {
            if let Some(s) = self.summary.as_deref_mut() {
                let bc = match class {
                    WorkClass::Entry => BinClass::Busy,
                    WorkClass::Overhead => BinClass::Overhead,
                };
                s.span(bc, end_ns.saturating_sub(ns), end_ns);
            }
        }
    }

    /// Record one send→deliver latency sample (receiver side; level ≥
    /// counters).
    #[inline]
    pub fn latency(&mut self, ns: u64) {
        if self.level >= TraceLevel::Counters {
            self.latency.record(ns);
        }
    }

    /// Bin emitted-message counts at `ts_ns` (no-op below summary level;
    /// the caller keeps the logical counters itself).
    #[inline]
    pub fn summary_msg(&mut self, ts_ns: u64, msgs: u64, bytes: u64) {
        if let Some(s) = self.summary.as_deref_mut() {
            s.count(ts_ns, 0, msgs, bytes);
        }
    }

    /// Record one entry-method activation: per-entry stats, plus an
    /// adjacent begin/end event pair under full capture. `measured_ns` is
    /// the charged execution time; `begin_ns`/`end_ns` are clock stamps.
    pub fn entry(
        &mut self,
        begin_ns: u64,
        end_ns: u64,
        measured_ns: u64,
        ctype: u32,
        kind: EntryKind,
    ) {
        if self.level < TraceLevel::Counters {
            return;
        }
        self.entries
            .entry((ctype, kind))
            .or_default()
            .record(measured_ns);
        if let Some(s) = self.summary.as_deref_mut() {
            // Busy time is binned by `work_at` (the charge path); here only
            // the activation count, stamped where the activation ended.
            s.count(end_ns.max(begin_ns), 1, 0, 0);
        }
        if self.level == TraceLevel::Full {
            self.push(begin_ns, EventKind::EntryBegin { ctype, kind });
            self.push(end_ns.max(begin_ns), EventKind::EntryEnd { ctype, kind });
        }
    }

    /// Record an idle period `[begin_ns, end_ns)` on the scheduler clock.
    #[inline]
    pub fn idle(&mut self, begin_ns: u64, end_ns: u64) {
        if self.level < TraceLevel::Counters {
            return;
        }
        let d = end_ns.saturating_sub(begin_ns);
        self.idle_ns += d;
        if d > 0 {
            if let Some(s) = self.summary.as_deref_mut() {
                s.span(BinClass::Idle, begin_ns, end_ns);
            }
        }
        if self.level == TraceLevel::Full && d > 0 {
            self.push(begin_ns, EventKind::IdleBegin);
            self.push(end_ns, EventKind::IdleEnd);
        }
    }

    /// Aggregate one emitted envelope by path (the caller keeps
    /// [`Counters::sent`]/[`Counters::bytes`] up to date unconditionally).
    #[inline]
    pub fn msg_send(&mut self, bytes: u64, remote: bool) {
        if self.level < TraceLevel::Counters {
            return;
        }
        if remote {
            self.sent_remote += 1;
        } else {
            self.sent_local += 1;
            self.bytes_local += bytes;
        }
    }

    /// Aggregate one received envelope.
    #[inline]
    pub fn msg_recv(&mut self, bytes: u64) {
        if self.level >= TraceLevel::Counters {
            self.bytes_recv += bytes;
        }
    }

    /// Record one aggregation batch flush carrying `msgs` coalesced
    /// messages. Unconditional, like [`Counters`] — the logical/physical
    /// send ratio must be auditable at any trace level.
    #[inline]
    pub fn batch_flush(&mut self, msgs: u64) {
        self.batches_sent += 1;
        self.batch_msgs += msgs;
    }

    /// Live time-split `(busy, idle, overhead)` ns so far — what the
    /// telemetry frame sampler reads mid-run.
    pub fn time_split(&self) -> (u64, u64, u64) {
        (self.busy_ns, self.idle_ns, self.overhead_ns)
    }

    /// Merged execution-time histogram across all entries so far.
    pub fn exec_hist(&self) -> Hist {
        let mut h = Hist::default();
        for stat in self.entries.values() {
            h.merge(&stat.hist);
        }
        h
    }

    /// The send→deliver latency histogram recorded so far.
    pub fn latency_hist(&self) -> &Hist {
        &self.latency
    }

    /// Finish the PE: fold unattributed time into overhead and produce the
    /// per-PE trace. `name_of` resolves a chare type id to a display name.
    pub fn finish(
        mut self,
        pe: usize,
        wall_ns: u64,
        bytes_encoded: u64,
        name_of: impl Fn(u32) -> String,
    ) -> PeTrace {
        let enabled = self.level >= TraceLevel::Counters;
        let captured = self.level == TraceLevel::Full;
        let (events, dropped) = self.ring.into_parts();
        let (busy_ns, idle_ns, mut overhead_ns) = if enabled {
            (self.busy_ns, self.idle_ns, self.overhead_ns)
        } else {
            (0, 0, 0)
        };
        if enabled {
            // Unattributed scheduler time (dispatch machinery, channel
            // plumbing, coroutine rendezvous) becomes overhead so the
            // decomposition sums to wall time exactly.
            overhead_ns += wall_ns.saturating_sub(busy_ns + idle_ns + overhead_ns);
        }
        let summary = self.summary.take().map(|mut s| {
            // Reconcile: any time that reached the counters without being
            // span-binned (plus the slack fold above) lands in the tail
            // bin, so the summary's per-class totals equal the PePerf
            // totals to the nanosecond — the exactness `charm-perf`
            // re-derives from the artifact.
            let (sb, si, so) = s.totals();
            let tail = wall_ns.saturating_sub(1);
            s.charge_point(BinClass::Busy, busy_ns.saturating_sub(sb), tail);
            s.charge_point(BinClass::Idle, idle_ns.saturating_sub(si), tail);
            s.charge_point(BinClass::Overhead, overhead_ns.saturating_sub(so), tail);
            s.finish()
        });
        let c = self.counters;
        let perf = PePerf {
            pe,
            wall_ns,
            busy_ns,
            idle_ns,
            overhead_ns,
            msgs_sent: c.sent,
            msgs_processed: c.processed,
            sent_remote: self.sent_remote,
            sent_local: self.sent_local,
            bytes_sent_remote: c.bytes,
            bytes_sent_local: self.bytes_local,
            bytes_recv: self.bytes_recv,
            bytes_encoded,
            entries: c.entries,
            migrations: c.migrations,
            guard_buffered: self.guard_buffered,
            guard_drained: self.guard_drained,
            red_contributes: self.red_contributes,
            red_delivers: self.red_delivers,
            bcast_relays: self.bcast_relays,
            ckpt_bytes: self.ckpt_bytes,
            stale_discarded: self.stale_discarded,
            batches_sent: self.batches_sent,
            batch_msgs: self.batch_msgs,
            // Fast-path counters live in runtime-side structures (encode
            // pool, dispatch cache); the scheduler assigns them onto the
            // finished trace. Zero here keeps `finish` signature-stable.
            slab_hits: 0,
            slab_misses: 0,
            inline_payloads: 0,
            dispatch_hits: 0,
            dispatch_misses: 0,
            events_dropped: dropped,
            fwd_hops: 0,
            lb_peak_stats: 0,
        };
        let entries = std::mem::take(&mut self.entries)
            .into_iter()
            .map(|((ctype, kind), stat)| EntrySummary {
                ctype,
                name: name_of(ctype),
                kind,
                stat,
            })
            .collect();
        PeTrace {
            perf,
            entries,
            events,
            latency: std::mem::take(&mut self.latency),
            summary,
            telemetry: Vec::new(),
            enabled,
            captured,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_tracer_keeps_counters_only() {
        let mut t = PeTracer::new(&TraceConfig::off());
        t.counters.sent += 3;
        t.work(WorkClass::Entry, 100);
        t.idle(0, 50);
        t.entry(0, 10, 10, 0, EntryKind::Receive);
        t.msg_send(8, true);
        let p = t.finish(0, 1_000, 0, |_| String::new());
        assert!(!p.enabled && !p.captured);
        assert_eq!(p.perf.msgs_sent, 3);
        assert_eq!(p.perf.busy_ns + p.perf.idle_ns + p.perf.overhead_ns, 0);
        assert!(p.entries.is_empty() && p.events.is_empty());
    }

    #[test]
    fn counters_level_decomposition_sums_to_wall() {
        let mut t = PeTracer::new(&TraceConfig::counters());
        t.work(WorkClass::Entry, 400);
        t.work(WorkClass::Overhead, 100);
        t.idle(0, 300);
        let p = t.finish(1, 1_000, 0, |_| String::new());
        assert!(p.enabled && !p.captured);
        assert_eq!(p.perf.busy_ns, 400);
        assert_eq!(p.perf.idle_ns, 300);
        // 100 charged + 200 slack folded in.
        assert_eq!(p.perf.overhead_ns, 300);
        assert_eq!(
            p.perf.busy_ns + p.perf.idle_ns + p.perf.overhead_ns,
            p.perf.wall_ns
        );
    }

    #[test]
    fn entry_stats_and_histogram() {
        let mut s = EntryStat::default();
        s.record(0);
        s.record(1);
        s.record(1024);
        s.record(u64::MAX);
        assert_eq!(s.calls, 4);
        assert_eq!(s.hist.count(), 4);
        assert_eq!(s.hist.min(), 0);
        assert_eq!(s.max_ns, u64::MAX);
        // Quantiles answer within the grid's relative-error bound.
        let p50 = s.hist.quantile(0.5).unwrap();
        assert!((p50 as f64 - 1.0).abs() <= 1.0 * s.hist.max_rel_error() + 0.5);
        let mut other = EntryStat::default();
        other.record(1024);
        s.merge(&other);
        assert_eq!(s.calls, 5);
        assert_eq!(s.hist.count(), 5);
    }

    #[test]
    fn full_capture_pairs_and_names() {
        let mut t = PeTracer::new(&TraceConfig::full().ring_capacity(16));
        t.entry(10, 30, 20, 7, EntryKind::Receive);
        let p = t.finish(0, 100, 0, |ct| format!("Chare{ct}"));
        assert!(p.captured);
        assert_eq!(p.events.len(), 2);
        assert_eq!(p.entries.len(), 1);
        assert_eq!(p.entries[0].name, "Chare7");
        assert_eq!(p.entries[0].stat.calls, 1);
    }

    #[test]
    fn back_dated_begin_is_clamped_monotone() {
        let mut t = PeTracer::new(&TraceConfig::full());
        t.push(100, EventKind::MsgRecv { bytes: 8 });
        // Coroutine segment back-dates its begin before the recv above.
        t.entry(60, 90, 30, 1, EntryKind::Coroutine);
        let p = t.finish(0, 200, 0, |_| String::new());
        let ts: Vec<u64> = p.events.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![100, 100, 100]);
    }

    #[test]
    fn batch_flush_counts_survive_off_level() {
        let mut t = PeTracer::new(&TraceConfig::off());
        t.batch_flush(8);
        t.batch_flush(3);
        let p = t.finish(0, 100, 0, |_| String::new());
        assert_eq!(p.perf.batches_sent, 2);
        assert_eq!(p.perf.batch_msgs, 11);
        assert!((p.perf.batch_occupancy() - 5.5).abs() < 1e-9);
    }

    #[test]
    fn summary_level_bins_and_conserves_wall() {
        let cfg = TraceConfig::summary().quantum_ns(100).max_bins(4);
        let mut t = PeTracer::new(&cfg);
        assert!(t.summary_on() && !t.full());
        t.work_at(WorkClass::Entry, 150, 150);
        t.idle(150, 400);
        t.work_at(WorkClass::Overhead, 50, 450);
        t.entry(100, 150, 150, 1, EntryKind::Receive);
        t.summary_msg(200, 3, 96);
        t.latency(40);
        let p = t.finish(0, 1_000, 0, |_| String::new());
        let s = p.summary.as_ref().expect("summary profile present");
        assert!(s.bins.len() <= 4);
        let (b, i, o) = s.totals();
        assert_eq!(b, p.perf.busy_ns);
        assert_eq!(i, p.perf.idle_ns);
        assert_eq!(o, p.perf.overhead_ns);
        assert_eq!(b + i + o, p.perf.wall_ns, "quanta sum exactly to wall");
        let msgs: u64 = s.bins.iter().map(|x| x.msgs).sum();
        let entries: u64 = s.bins.iter().map(|x| x.entries).sum();
        assert_eq!((msgs, entries), (3, 1));
        assert_eq!(p.latency.count(), 1);
    }

    #[test]
    fn counters_level_has_no_summary() {
        let mut t = PeTracer::new(&TraceConfig::counters());
        t.work_at(WorkClass::Entry, 10, 10);
        let p = t.finish(0, 100, 0, |_| String::new());
        assert!(p.summary.is_none());
    }

    #[test]
    fn mem_take_yields_off_tracer() {
        let mut t = PeTracer::new(&TraceConfig::full());
        let taken = std::mem::take(&mut t);
        assert!(taken.full());
        assert!(!t.full() && !t.enabled());
    }
}
