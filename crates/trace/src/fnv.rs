//! Order-sensitive FNV-1a hashing, shared by the logical-identity digests
//! (telemetry frames, histogram fingerprints). Not a content-addressed or
//! cryptographic hash — just a stable, dependency-free fingerprint two
//! deterministic runs can be required to agree on.

/// An incremental FNV-1a 64-bit hasher.
#[derive(Debug, Clone)]
pub struct Fnv(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

impl Fnv {
    /// Start a fresh digest.
    pub fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    /// Fold one byte in.
    #[inline]
    pub fn eat(&mut self, byte: u8) {
        self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }

    /// Fold a `u64` in, little-endian.
    pub fn eat_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.eat(b);
        }
    }

    /// Fold a string in, length-prefixed so concatenations can't collide
    /// by sliding bytes between adjacent fields.
    pub fn eat_str(&mut self, s: &str) {
        self.eat_u64(s.len() as u64);
        for b in s.bytes() {
            self.eat(b);
        }
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_and_framing_sensitive() {
        let mut a = Fnv::new();
        a.eat_str("ab");
        a.eat_str("c");
        let mut b = Fnv::new();
        b.eat_str("a");
        b.eat_str("bc");
        assert_ne!(a.finish(), b.finish());
        let mut c = Fnv::new();
        c.eat_u64(1);
        c.eat_u64(2);
        let mut d = Fnv::new();
        d.eat_u64(2);
        d.eat_u64(1);
        assert_ne!(c.finish(), d.finish());
    }
}
