//! Streaming summary mode: Projections-style bounded time-bin profiles.
//!
//! [`TraceLevel::Summary`](crate::TraceLevel::Summary) replaces the
//! O(events) full-capture ring with a fixed budget of wall-clock *quanta*:
//! each bin accumulates busy/idle/overhead nanoseconds plus entry, message
//! and byte counts for one `quantum_ns`-wide window of the PE's clock.
//! When a timestamp lands past the last affordable bin, adjacent bins are
//! merged pairwise and the quantum doubles (exactly Projections' summary
//! compression), so memory stays O(`max_bins`) for any run length while
//! the profile keeps covering the whole run.
//!
//! Two conservation laws make the artifact trustworthy:
//!
//! * **Exact time**: spans are split across quantum boundaries with integer
//!   nanosecond arithmetic, so the per-class sum over bins equals the
//!   recorded busy/idle/overhead totals *exactly* (`charm-perf` checks its
//!   parse against `RunReport::pe_stats` on this).
//! * **Exact counts**: entry/msg/byte counts are binned at their event
//!   timestamp and never rescaled by merging.

/// One wall-clock quantum of a PE's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SummaryBin {
    /// Entry-method execution nanoseconds inside this quantum.
    pub busy_ns: u64,
    /// Idle nanoseconds.
    pub idle_ns: u64,
    /// Runtime-overhead nanoseconds.
    pub overhead_ns: u64,
    /// Entry activations that *ended* in this quantum.
    pub entries: u64,
    /// Messages emitted in this quantum.
    pub msgs: u64,
    /// Payload bytes emitted in this quantum.
    pub bytes: u64,
}

impl SummaryBin {
    fn absorb(&mut self, other: &SummaryBin) {
        self.busy_ns += other.busy_ns;
        self.idle_ns += other.idle_ns;
        self.overhead_ns += other.overhead_ns;
        self.entries += other.entries;
        self.msgs += other.msgs;
        self.bytes += other.bytes;
    }
}

/// Which per-class accumulator a span charges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinClass {
    /// Entry-method / coroutine execution.
    Busy,
    /// Waiting for work.
    Idle,
    /// Runtime bookkeeping.
    Overhead,
}

/// The live recorder owned by a `PeTracer` at summary level.
#[derive(Debug, Clone)]
pub struct SummaryRec {
    quantum_ns: u64,
    max_bins: usize,
    bins: Vec<SummaryBin>,
    merges: u32,
}

impl SummaryRec {
    /// Build a recorder with the given initial quantum width and bin
    /// budget (both clamped to sane minimums).
    pub fn new(quantum_ns: u64, max_bins: usize) -> SummaryRec {
        SummaryRec {
            quantum_ns: quantum_ns.max(1),
            max_bins: max_bins.max(2),
            bins: Vec::new(),
            merges: 0,
        }
    }

    /// Current quantum width (doubles on each pairwise merge).
    pub fn quantum_ns(&self) -> u64 {
        self.quantum_ns
    }

    /// Ensure the bin containing `ts_ns` exists, compressing first if the
    /// budget would overflow.
    fn bin_mut(&mut self, ts_ns: u64) -> &mut SummaryBin {
        while ts_ns / self.quantum_ns >= self.max_bins as u64 {
            // Pairwise merge: bins 2i and 2i+1 collapse into bin i, and the
            // quantum doubles. Counts and nanoseconds are summed, never
            // rescaled, so every conservation law survives compression.
            let merged: Vec<SummaryBin> = self
                .bins
                .chunks(2)
                .map(|pair| {
                    let mut m = pair[0];
                    if let Some(b) = pair.get(1) {
                        m.absorb(b);
                    }
                    m
                })
                .collect();
            self.bins = merged;
            self.quantum_ns *= 2;
            self.merges += 1;
        }
        let idx = (ts_ns / self.quantum_ns) as usize;
        if self.bins.len() <= idx {
            self.bins.resize(idx + 1, SummaryBin::default());
        }
        &mut self.bins[idx]
    }

    /// Charge the span `[begin_ns, end_ns)` to `class`, split exactly
    /// across quantum boundaries (the total charged equals
    /// `end_ns - begin_ns` to the nanosecond).
    pub fn span(&mut self, class: BinClass, begin_ns: u64, end_ns: u64) {
        let mut at = begin_ns.min(end_ns);
        let end = end_ns.max(begin_ns);
        if at == end {
            return;
        }
        // Touch the last bin first so compression (which changes the
        // quantum) happens before any partial charge is placed.
        self.bin_mut(end - 1);
        while at < end {
            let q = self.quantum_ns;
            let next = (at / q + 1) * q;
            let stop = next.min(end);
            let d = stop - at;
            let bin = self.bin_mut(at);
            match class {
                BinClass::Busy => bin.busy_ns += d,
                BinClass::Idle => bin.idle_ns += d,
                BinClass::Overhead => bin.overhead_ns += d,
            }
            at = stop;
        }
    }

    /// Bin point counts (entry activations, messages, bytes) at `ts_ns`.
    pub fn count(&mut self, ts_ns: u64, entries: u64, msgs: u64, bytes: u64) {
        let bin = self.bin_mut(ts_ns);
        bin.entries += entries;
        bin.msgs += msgs;
        bin.bytes += bytes;
    }

    /// Per-class nanosecond totals `(busy, idle, overhead)` binned so far.
    pub fn totals(&self) -> (u64, u64, u64) {
        self.bins.iter().fold((0, 0, 0), |(b, i, o), bin| {
            (b + bin.busy_ns, i + bin.idle_ns, o + bin.overhead_ns)
        })
    }

    /// Charge `ns` of `class` entirely into the bin containing `ts_ns`,
    /// without span splitting — the end-of-run reconciliation hook that
    /// folds any not-individually-binned remainder into the tail so the
    /// summary's per-class totals equal the tracer's counters exactly.
    pub fn charge_point(&mut self, class: BinClass, ns: u64, ts_ns: u64) {
        if ns == 0 {
            return;
        }
        let bin = self.bin_mut(ts_ns);
        match class {
            BinClass::Busy => bin.busy_ns += ns,
            BinClass::Idle => bin.idle_ns += ns,
            BinClass::Overhead => bin.overhead_ns += ns,
        }
    }

    /// Freeze into the end-of-run artifact.
    pub fn finish(self) -> PeSummary {
        PeSummary {
            quantum_ns: self.quantum_ns,
            merges: self.merges,
            bins: self.bins,
        }
    }
}

/// One PE's frozen summary profile.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PeSummary {
    /// Final quantum width in nanoseconds.
    pub quantum_ns: u64,
    /// How many pairwise compressions ran (0 = the run fit the budget).
    pub merges: u32,
    /// The time bins, in clock order from t=0.
    pub bins: Vec<SummaryBin>,
}

impl PeSummary {
    /// Per-class totals `(busy, idle, overhead)` summed over all bins.
    pub fn totals(&self) -> (u64, u64, u64) {
        self.bins.iter().fold((0, 0, 0), |(b, i, o), bin| {
            (b + bin.busy_ns, i + bin.idle_ns, o + bin.overhead_ns)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_split_exactly_across_quanta() {
        let mut r = SummaryRec::new(100, 16);
        r.span(BinClass::Busy, 50, 250);
        let s = r.finish();
        assert_eq!(s.bins.len(), 3);
        assert_eq!(s.bins[0].busy_ns, 50);
        assert_eq!(s.bins[1].busy_ns, 100);
        assert_eq!(s.bins[2].busy_ns, 50);
        assert_eq!(s.totals().0, 200);
    }

    #[test]
    fn overflow_merges_pairwise_and_conserves() {
        let mut r = SummaryRec::new(10, 4);
        for i in 0..64 {
            r.span(BinClass::Idle, i * 10, i * 10 + 5);
        }
        let s = r.finish();
        assert!(s.bins.len() <= 4, "bins stayed within budget");
        assert!(s.merges >= 4, "the quantum doubled repeatedly");
        assert_eq!(s.quantum_ns, 10 << s.merges);
        assert_eq!(s.totals().1, 64 * 5, "idle time conserved exactly");
    }

    #[test]
    fn counts_survive_compression() {
        let mut r = SummaryRec::new(10, 2);
        for i in 0..100 {
            r.count(i * 7, 1, 2, 64);
        }
        let s = r.finish();
        let (e, m, b) = s.bins.iter().fold((0, 0, 0), |(e, m, b), x| {
            (e + x.entries, m + x.msgs, b + x.bytes)
        });
        assert_eq!((e, m, b), (100, 200, 6_400));
        assert!(s.bins.len() <= 2);
    }

    #[test]
    fn memory_is_bounded_by_budget() {
        let mut r = SummaryRec::new(1, 8);
        for i in 0..10_000u64 {
            r.span(BinClass::Overhead, i, i + 1);
        }
        let s = r.finish();
        assert!(s.bins.len() <= 8);
        assert_eq!(s.totals().2, 10_000);
    }

    #[test]
    fn empty_and_reversed_spans_are_noops() {
        let mut r = SummaryRec::new(100, 4);
        r.span(BinClass::Busy, 50, 50);
        let mut r2 = SummaryRec::new(100, 4);
        r2.span(BinClass::Busy, 80, 30);
        assert_eq!(r.finish().totals().0, 0);
        assert_eq!(r2.finish().totals().0, 50, "reversed bounds are normalized");
    }
}
