//! In-band telemetry: mergeable per-PE metric frames and the space-saving
//! top-K sketch that feeds them.
//!
//! A [`MetricFrame`] is one PE's metrics snapshot, shaped so frames merge
//! associatively up a spanning tree: sums for counters, min/max/Σ/Σ² for
//! the utilization moments (enough for max/avg and the imbalance σ at any
//! fan-in), bucket-wise [`Hist`] merges for the execution-time and
//! message-latency distributions, and a bounded top-K merge for the hot
//! chares. The runtime reduces frames over its PE tree to PE 0 at a
//! quiescence-round cadence; every field is O(1) or O(K) in run length, so
//! a frame costs the same at 4 PEs and 10^5.
//!
//! [`MetricFrame::logical_digest`] fingerprints only the *logical* fields —
//! message/entry counts, queue depths, deterministically-charged work,
//! histogram bucket contents, top-K identities — and excludes wall-clock
//! derived values (idle/overhead, utilization moments, latency, sample
//! clock) plus remote byte counts (control-traffic polling is
//! schedule-dependent). Under the sim backend with metering off, the digest is a pure
//! function of the program, which is what the permuted-schedule and
//! exhaustive-exploration suites assert.

use crate::fnv::Fnv;
use crate::hist::Hist;

/// A space-saving heavy-hitters sketch: tracks at most `cap` keys with
/// their (over-)estimated weights. The classic Metwally/Agrawal/El Abbadi
/// guarantee applies: a key's true weight is within `err` of `weight`, and
/// any key with true weight above the minimum tracked weight is present.
#[derive(Debug, Clone)]
pub struct SpaceSaving<K: Ord + Clone> {
    cap: usize,
    items: Vec<(K, u64, u64)>, // (key, weight, err)
}

impl<K: Ord + Clone> SpaceSaving<K> {
    /// Track at most `cap` keys (clamped ≥ 1).
    pub fn new(cap: usize) -> SpaceSaving<K> {
        SpaceSaving {
            cap: cap.max(1),
            items: Vec::new(),
        }
    }

    /// Add `weight` to `key`, evicting the lightest tracked key if the
    /// sketch is full (the newcomer inherits its weight as error bound).
    pub fn observe(&mut self, key: &K, weight: u64) {
        if weight == 0 {
            return;
        }
        if let Some(it) = self.items.iter_mut().find(|(k, ..)| k == key) {
            it.1 += weight;
            return;
        }
        if self.items.len() < self.cap {
            self.items.push((key.clone(), weight, 0));
            return;
        }
        // invariant: cap >= 1 and the sketch is full, so a minimum exists
        let min = self
            .items
            .iter_mut()
            .min_by(|a, b| (a.1, &a.0).cmp(&(b.1, &b.0)))
            .unwrap();
        let floor = min.1;
        *min = (key.clone(), floor + weight, floor);
    }

    /// Tracked keys as `(key, weight, err)`, heaviest first (ties broken
    /// by key order, so the output is deterministic).
    pub fn items(&self) -> Vec<(K, u64, u64)> {
        let mut v = self.items.clone();
        v.sort_by(|a, b| (b.1, &a.0).cmp(&(a.1, &b.0)));
        v
    }
}

/// One labeled heavy hitter inside a [`MetricFrame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopItem {
    /// Display label (chare id rendered at sample time).
    pub label: String,
    /// Estimated weight (charged execution nanoseconds).
    pub weight: u64,
    /// Over-estimation bound inherited from sketch evictions and merges.
    pub err: u64,
}

/// Default number of hot chares a frame carries.
pub const DEFAULT_TOP_K: usize = 8;

/// One PE's (or, after merging, one subtree's) metrics snapshot.
#[derive(Debug, Clone, Default)]
pub struct MetricFrame {
    /// Telemetry sweep sequence number.
    pub seq: u64,
    /// PEs merged into this frame.
    pub pes: u64,
    /// Latest contributing PE clock (ns) — the sample's time coordinate.
    pub sampled_at_ns: u64,
    /// Σ entry-execution nanoseconds (deterministic under charged work).
    pub busy_ns: u64,
    /// Σ idle nanoseconds (wall-derived).
    pub idle_ns: u64,
    /// Σ overhead nanoseconds (wall-derived).
    pub overhead_ns: u64,
    /// Min per-PE utilization (busy/clock) among contributors.
    pub util_min: f64,
    /// Max per-PE utilization among contributors.
    pub util_max: f64,
    /// Σ utilization — avg is `util_sum / pes`.
    pub util_sum: f64,
    /// Σ utilization² — with `util_sum` this yields the imbalance σ.
    pub util_sumsq: f64,
    /// Σ QD-counted messages emitted.
    pub msgs_sent: u64,
    /// Σ QD-counted messages handled.
    pub msgs_processed: u64,
    /// Σ entry activations.
    pub entries: u64,
    /// Σ bytes shipped cross-PE.
    pub bytes_remote: u64,
    /// Σ messages parked behind when-guards or pending placement.
    pub queue_depth: u64,
    /// Max per-PE parked-message count among contributors.
    pub queue_depth_max: u64,
    /// Merged entry-execution-time histogram.
    pub exec: Hist,
    /// Merged send→deliver latency histogram (wall-derived).
    pub latency: Hist,
    /// Hot chares by charged execution time, heaviest first, at most K.
    pub top: Vec<TopItem>,
    /// The top-K capacity the merge keeps.
    pub top_cap: usize,
}

impl MetricFrame {
    /// Fold `other` (a sibling subtree's frame) into this one.
    pub fn merge(&mut self, other: &MetricFrame) {
        debug_assert_eq!(self.seq, other.seq);
        self.pes += other.pes;
        self.sampled_at_ns = self.sampled_at_ns.max(other.sampled_at_ns);
        self.busy_ns += other.busy_ns;
        self.idle_ns += other.idle_ns;
        self.overhead_ns += other.overhead_ns;
        self.util_min = self.util_min.min(other.util_min);
        self.util_max = self.util_max.max(other.util_max);
        self.util_sum += other.util_sum;
        self.util_sumsq += other.util_sumsq;
        self.msgs_sent += other.msgs_sent;
        self.msgs_processed += other.msgs_processed;
        self.entries += other.entries;
        self.bytes_remote += other.bytes_remote;
        self.queue_depth += other.queue_depth;
        self.queue_depth_max = self.queue_depth_max.max(other.queue_depth_max);
        self.exec.merge(&other.exec);
        self.latency.merge(&other.latency);
        // Top-K merge: same label ⇒ weights and errors add; then keep the
        // heaviest `top_cap` with a deterministic tie order.
        for it in &other.top {
            match self.top.iter_mut().find(|t| t.label == it.label) {
                Some(t) => {
                    t.weight += it.weight;
                    t.err += it.err;
                }
                None => self.top.push(it.clone()),
            }
        }
        self.top
            .sort_by(|a, b| (b.weight, &a.label).cmp(&(a.weight, &b.label)));
        let cap = self.top_cap.max(other.top_cap).max(1);
        self.top_cap = cap;
        self.top.truncate(cap);
    }

    /// Mean per-PE utilization.
    pub fn util_avg(&self) -> f64 {
        if self.pes == 0 {
            0.0
        } else {
            self.util_sum / self.pes as f64
        }
    }

    /// Population standard deviation of per-PE utilization — the load
    /// imbalance number (0 = perfectly balanced).
    pub fn util_sigma(&self) -> f64 {
        if self.pes == 0 {
            return 0.0;
        }
        let n = self.pes as f64;
        let var = (self.util_sumsq / n) - (self.util_sum / n).powi(2);
        var.max(0.0).sqrt()
    }

    /// Fingerprint of the schedule-independent fields only (see the module
    /// docs for what qualifies).
    pub fn logical_digest(&self) -> u64 {
        let mut d = Fnv::new();
        d.eat_u64(self.seq);
        d.eat_u64(self.pes);
        d.eat_u64(self.busy_ns);
        d.eat_u64(self.msgs_sent);
        d.eat_u64(self.msgs_processed);
        d.eat_u64(self.entries);
        // `bytes_remote` is deliberately absent: remote bytes include
        // control traffic (QD probes re-poll until two samples agree), and
        // the number of polling rounds is schedule-dependent even when the
        // application is fully deterministic.
        d.eat_u64(self.queue_depth);
        d.eat_u64(self.queue_depth_max);
        d.eat_u64(self.exec.digest());
        for it in &self.top {
            d.eat_str(&it.label);
            d.eat_u64(it.weight);
        }
        d.finish()
    }
}

/// Render a telemetry time series as a `charm-telemetry v1` artifact
/// (line-oriented text; `charm-perf telemetry` parses it back).
pub fn frames_artifact(frames: &[MetricFrame]) -> String {
    let mut out = String::from("charm-telemetry v1\n");
    for f in frames {
        out.push_str(&format!(
            "frame seq={} pes={} at_ns={} busy_ns={} idle_ns={} overhead_ns={} util_min={:.6} \
             util_max={:.6} util_sum={:.6} util_sumsq={:.6} msgs_sent={} msgs_processed={} \
             entries={} bytes_remote={} queue={} queue_max={}\n",
            f.seq,
            f.pes,
            f.sampled_at_ns,
            f.busy_ns,
            f.idle_ns,
            f.overhead_ns,
            f.util_min,
            f.util_max,
            f.util_sum,
            f.util_sumsq,
            f.msgs_sent,
            f.msgs_processed,
            f.entries,
            f.bytes_remote,
            f.queue_depth,
            f.queue_depth_max
        ));
        for (name, h) in [("exec", &f.exec), ("latency", &f.latency)] {
            out.push_str(&format!("hist {name} sub_bits={}", h.sub_bits()));
            for (lo, _hi, n) in h.buckets() {
                out.push_str(&format!(" {lo}:{n}"));
            }
            out.push('\n');
        }
        for t in &f.top {
            out.push_str(&format!(
                "top label={} weight={} err={}\n",
                // Labels are single tokens by construction (chare ids);
                // spaces are folded so the line format stays splittable.
                t.label.replace(' ', "_"),
                t.weight,
                t.err
            ));
        }
    }
    out
}

/// Write the telemetry artifact to `path`.
pub fn write_frames(path: &std::path::Path, frames: &[MetricFrame]) -> std::io::Result<()> {
    std::fs::write(path, frames_artifact(frames))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_saving_tracks_heavy_hitters() {
        let mut s: SpaceSaving<u32> = SpaceSaving::new(2);
        for _ in 0..100 {
            s.observe(&1, 10);
        }
        for _ in 0..50 {
            s.observe(&2, 10);
        }
        for k in 10..30u32 {
            s.observe(&k, 1);
        }
        let items = s.items();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].0, 1);
        assert!(
            items[0].1 >= 1_000,
            "heavy key weight is never undercounted"
        );
        // The guarantee: true weight <= reported weight <= true + err.
        assert!(items[0].1 - items[0].2 <= 1_000);
    }

    fn frame(seq: u64, busy: u64, util: f64) -> MetricFrame {
        MetricFrame {
            seq,
            pes: 1,
            busy_ns: busy,
            util_min: util,
            util_max: util,
            util_sum: util,
            util_sumsq: util * util,
            top_cap: 4,
            ..MetricFrame::default()
        }
    }

    #[test]
    fn merge_moments_give_avg_max_sigma() {
        let mut a = frame(1, 100, 0.2);
        a.merge(&frame(1, 300, 0.8));
        assert_eq!(a.pes, 2);
        assert_eq!(a.busy_ns, 400);
        assert!((a.util_avg() - 0.5).abs() < 1e-9);
        assert!((a.util_max - 0.8).abs() < 1e-9);
        assert!((a.util_sigma() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn merge_is_associative_on_digests() {
        let mk = |seq, busy, label: &str| {
            let mut f = frame(seq, busy, 0.5);
            f.msgs_sent = busy / 10;
            f.top.push(TopItem {
                label: label.into(),
                weight: busy,
                err: 0,
            });
            f
        };
        let (a, b, c) = (mk(3, 100, "x"), mk(3, 200, "y"), mk(3, 300, "x"));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left.logical_digest(), right.logical_digest());
    }

    #[test]
    fn logical_digest_ignores_timing_fields() {
        let mut a = frame(1, 100, 0.25);
        let mut b = frame(1, 100, 0.75);
        a.idle_ns = 5;
        b.idle_ns = 500_000;
        a.sampled_at_ns = 1;
        b.sampled_at_ns = 99;
        b.latency.record(123);
        // Remote bytes carry schedule-dependent control traffic.
        b.bytes_remote = 777;
        assert_eq!(a.logical_digest(), b.logical_digest());
        b.msgs_sent += 1;
        assert_ne!(a.logical_digest(), b.logical_digest());
    }

    #[test]
    fn artifact_round_trip_shape() {
        let mut f = frame(2, 50, 0.5);
        f.exec.record(1_000);
        f.latency.record(2_000);
        f.top.push(TopItem {
            label: "Chare[3]".into(),
            weight: 50,
            err: 0,
        });
        let text = frames_artifact(&[f]);
        assert!(text.starts_with("charm-telemetry v1\n"));
        assert!(text.contains("frame seq=2"));
        assert!(text.contains("hist exec"));
        assert!(text.contains("top label=Chare[3] weight=50"));
    }
}
