//! # charm-trace — Projections-style tracing & metrics
//!
//! Charm++ ships Projections, a tracing tool that attributes every PE's
//! time to entry-method execution, communication overhead, and idle waiting
//! (the paper's §IV evaluation is built on exactly that breakdown). This
//! crate is the charm-rs equivalent:
//!
//! * **Always-on counters** ([`Counters`]) — messages sent/processed,
//!   remote bytes, entry activations, migrations. These feed quiescence
//!   detection and the end-of-run `RunReport`, so they are maintained even
//!   at [`TraceLevel::Off`].
//! * **Cheap aggregates** ([`TraceLevel::Counters`], the default) — busy /
//!   idle / overhead nanoseconds, per-entry call counts with log2 time
//!   histograms, bytes by path (same-PE vs remote), when-guard buffer and
//!   reduction tallies. A handful of adds per scheduler step.
//! * **Streaming summaries** ([`TraceLevel::Summary`]) — busy/idle/
//!   overhead time plus entry/msg/byte counts binned into bounded
//!   wall-clock quanta ([`summary`]), O(bin budget) memory per PE for any
//!   run length; the Projections summary mode for cluster-scale runs.
//! * **Full event capture** ([`TraceLevel::Full`]) — every scheduler
//!   boundary pushes a timestamped [`Event`] into a fixed-capacity per-PE
//!   [`Ring`](event::Ring) that overwrites its oldest entry when full (the
//!   drop count is reported, never silent).
//!
//! Two cluster-scale companions ride along: [`hist`] provides mergeable
//! log-linear quantile histograms (entry execution time and send→deliver
//! latency, p50/p99/p999 with bounded relative error), and [`telemetry`]
//! defines the mergeable [`MetricFrame`] the runtime reduces over its PE
//! spanning tree at a quiescence cadence (`Runtime::telemetry`).
//!
//! Two exporters live in [`report`]: [`TraceReport::chrome_json`] emits
//! Chrome trace-event JSON (load it in Perfetto or `chrome://tracing`; one
//! track per PE) and [`TraceReport::summary`] prints a plain-text
//! utilization + entry-method table. [`json`] is a small strict JSON parser
//! used by the round-trip tests; this crate has no dependencies.
//!
//! Timestamps are nanoseconds on the owning PE's scheduler clock: real
//! elapsed time on the threads backend, virtual `clock + charged work`
//! under the sim backend, so traces line up with `MachineModel` makespans.

#![forbid(unsafe_code)]

pub mod event;
pub mod fnv;
pub mod hist;
pub mod json;
pub mod report;
pub mod summary;
pub mod telemetry;
pub mod tracer;

pub use event::{EntryKind, Event, EventKind};
pub use hist::Hist;
pub use report::{EntrySummary, PePerf, PeTrace, TraceReport};
pub use summary::{BinClass, PeSummary, SummaryBin, SummaryRec};
pub use telemetry::{
    frames_artifact, write_frames, MetricFrame, SpaceSaving, TopItem, DEFAULT_TOP_K,
};
pub use tracer::{Counters, EntryStat, PeTracer, WorkClass};

/// Default full-capture ring capacity (events per PE).
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// Default summary-mode quantum width (1 ms of PE clock per bin).
pub const DEFAULT_QUANTUM_NS: u64 = 1_000_000;

/// Default summary-mode bin budget per PE.
pub const DEFAULT_MAX_BINS: usize = 512;

/// How much the tracer records. Ordered: each level includes the previous.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Baseline [`Counters`] only (they can never be disabled — quiescence
    /// detection reads them). Exists as the overhead-bench baseline.
    Off,
    /// Counters plus cheap aggregates: utilization breakdown, per-entry
    /// stats, byte paths. The default.
    #[default]
    Counters,
    /// Everything above plus a bounded time-binned profile
    /// ([`summary::PeSummary`]): O(bin budget) memory per PE regardless of
    /// run length — the cluster-scale alternative to full capture.
    Summary,
    /// Everything above plus the per-PE timestamped event ring.
    Full,
}

/// Tracer configuration, passed to `Runtime::trace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Capture level.
    pub level: TraceLevel,
    /// Event-ring capacity per PE (only used at [`TraceLevel::Full`]).
    pub ring_capacity: usize,
    /// Summary-bin quantum width in ns (level ≥ [`TraceLevel::Summary`]).
    pub quantum_ns: u64,
    /// Summary-bin budget per PE (level ≥ [`TraceLevel::Summary`]).
    pub max_bins: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::counters()
    }
}

impl TraceConfig {
    /// Counters only — the overhead-bench baseline.
    pub fn off() -> TraceConfig {
        TraceConfig {
            level: TraceLevel::Off,
            ring_capacity: 0,
            quantum_ns: DEFAULT_QUANTUM_NS,
            max_bins: DEFAULT_MAX_BINS,
        }
    }

    /// Counters + cheap aggregates (default).
    pub fn counters() -> TraceConfig {
        TraceConfig {
            level: TraceLevel::Counters,
            ..TraceConfig::off()
        }
    }

    /// Bounded time-binned profile (Projections summary mode): busy/idle/
    /// overhead plus entry/msg/byte counts per quantum, O(`max_bins`)
    /// memory per PE.
    pub fn summary() -> TraceConfig {
        TraceConfig {
            level: TraceLevel::Summary,
            ..TraceConfig::off()
        }
    }

    /// Full event capture with the default ring capacity.
    pub fn full() -> TraceConfig {
        TraceConfig {
            level: TraceLevel::Full,
            ring_capacity: DEFAULT_RING_CAPACITY,
            ..TraceConfig::off()
        }
    }

    /// Override the per-PE event-ring capacity (min 1).
    pub fn ring_capacity(mut self, cap: usize) -> TraceConfig {
        self.ring_capacity = cap.max(1);
        self
    }

    /// Override the summary quantum width in nanoseconds (min 1).
    pub fn quantum_ns(mut self, ns: u64) -> TraceConfig {
        self.quantum_ns = ns.max(1);
        self
    }

    /// Override the per-PE summary bin budget (min 2).
    pub fn max_bins(mut self, bins: usize) -> TraceConfig {
        self.max_bins = bins.max(2);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        assert!(TraceLevel::Off < TraceLevel::Counters);
        assert!(TraceLevel::Counters < TraceLevel::Summary);
        assert!(TraceLevel::Summary < TraceLevel::Full);
        assert_eq!(TraceLevel::default(), TraceLevel::Counters);
    }

    #[test]
    fn config_builders() {
        assert_eq!(TraceConfig::default(), TraceConfig::counters());
        assert_eq!(TraceConfig::full().ring_capacity, DEFAULT_RING_CAPACITY);
        assert_eq!(TraceConfig::full().ring_capacity(8).ring_capacity, 8);
        assert_eq!(TraceConfig::full().ring_capacity(0).ring_capacity, 1);
        assert_eq!(TraceConfig::off().level, TraceLevel::Off);
        assert_eq!(TraceConfig::summary().level, TraceLevel::Summary);
        assert_eq!(TraceConfig::summary().quantum_ns, DEFAULT_QUANTUM_NS);
        assert_eq!(TraceConfig::summary().quantum_ns(0).quantum_ns, 1);
        assert_eq!(TraceConfig::summary().max_bins(1).max_bins, 2);
    }
}
