//! # charm-trace — Projections-style tracing & metrics
//!
//! Charm++ ships Projections, a tracing tool that attributes every PE's
//! time to entry-method execution, communication overhead, and idle waiting
//! (the paper's §IV evaluation is built on exactly that breakdown). This
//! crate is the charm-rs equivalent:
//!
//! * **Always-on counters** ([`Counters`]) — messages sent/processed,
//!   remote bytes, entry activations, migrations. These feed quiescence
//!   detection and the end-of-run `RunReport`, so they are maintained even
//!   at [`TraceLevel::Off`].
//! * **Cheap aggregates** ([`TraceLevel::Counters`], the default) — busy /
//!   idle / overhead nanoseconds, per-entry call counts with log2 time
//!   histograms, bytes by path (same-PE vs remote), when-guard buffer and
//!   reduction tallies. A handful of adds per scheduler step.
//! * **Full event capture** ([`TraceLevel::Full`]) — every scheduler
//!   boundary pushes a timestamped [`Event`] into a fixed-capacity per-PE
//!   [`Ring`](event::Ring) that overwrites its oldest entry when full (the
//!   drop count is reported, never silent).
//!
//! Two exporters live in [`report`]: [`TraceReport::chrome_json`] emits
//! Chrome trace-event JSON (load it in Perfetto or `chrome://tracing`; one
//! track per PE) and [`TraceReport::summary`] prints a plain-text
//! utilization + entry-method table. [`json`] is a small strict JSON parser
//! used by the round-trip tests; this crate has no dependencies.
//!
//! Timestamps are nanoseconds on the owning PE's scheduler clock: real
//! elapsed time on the threads backend, virtual `clock + charged work`
//! under the sim backend, so traces line up with `MachineModel` makespans.

#![forbid(unsafe_code)]

pub mod event;
pub mod json;
pub mod report;
pub mod tracer;

pub use event::{EntryKind, Event, EventKind};
pub use report::{EntrySummary, PePerf, PeTrace, TraceReport};
pub use tracer::{Counters, EntryStat, PeTracer, WorkClass};

/// Default full-capture ring capacity (events per PE).
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// How much the tracer records. Ordered: each level includes the previous.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Baseline [`Counters`] only (they can never be disabled — quiescence
    /// detection reads them). Exists as the overhead-bench baseline.
    Off,
    /// Counters plus cheap aggregates: utilization breakdown, per-entry
    /// stats, byte paths. The default.
    #[default]
    Counters,
    /// Everything above plus the per-PE timestamped event ring.
    Full,
}

/// Tracer configuration, passed to `Runtime::trace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Capture level.
    pub level: TraceLevel,
    /// Event-ring capacity per PE (only used at [`TraceLevel::Full`]).
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::counters()
    }
}

impl TraceConfig {
    /// Counters only — the overhead-bench baseline.
    pub fn off() -> TraceConfig {
        TraceConfig {
            level: TraceLevel::Off,
            ring_capacity: 0,
        }
    }

    /// Counters + cheap aggregates (default).
    pub fn counters() -> TraceConfig {
        TraceConfig {
            level: TraceLevel::Counters,
            ring_capacity: 0,
        }
    }

    /// Full event capture with the default ring capacity.
    pub fn full() -> TraceConfig {
        TraceConfig {
            level: TraceLevel::Full,
            ring_capacity: DEFAULT_RING_CAPACITY,
        }
    }

    /// Override the per-PE event-ring capacity (min 1).
    pub fn ring_capacity(mut self, cap: usize) -> TraceConfig {
        self.ring_capacity = cap.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        assert!(TraceLevel::Off < TraceLevel::Counters);
        assert!(TraceLevel::Counters < TraceLevel::Full);
        assert_eq!(TraceLevel::default(), TraceLevel::Counters);
    }

    #[test]
    fn config_builders() {
        assert_eq!(TraceConfig::default(), TraceConfig::counters());
        assert_eq!(TraceConfig::full().ring_capacity, DEFAULT_RING_CAPACITY);
        assert_eq!(TraceConfig::full().ring_capacity(8).ring_capacity, 8);
        assert_eq!(TraceConfig::full().ring_capacity(0).ring_capacity, 1);
        assert_eq!(TraceConfig::off().level, TraceLevel::Off);
    }
}
