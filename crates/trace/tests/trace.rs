//! End-to-end exercises of the public charm-trace API: record on a fake
//! two-PE "scheduler", wrap the ring, export, parse, validate.

use charm_trace::json::{parse, Value};
use charm_trace::{EntryKind, EventKind, PeTracer, TraceConfig, TraceReport, WorkClass};

/// Drive one fake PE: alternate idle gaps and entry activations, with a
/// few message/guard/reduction events in between.
fn drive(pe: usize, cfg: &TraceConfig, steps: u64) -> charm_trace::PeTrace {
    let mut t = PeTracer::new(cfg);
    let mut now = 0u64;
    for s in 0..steps {
        // Idle while "waiting" for the next message.
        let wake = now + 50;
        t.idle(now, wake);
        now = wake;
        // Receive, run an entry, send a ghost to the neighbour.
        t.counters.processed += 1;
        t.msg_recv(128);
        if t.full() {
            t.push(now, EventKind::MsgRecv { bytes: 128 });
        }
        let dur = 100 + (s % 3) * 10;
        t.counters.entries += 1;
        t.work(WorkClass::Entry, dur);
        t.entry(now, now + dur, dur, 1, EntryKind::Receive);
        now += dur;
        t.counters.sent += 1;
        t.counters.bytes += 64;
        t.msg_send(64, true);
        if t.full() {
            t.push(
                now,
                EventKind::MsgSend {
                    bytes: 64,
                    remote: true,
                },
            );
        }
        if s % 4 == 0 {
            t.red_contributes += 1;
            if t.full() {
                t.push(now, EventKind::RedContribute);
            }
        }
    }
    t.finish(pe, now, 64 * steps, |ct| format!("fake::Chare{ct}"))
}

fn report(cfg: &TraceConfig, steps: u64) -> TraceReport {
    TraceReport {
        pes: (0..2).map(|pe| drive(pe, cfg, steps)).collect(),
    }
}

#[test]
fn full_capture_validates_and_decomposes() {
    let rep = report(&TraceConfig::full(), 40);
    rep.validate().expect("well-formed events");
    for t in &rep.pes {
        assert!(t.captured);
        let p = &t.perf;
        // Exact decomposition: everything was charged or idled.
        assert_eq!(p.busy_ns + p.idle_ns + p.overhead_ns, p.wall_ns);
        assert_eq!(p.msgs_processed, 40);
        assert_eq!(p.bytes_sent_remote, 64 * 40);
        assert_eq!(p.events_dropped, 0);
    }
    assert!(rep.event_kind_names().len() >= 5);
}

#[test]
fn ring_wraparound_drops_oldest_and_counts() {
    let cfg = TraceConfig::full().ring_capacity(16);
    let rep = report(&cfg, 50);
    for t in &rep.pes {
        assert_eq!(t.events.len(), 16);
        assert!(t.perf.events_dropped > 0);
        // Oldest events gone: the first kept timestamp is well past 0.
        assert!(t.events.first().map(|e| e.ts_ns).unwrap_or(0) > 1_000);
    }
    // A cut ring stays monotone; orphan ends are tolerated at the cut.
    rep.validate().expect("wrapped ring still validates");
}

#[test]
fn counters_level_skips_events_keeps_stats() {
    let rep = report(&TraceConfig::counters(), 10);
    for t in &rep.pes {
        assert!(t.enabled && !t.captured);
        assert!(t.events.is_empty());
        assert_eq!(t.entries.len(), 1);
        assert_eq!(t.entries[0].stat.calls, 10);
        assert_eq!(t.entries[0].name, "fake::Chare1");
        assert_eq!(
            t.perf.busy_ns + t.perf.idle_ns + t.perf.overhead_ns,
            t.perf.wall_ns
        );
    }
}

#[test]
fn off_level_keeps_raw_counters() {
    let rep = report(&TraceConfig::off(), 10);
    for t in &rep.pes {
        assert!(!t.enabled);
        assert_eq!(t.perf.msgs_sent, 10);
        assert_eq!(t.perf.msgs_processed, 10);
        assert_eq!(t.perf.bytes_sent_remote, 640);
        assert!(t.entries.is_empty() && t.events.is_empty());
    }
}

#[test]
fn chrome_export_round_trips_with_one_track_per_pe() {
    let rep = report(&TraceConfig::full(), 20);
    let doc = parse(&rep.chrome_json()).expect("valid JSON");
    let arr = doc.as_arr().expect("array form");
    let mut tracks = std::collections::BTreeSet::new();
    let mut kinds = std::collections::BTreeSet::new();
    for o in arr {
        let name = o.get("name").and_then(Value::as_str).unwrap_or_default();
        if name == "thread_name" {
            tracks.insert(o.get("tid").and_then(Value::as_f64).unwrap_or(-1.0) as i64);
        } else if name != "process_name" {
            kinds.insert(name.to_string());
            // Every real event sits on a PE track with a µs timestamp.
            assert!(o.get("ts").and_then(Value::as_f64).is_some());
        }
    }
    assert_eq!(tracks.len(), rep.pes.len());
    assert!(kinds.len() >= 4, "kinds seen: {kinds:?}");
}
