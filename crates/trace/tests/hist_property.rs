//! Property test: [`Hist::quantile`] against a sorted-vector oracle over
//! deterministic pseudo-random samples, plus merge equivalence — the
//! bounded-relative-error contract charm-perf and the telemetry reducer
//! lean on.

use charm_trace::Hist;

/// splitmix64 — tiny deterministic PRNG, no dependencies.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Draw a value whose magnitude spans many orders (exercises both the
/// exact sub-2^sub_bits region and the log-linear region).
fn sample(rng: &mut SplitMix64) -> u64 {
    let shift = (rng.next() % 48) as u32;
    rng.next() >> (16 + shift % 48)
}

/// Oracle: nearest-rank quantile on the sorted sample vector.
fn oracle(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

#[test]
fn quantiles_match_oracle_within_relative_error() {
    for seed in [1u64, 0xdead_beef, 0x1234_5678_9abc_def0] {
        let mut rng = SplitMix64(seed);
        let mut h = Hist::default();
        let mut vals: Vec<u64> = Vec::new();
        for _ in 0..10_000 {
            let v = sample(&mut rng);
            h.record(v);
            vals.push(v);
        }
        vals.sort_unstable();
        let tol = h.max_rel_error();
        for &q in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            let got = h.quantile(q).expect("non-empty histogram") as f64;
            let want = oracle(&vals, q) as f64;
            // The histogram's answer must sit within the grid's relative
            // error of SOME sample adjacent to the oracle rank: buckets
            // blur ties, so compare against the nearest bucket-compatible
            // truth, allowing one rank of slack on either side.
            let n = vals.len();
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let lo = vals[rank.saturating_sub(2)] as f64;
            let hi = vals[(rank).min(n - 1)] as f64;
            let ok = got >= lo * (1.0 - tol) - 1.0 && got <= hi * (1.0 + tol) + 1.0;
            assert!(
                ok,
                "seed {seed:#x} q={q}: got {got}, oracle {want} (window [{lo}, {hi}], tol {tol})"
            );
        }
    }
}

#[test]
fn merged_histogram_equals_histogram_of_union() {
    let mut rng = SplitMix64(42);
    let mut a = Hist::default();
    let mut b = Hist::default();
    let mut whole = Hist::default();
    for i in 0..4_000 {
        let v = sample(&mut rng);
        if i % 2 == 0 {
            a.record(v);
        } else {
            b.record(v);
        }
        whole.record(v);
    }
    a.merge(&b);
    assert_eq!(a.count(), whole.count());
    assert_eq!(a.min(), whole.min());
    assert_eq!(a.max(), whole.max());
    assert_eq!(a.digest(), whole.digest(), "merge is bucket-exact");
    for &q in &[0.5, 0.9, 0.99] {
        assert_eq!(a.quantile(q), whole.quantile(q));
    }
}

#[test]
fn extremes_and_degenerate_inputs() {
    let mut h = Hist::default();
    assert_eq!(h.quantile(0.5), None, "empty histogram has no quantiles");
    h.record(7);
    assert_eq!(h.quantile(0.0), Some(7));
    assert_eq!(h.quantile(1.0), Some(7));
    let mut big = Hist::default();
    big.record(u64::MAX);
    big.record(0);
    assert_eq!(big.quantile(0.0), Some(0));
    assert_eq!(big.quantile(1.0), Some(u64::MAX), "clamped to observed max");
}
