//! # charm-bench — the benchmark harness that regenerates the paper's
//! evaluation (one target per figure) plus design-choice ablations.
//!
//! Figures run the mini-apps on the *simulated* backend (virtual time; see
//! DESIGN.md §1 for the substitution rationale) and print the same series
//! the paper plots. Scale is reduced by default and controlled by:
//!
//! * `CHARMRS_MAX_PES` — largest simulated PE count (default 64),
//! * `CHARMRS_ITERS`   — iterations per run (default figure-specific),
//! * `CHARMRS_BLOCK`   — stencil block edge (default figure-specific).

#![forbid(unsafe_code)]

use std::time::Duration;

/// Read a positive integer knob from the environment.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

/// Like [`env_usize`], but with no default: `None` when unset or invalid.
pub fn env_usize_opt(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// Geometric PE series `start, 2·start, …` capped by `CHARMRS_MAX_PES`
/// (default `max_default`).
pub fn pe_series(start: usize, max_default: usize) -> Vec<usize> {
    let max = env_usize("CHARMRS_MAX_PES", max_default);
    let mut v = Vec::new();
    let mut p = start;
    while p <= max {
        v.push(p);
        p *= 2;
    }
    if v.is_empty() {
        v.push(start);
    }
    v
}

/// One plotted series: a label and `(x, time-per-step)` points.
pub struct Series {
    /// Legend label (matches the paper's).
    pub label: String,
    /// `(simulated cores, ms per step)` points.
    pub points: Vec<(usize, f64)>,
}

/// Print a paper-style table: one row per x value, one column per series.
pub fn print_table(title: &str, xlabel: &str, series: &[Series]) {
    println!("\n# {title}");
    print!("{xlabel:>8}");
    for s in series {
        print!("  {:>14}", s.label);
    }
    println!();
    let xs: Vec<usize> = series
        .first()
        .map(|s| s.points.iter().map(|p| p.0).collect())
        .unwrap_or_default();
    for (row, &x) in xs.iter().enumerate() {
        print!("{x:>8}");
        for s in series {
            match s.points.get(row) {
                Some(&(_, v)) => print!("  {v:>14.3}"),
                None => print!("  {:>14}", "-"),
            }
        }
        println!();
    }
}

/// Print ratio columns (e.g. charmpy/charm++) for quick band checks.
pub fn print_ratios(label: &str, a: &Series, b: &Series) {
    println!("\n## ratio {label} ({} / {})", a.label, b.label);
    for (&(x, va), &(_, vb)) in a.points.iter().zip(&b.points) {
        if vb > 0.0 {
            println!("{x:>8}  {:>8.3}", va / vb);
        }
    }
}

/// Milliseconds from a duration, as f64.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Run `f` `CHARMRS_REPS` times (default 2) and keep the smallest value —
/// the standard way to damp host-timing noise in metered simulations.
pub fn best_of(f: impl Fn() -> f64) -> f64 {
    let reps = env_usize("CHARMRS_REPS", 2);
    (0..reps).map(|_| f()).fold(f64::INFINITY, f64::min)
}

// ---------------------------------------------------------------------------
// METG (minimum effective task granularity, Task Bench) helpers
// ---------------------------------------------------------------------------

/// Halving grain series from `start_ns` down to (at least) `floor_ns`,
/// largest first — the sweep order of `benches/metg.rs`.
pub fn grain_series(start_ns: u64, floor_ns: u64) -> Vec<u64> {
    let mut v = Vec::new();
    let mut g = start_ns.max(1);
    loop {
        v.push(g);
        if g <= floor_ns.max(1) {
            break;
        }
        g /= 2;
    }
    v
}

/// Task Bench efficiency: ideal time over actual. Ideal is the useful work
/// spread perfectly over the PEs (`width · steps · grain / npes`); every
/// nanosecond beyond it is runtime overhead.
pub fn taskbench_efficiency(
    grain_ns: u64,
    width: u64,
    steps: u64,
    npes: u64,
    actual_ns: u64,
) -> f64 {
    if actual_ns == 0 {
        return 0.0;
    }
    let ideal = (width * steps * grain_ns) as f64 / npes as f64;
    ideal / actual_ns as f64
}

/// A grain sweep: `(grain_ns, efficiency)` points, largest grain first.
pub struct MetgSweep {
    /// The sweep, as measured.
    pub points: Vec<(u64, f64)>,
}

impl MetgSweep {
    /// The METG: smallest swept grain still reaching ≥ 50% efficiency
    /// (Task Bench's definition), or `None` if no swept point did.
    pub fn metg_ns(&self) -> Option<u64> {
        self.points
            .iter()
            .filter(|&&(_, e)| e >= 0.5)
            .map(|&(g, _)| g)
            .min()
    }
}

/// Where figure runs drop their trace files: the `CHARMRS_TRACE_DIR`
/// directory, or `None` (the default — no trace run, no files).
pub fn trace_dir() -> Option<std::path::PathBuf> {
    std::env::var_os("CHARMRS_TRACE_DIR").map(std::path::PathBuf::from)
}

/// Write `<name>.trace.json` (Chrome trace events, load in Perfetto or
/// chrome://tracing) into [`trace_dir`] and print the utilization summary.
/// A no-op when `CHARMRS_TRACE_DIR` is unset or the run carried no trace.
pub fn emit_trace(name: &str, report: &charm_core::RunReport) {
    let (Some(dir), Some(trace)) = (trace_dir(), report.trace.as_ref()) else {
        return;
    };
    let path = dir.join(format!("{name}.trace.json"));
    match std::fs::create_dir_all(&dir).and_then(|()| trace.write_chrome(&path)) {
        Ok(()) => println!("\n# trace: {}", path.display()),
        Err(e) => {
            eprintln!("trace write failed for {}: {e}", path.display());
            return;
        }
    }
    println!("{}", trace.summary());
}
