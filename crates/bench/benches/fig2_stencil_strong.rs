//! Figure 2 — stencil3d strong scaling (Cori KNL model).
//!
//! Paper: fixed grid on 2 KNL nodes, 8→128 cores; time per step falls
//! near-linearly from ~1600 ms to ~110 ms, with all three implementations
//! close together (log-scale y axis).
//!
//! Here: a fixed global grid, simulated PEs 8→`CHARMRS_MAX_PES` (default
//! 128), same three series. Expected shape: near-linear scaling (t ∝ 1/p),
//! implementations within ~10% of each other.

use charm_apps::stencil3d::{charm::run_charm, mpi::run_mpi, StencilParams};
use charm_bench::{best_of, env_usize, pe_series, print_table, Series};
use charm_core::{Backend, DispatchMode, Runtime};
use charm_sim::MachineModel;

fn main() {
    let iters = env_usize("CHARMRS_ITERS", 20) as u32;
    // Global grid fixed; x divisible by every PE count in the series.
    let gx = env_usize("CHARMRS_BLOCK", 4) * 128;
    let grid = [gx, 64, 64];
    let pes = pe_series(8, 128);

    let params_for = |p: usize| StencilParams::new(grid, [p, 1, 1], iters);
    let rt = |_p: usize, dispatch: DispatchMode| {
        move |p: usize| {
            Runtime::new(p)
                .backend(Backend::Sim(MachineModel::cori_knl()))
                .dispatch(dispatch)
        }
    };
    let _ = rt;

    let mk = |p: usize, dispatch: DispatchMode| {
        Runtime::new(p)
            .backend(Backend::Sim(MachineModel::cori_knl()))
            .dispatch(dispatch)
    };

    let mut charmxx = Series {
        label: "charm++".into(),
        points: Vec::new(),
    };
    let mut mpi4py = Series {
        label: "mpi4py".into(),
        points: Vec::new(),
    };
    let mut charmpy = Series {
        label: "charmpy".into(),
        points: Vec::new(),
    };

    for &p in &pes {
        let t = best_of(|| run_charm(params_for(p), mk(p, DispatchMode::Native)).time_per_step_ms);
        charmxx.points.push((p, t));
        let t = best_of(|| run_mpi(params_for(p), mk(p, DispatchMode::Native)).time_per_step_ms);
        mpi4py.points.push((p, t));
        let t = best_of(|| run_charm(params_for(p), mk(p, DispatchMode::Dynamic)).time_per_step_ms);
        charmpy.points.push((p, t));
        eprintln!("fig2: {p} PEs done");
    }

    let series = [charmxx, mpi4py, charmpy];
    print_table(
        &format!(
            "Fig 2: stencil3d strong scaling, {}x{}x{} grid, {iters} iters, \
             Cori KNL model (time per step, ms)",
            grid[0], grid[1], grid[2]
        ),
        "PEs",
        &series,
    );
    // Parallel efficiency of the charm++ series relative to the first point.
    if let Some(&(p0, t0)) = series[0].points.first() {
        println!("\n## charm++ parallel efficiency vs {p0} PEs");
        for &(p, t) in &series[0].points {
            let ideal = t0 * p0 as f64 / p as f64;
            println!("{p:>8}  {:>8.2}%", 100.0 * ideal / t);
        }
    }

    // CHARMRS_TRACE_DIR=<dir>: re-run the largest point under full capture
    // and drop a Chrome trace + utilization summary (DESIGN.md §7).
    if charm_bench::trace_dir().is_some() {
        if let Some(&p) = pes.last() {
            let traced = mk(p, DispatchMode::Native).trace(charm_core::TraceConfig::full());
            let r = run_charm(params_for(p), traced);
            charm_bench::emit_trace("fig2_stencil_strong", &r.report);
        }
    }
}
