//! Figure 1 — stencil3d weak scaling (Blue Waters model).
//!
//! Paper: time per step on up to 2048 nodes / 65k cores for Charm++,
//! mpi4py and CharmPy, all within a few percent of each other (CharmPy at
//! worst 6.2% slower than Charm++), roughly flat with scale.
//!
//! Here: a fixed block per PE, simulated PE counts doubling up to
//! `CHARMRS_MAX_PES` (default 64), three series:
//!   * `charm++`  — charm-rs, native dispatch;
//!   * `mpi4py`   — minimpi ranks (buffer sends, same kernel);
//!   * `charmpy`  — charm-rs, dynamic dispatch (pickle codec + modeled
//!     interpreter overhead).
//!
//! Expected shape: flat-ish lines, charm++ ≤ mpi4py ≈ charmpy, charmpy
//! within ~10% of charm++.
//!
//! Scale knobs (the full-figure run reaches the paper's 65k cores):
//!   * `CHARMRS_MAX_PES=65536` extends the series to 65,536 simulated PEs —
//!     shrink the block (`CHARMRS_BLOCK=8`) to keep host memory bounded
//!     (each chare allocates `(b+2)^3` f64 plus ghost faces).
//!   * `CHARMRS_SERIES=charm` runs only the charm-rs native series (the
//!     other two triple the wall time at large scale).
//!   * `CHARMRS_EFF_GATE=<pct>` exits non-zero unless weak-scaling
//!     efficiency `t(first)/t(last)` of the native series stays at or
//!     above `<pct>`% — the CI regression gate for the scheduler's
//!     per-PE scale structures.

use charm_apps::stencil3d::{charm::run_charm, mpi::run_mpi, StencilParams};
use charm_bench::{
    best_of, env_usize, env_usize_opt, pe_series, print_ratios, print_table, Series,
};
use charm_core::{Backend, DispatchMode, Runtime};
use charm_sim::MachineModel;

fn main() {
    let iters = env_usize("CHARMRS_ITERS", 30) as u32;
    let block = env_usize("CHARMRS_BLOCK", 64);
    let all_series = std::env::var("CHARMRS_SERIES").as_deref() != Ok("charm");
    let pes = pe_series(1, 64);

    let params_for = |p: usize| StencilParams::new([block * p, block, block], [p, 1, 1], iters);
    let rt = |p: usize, dispatch: DispatchMode| {
        Runtime::new(p)
            .backend(Backend::Sim(MachineModel::bluewaters(
                p.div_ceil(32).max(8),
            )))
            .dispatch(dispatch)
    };

    let mut charmxx = Series {
        label: "charm++".into(),
        points: Vec::new(),
    };
    let mut mpi4py = Series {
        label: "mpi4py".into(),
        points: Vec::new(),
    };
    let mut charmpy = Series {
        label: "charmpy".into(),
        points: Vec::new(),
    };

    for &p in &pes {
        let t = best_of(|| run_charm(params_for(p), rt(p, DispatchMode::Native)).time_per_step_ms);
        charmxx.points.push((p, t));
        if all_series {
            let t =
                best_of(|| run_mpi(params_for(p), rt(p, DispatchMode::Native)).time_per_step_ms);
            mpi4py.points.push((p, t));
            let t =
                best_of(|| run_charm(params_for(p), rt(p, DispatchMode::Dynamic)).time_per_step_ms);
            charmpy.points.push((p, t));
        }
        eprintln!("fig1: {p} PEs done");
    }

    let series = if all_series {
        vec![charmxx, mpi4py, charmpy]
    } else {
        vec![charmxx]
    };
    print_table(
        &format!(
            "Fig 1: stencil3d weak scaling, {block}^3 block/PE, {iters} iters, \
             Blue Waters model (time per step, ms)"
        ),
        "PEs",
        &series,
    );
    if all_series {
        print_ratios("fig1", &series[2], &series[0]);
    }

    // Weak-scaling efficiency of the native series: per-step time should be
    // flat as PEs grow, so t(first)/t(last) ≈ 1. `CHARMRS_EFF_GATE=<pct>`
    // turns it into a pass/fail gate.
    let native = &series[0];
    if let (Some(&(p0, t0)), Some(&(p1, t1))) = (native.points.first(), native.points.last()) {
        if p1 > p0 && t1 > 0.0 {
            let eff = t0 / t1 * 100.0;
            println!("\n## weak-scaling efficiency {p0} -> {p1} PEs: {eff:.1}%");
            if let Some(gate) = env_usize_opt("CHARMRS_EFF_GATE") {
                if eff < gate as f64 {
                    eprintln!("fig1: efficiency {eff:.1}% below gate {gate}%");
                    std::process::exit(1);
                }
            }
        }
    }

    // CHARMRS_TRACE_DIR=<dir>: re-run the largest point under full capture
    // and drop a Chrome trace + utilization summary (DESIGN.md §7).
    if charm_bench::trace_dir().is_some() {
        if let Some(&p) = pes.last() {
            let traced = rt(p, DispatchMode::Native).trace(charm_core::TraceConfig::full());
            let r = run_charm(params_for(p), traced);
            charm_bench::emit_trace("fig1_stencil_weak", &r.report);
        }
    }
}
