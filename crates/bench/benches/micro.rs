//! Criterion micro-benchmarks of the serialization substrate (paper §IV-B):
//! fast vs pickle codecs, and the `Buf` zero-copy path vs per-element
//! encoding — the mechanism behind "NumPy arrays bypass pickling".

use charm_wire::{Buf, Codec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize, Clone)]
struct GhostMsg {
    iter: u32,
    face: u8,
    data: Vec<f64>,
}

#[derive(Serialize, Deserialize, Clone)]
struct GhostMsgBuf {
    iter: u32,
    face: u8,
    data: Buf<f64>,
}

fn codec_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec_roundtrip");
    for n in [64usize, 1024, 16384] {
        let vec_msg = GhostMsg {
            iter: 7,
            face: 3,
            data: (0..n).map(|i| i as f64).collect(),
        };
        let buf_msg = GhostMsgBuf {
            iter: 7,
            face: 3,
            data: Buf::from_vec((0..n).map(|i| i as f64).collect()),
        };
        g.throughput(Throughput::Bytes((n * 8) as u64));
        g.bench_with_input(BenchmarkId::new("fast_vec", n), &vec_msg, |b, m| {
            b.iter(|| {
                let bytes = Codec::Fast.encode(m).unwrap();
                Codec::Fast.decode::<GhostMsg>(&bytes).unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("pickle_vec", n), &vec_msg, |b, m| {
            b.iter(|| {
                let bytes = Codec::Pickle.encode(m).unwrap();
                Codec::Pickle.decode::<GhostMsg>(&bytes).unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("fast_buf", n), &buf_msg, |b, m| {
            b.iter(|| {
                let bytes = Codec::Fast.encode(m).unwrap();
                Codec::Fast.decode::<GhostMsgBuf>(&bytes).unwrap()
            })
        });
        // The "NumPy bypass": Buf stays memcpy-fast even under pickle.
        g.bench_with_input(BenchmarkId::new("pickle_buf", n), &buf_msg, |b, m| {
            b.iter(|| {
                let bytes = Codec::Pickle.encode(m).unwrap();
                Codec::Pickle.decode::<GhostMsgBuf>(&bytes).unwrap()
            })
        });
    }
    g.finish();
}

fn varint_benches(c: &mut Criterion) {
    c.bench_function("varint_roundtrip_mixed", |b| {
        let values: Vec<u64> = (0..256).map(|i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15)).collect();
        b.iter(|| {
            let mut buf = Vec::with_capacity(2600);
            for &v in &values {
                charm_wire::varint::write_u64(&mut buf, v);
            }
            let mut off = 0;
            let mut acc = 0u64;
            while off < buf.len() {
                let (v, used) = charm_wire::varint::read_u64(&buf[off..]).unwrap();
                acc = acc.wrapping_add(v);
                off += used;
            }
            acc
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = codec_benches, varint_benches
}
criterion_main!(benches);
