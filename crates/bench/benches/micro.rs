//! Criterion micro-benchmarks of the serialization substrate (paper §IV-B):
//! fast vs pickle codecs, the `Buf` zero-copy path vs per-element encoding
//! — the mechanism behind "NumPy arrays bypass pickling" — plus the
//! shared-payload fan-out, encode-pool, and guard-drain hot paths.

use charm_core::prelude::*;
use charm_sim::MachineModel;
use charm_wire::{Buf, Codec, EncodePool, WireBytes};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize, Clone)]
struct GhostMsg {
    iter: u32,
    face: u8,
    data: Vec<f64>,
}

#[derive(Serialize, Deserialize, Clone)]
struct GhostMsgBuf {
    iter: u32,
    face: u8,
    data: Buf<f64>,
}

fn codec_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec_roundtrip");
    for n in [64usize, 1024, 16384] {
        let vec_msg = GhostMsg {
            iter: 7,
            face: 3,
            data: (0..n).map(|i| i as f64).collect(),
        };
        let buf_msg = GhostMsgBuf {
            iter: 7,
            face: 3,
            data: Buf::from_vec((0..n).map(|i| i as f64).collect()),
        };
        g.throughput(Throughput::Bytes((n * 8) as u64));
        g.bench_with_input(BenchmarkId::new("fast_vec", n), &vec_msg, |b, m| {
            b.iter(|| {
                let bytes = Codec::Fast.encode(m).unwrap();
                Codec::Fast.decode::<GhostMsg>(&bytes).unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("pickle_vec", n), &vec_msg, |b, m| {
            b.iter(|| {
                let bytes = Codec::Pickle.encode(m).unwrap();
                Codec::Pickle.decode::<GhostMsg>(&bytes).unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("fast_buf", n), &buf_msg, |b, m| {
            b.iter(|| {
                let bytes = Codec::Fast.encode(m).unwrap();
                Codec::Fast.decode::<GhostMsgBuf>(&bytes).unwrap()
            })
        });
        // The "NumPy bypass": Buf stays memcpy-fast even under pickle.
        g.bench_with_input(BenchmarkId::new("pickle_buf", n), &buf_msg, |b, m| {
            b.iter(|| {
                let bytes = Codec::Pickle.encode(m).unwrap();
                Codec::Pickle.decode::<GhostMsgBuf>(&bytes).unwrap()
            })
        });
    }
    g.finish();
}

fn varint_benches(c: &mut Criterion) {
    c.bench_function("varint_roundtrip_mixed", |b| {
        let values: Vec<u64> = (0..256)
            .map(|i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        b.iter(|| {
            let mut buf = Vec::with_capacity(2600);
            for &v in &values {
                charm_wire::varint::write_u64(&mut buf, v);
            }
            let mut off = 0;
            let mut acc = 0u64;
            while off < buf.len() {
                let (v, used) = charm_wire::varint::read_u64(&buf[off..]).unwrap();
                acc = acc.wrapping_add(v);
                off += used;
            }
            acc
        })
    });
}

/// The fan-out cost a broadcast/multicast pays per same-PE member: the old
/// scheme deep-copied the encoded payload into an owned buffer per member;
/// the shared scheme bumps a refcount per member.
fn fanout_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("broadcast_payload_fanout");
    let payload: Vec<u8> = vec![0xA5; 16 * 1024];
    for members in [8usize, 64] {
        g.throughput(Throughput::Bytes((payload.len() * members) as u64));
        g.bench_with_input(BenchmarkId::new("deep_copy", members), &members, |b, &m| {
            b.iter(|| {
                let fan: Vec<Vec<u8>> = (0..m).map(|_| payload.clone()).collect();
                std::hint::black_box(fan)
            })
        });
        g.bench_with_input(BenchmarkId::new("shared", members), &members, |b, &m| {
            let shared = WireBytes::from_vec(payload.clone());
            b.iter(|| {
                let fan: Vec<WireBytes> = (0..m).map(|_| shared.clone()).collect();
                std::hint::black_box(fan)
            })
        });
    }
    g.finish();
}

/// Steady-state encode cost: a fresh growth-reallocating `Vec` per message
/// vs a pooled scratch buffer drained into one exact-size allocation.
fn encode_pool_benches(c: &mut Criterion) {
    let msg = GhostMsg {
        iter: 7,
        face: 3,
        data: (0..1024).map(|i| i as f64).collect(),
    };
    c.bench_function("encode_fresh_vec", |b| {
        b.iter(|| std::hint::black_box(Codec::Fast.encode(&msg).unwrap()))
    });
    c.bench_function("encode_pooled_shared", |b| {
        let mut pool = EncodePool::new();
        b.iter(|| std::hint::black_box(Codec::Fast.encode_shared_with(&mut pool, &msg).unwrap()))
    });
}

struct DrainGate {
    open: bool,
    acc: i64,
}

#[derive(Serialize, Deserialize)]
enum DrainMsg {
    Tick(i64),
    Open,
    Report { done: Future<i64> },
}

impl Chare for DrainGate {
    type Msg = DrainMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        DrainGate {
            open: false,
            acc: 0,
        }
    }
    fn guard(&self, msg: &DrainMsg) -> bool {
        match msg {
            DrainMsg::Tick(_) => self.open,
            _ => true,
        }
    }
    fn receive(&mut self, msg: DrainMsg, ctx: &mut Ctx) {
        match msg {
            DrainMsg::Tick(i) => self.acc += i,
            DrainMsg::Open => self.open = true,
            DrainMsg::Report { done } => ctx.send_future(&done, self.acc),
        }
    }
}

/// 1k messages pile up behind a when-guard, then the guard opens and the
/// whole buffer drains — the `after_state_change` retry loop end to end
/// (a `Vec::remove` drain was quadratic here; the deque drain is linear).
fn guard_drain_bench(c: &mut Criterion) {
    const N: i64 = 1000;
    c.bench_function("guard_drain_1k_buffered", |b| {
        b.iter(|| {
            Runtime::new(1)
                .backend(Backend::Sim(MachineModel::local(1)))
                .register::<DrainGate>()
                .run(|co| {
                    let gate = co.ctx().create_chare::<DrainGate>((), Some(0));
                    for i in 0..N {
                        gate.send(co.ctx(), DrainMsg::Tick(i));
                    }
                    gate.send(co.ctx(), DrainMsg::Open);
                    let done = co.ctx().create_future::<i64>();
                    gate.send(co.ctx(), DrainMsg::Report { done });
                    assert_eq!(co.get(&done), N * (N - 1) / 2);
                    co.ctx().exit();
                });
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = codec_benches, varint_benches, fanout_benches, encode_pool_benches, guard_drain_bench
}
criterion_main!(benches);
