//! Net-backend transport overhead (DESIGN.md §13).
//!
//! Runs the same QD-cadenced fan-in workload (the ft_overhead stencil)
//! two ways and lands the ids side by side in criterion's reports:
//!
//! * `qd_fan_in/sim` — virtual-time backend, one process, zero transport.
//! * `qd_fan_in/net` — `Backend::Net`: one OS process per PE over
//!   loopback TCP. Each iteration pays the full lifecycle — re-exec of
//!   the workers, rendezvous, framed envelope traffic, graceful drain —
//!   so the ratio is the end-to-end cost of real processes relative to
//!   the in-process simulation of the identical logical run.
//!
//! ```sh
//! cargo bench -p charm-bench --bench net_overhead
//! ```
//!
//! The worker processes re-enter this binary's `main`; the
//! `is_net_worker` guard routes them straight into the run (they exit
//! inside `run()`) so criterion only ever executes on the root.

use charm_core::prelude::*;
use charm_core::{is_net_worker, NetCfg};
use criterion::Criterion;
use serde::{Deserialize, Serialize};
use std::time::Duration;

const NPES: usize = 4;
const PER_PE: i64 = 16;
const ROUNDS: usize = 2;

#[derive(Serialize, Deserialize)]
struct Sink {
    sum: i64,
}

#[derive(Serialize, Deserialize)]
enum SinkMsg {
    Push(i64),
}

impl Chare for Sink {
    type Msg = SinkMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Sink { sum: 0 }
    }
    fn receive(&mut self, msg: SinkMsg, _: &mut Ctx) {
        let SinkMsg::Push(v) = msg;
        self.sum += v;
    }
}

#[derive(Serialize, Deserialize)]
struct Spray;

#[derive(Serialize, Deserialize)]
enum SprayMsg {
    Go { sink: Proxy<Sink>, per_pe: i64 },
}

impl Chare for Spray {
    type Msg = SprayMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Spray
    }
    fn receive(&mut self, msg: SprayMsg, ctx: &mut Ctx) {
        let SprayMsg::Go { sink, per_pe } = msg;
        for k in 0..per_pe {
            sink.send(ctx, SinkMsg::Push(ctx.my_pe() as i64 + k));
        }
    }
}

fn program(co: &mut Co) {
    let sink = co.ctx().create_chare::<Sink>((), Some(0));
    let group = co.ctx().create_group::<Spray>(());
    for _ in 0..ROUNDS {
        group.send(
            co.ctx(),
            SprayMsg::Go {
                sink,
                per_pe: PER_PE,
            },
        );
        let q = co.ctx().create_future::<()>();
        co.ctx().start_quiescence(&q);
        co.get(&q);
    }
    co.ctx().exit();
}

fn registered(rt: Runtime) -> Runtime {
    rt.register_migratable::<Sink>()
        .register_migratable::<Spray>()
}

fn sim_run() {
    let report =
        registered(Runtime::new(NPES).simulated(charm_sim::MachineModel::local(NPES))).run(program);
    assert!(report.clean_exit);
}

/// Workers re-execed by the root land here too (via `main`); they enter
/// `run()` with the same registrations and exit inside it.
fn net_run() {
    let report = registered(Runtime::new(NPES).backend(Backend::Net(NetCfg::new()))).run(program);
    assert!(report.clean_exit);
    assert_eq!(report.recoveries, 0);
}

fn net_overhead(c: &mut Criterion) {
    // Each net iteration forks NPES-1 processes and tears the mesh down
    // again; keep the sample count low so the suite stays in CI budget.
    let mut g = c.benchmark_group("qd_fan_in");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    g.bench_function("sim", |b| b.iter(sim_run));
    g.bench_function("net", |b| b.iter(net_run));
    g.finish();
}

fn main() {
    if is_net_worker() {
        // Spawned worker process: serve the run, never reach criterion.
        net_run();
        return;
    }
    let mut c = Criterion::default().configure_from_args();
    net_overhead(&mut c);
    c.final_summary();
}
