//! METG — minimum effective task granularity (Task Bench, Slaughter et
//! al.), the paper-adjacent overhead headline: sweep the per-task grain
//! downward and report the smallest grain at which the runtime still
//! reaches ≥ 50% efficiency, for all five dependency patterns on both
//! backends.
//!
//! Efficiency = ideal / actual, where ideal = `width · steps · grain /
//! npes`. Under sim, "actual" is the virtual-time makespan (message
//! latency from the machine model is the overhead); under threads it is
//! wall time (real scheduling + channel costs — note the OS sleep
//! granularity behind `ctx.charge` inflates sub-microsecond grains there).
//!
//! Knobs: `CHARMRS_TB_PES` (4), `CHARMRS_TB_WIDTH` (64), `CHARMRS_TB_STEPS`
//! (32), `CHARMRS_TB_GRAIN_START` (65536 ns), `CHARMRS_TB_GRAIN_FLOOR`
//! (256 ns), `CHARMRS_TB_ABLATE=1` to rerun the sweep with the fast paths
//! off and print the overhead delta.

use charm_apps::taskbench::{run_taskbench, Pattern, TaskBenchParams};
use charm_bench::{env_usize, grain_series, taskbench_efficiency, MetgSweep};
use charm_core::{Backend, Runtime};
use charm_sim::MachineModel;

struct Knobs {
    npes: usize,
    width: u32,
    steps: u32,
    grains: Vec<u64>,
}

fn sweep(k: &Knobs, pattern: Pattern, sim: bool, fast: bool) -> MetgSweep {
    let mut points = Vec::with_capacity(k.grains.len());
    for &grain_ns in &k.grains {
        let params = TaskBenchParams {
            pattern,
            width: k.width,
            steps: k.steps,
            grain_ns,
            fanout: 3,
            seed: 7,
        };
        let rt = if sim {
            Runtime::new(k.npes)
                .backend(Backend::Sim(MachineModel::local(k.npes)))
                .meter_compute(false)
        } else {
            Runtime::new(k.npes)
        };
        let r = run_taskbench(params, rt.fast_paths(fast));
        assert_eq!(r.tasks, k.width as u64 * k.steps as u64);
        let actual_ns = r.report.time.as_nanos() as u64;
        points.push((
            grain_ns,
            taskbench_efficiency(
                grain_ns,
                k.width as u64,
                k.steps as u64,
                k.npes as u64,
                actual_ns,
            ),
        ));
    }
    MetgSweep { points }
}

fn fmt_metg(m: Option<u64>) -> String {
    match m {
        Some(ns) => format!("{ns} ns"),
        None => "> sweep".into(),
    }
}

fn main() {
    let k = Knobs {
        npes: env_usize("CHARMRS_TB_PES", 4),
        width: env_usize("CHARMRS_TB_WIDTH", 64) as u32,
        steps: env_usize("CHARMRS_TB_STEPS", 32) as u32,
        grains: grain_series(
            env_usize("CHARMRS_TB_GRAIN_START", 65_536) as u64,
            env_usize("CHARMRS_TB_GRAIN_FLOOR", 256) as u64,
        ),
    };
    let ablate = std::env::var("CHARMRS_TB_ABLATE")
        .map(|v| v == "1")
        .unwrap_or(false);

    for (backend, sim) in [("sim", true), ("threads", false)] {
        println!(
            "\n# METG ({backend}) — width={} steps={} npes={}",
            k.width, k.steps, k.npes
        );
        print!("{:>10}", "grain_ns");
        for p in Pattern::ALL {
            print!("  {:>9}", p.name());
        }
        println!("   (efficiency)");

        let sweeps: Vec<MetgSweep> = Pattern::ALL
            .iter()
            .map(|&p| sweep(&k, p, sim, true))
            .collect();
        for (row, &grain) in k.grains.iter().enumerate() {
            print!("{grain:>10}");
            for s in &sweeps {
                print!("  {:>9.3}", s.points[row].1);
            }
            println!();
        }
        for (p, s) in Pattern::ALL.iter().zip(&sweeps) {
            println!("METG[{backend}/{}] = {}", p.name(), fmt_metg(s.metg_ns()));
        }

        if ablate {
            println!("\n## fast paths OFF ({backend})");
            for &p in &Pattern::ALL {
                let off = sweep(&k, p, sim, false);
                println!(
                    "METG[{backend}/{}] fast-off = {}",
                    p.name(),
                    fmt_metg(off.metg_ns())
                );
            }
        }
        eprintln!("metg: {backend} done");
    }
}
