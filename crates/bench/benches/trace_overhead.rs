//! Tracing & telemetry overhead micro-benchmark (DESIGN.md §7, §12).
//!
//! Runs the same message-heavy fan-in workload as `analyze_overhead` under
//! the four trace levels and measures host wall time per run:
//!
//! ```sh
//! cargo bench -p charm-bench --bench trace_overhead
//! ```
//!
//! The benchmark ids are `fan_in_sim/trace_off`, `…/counters_only`,
//! `…/summary` and `…/full_capture`; the off→counters ratio is the cost of
//! the always-on aggregate path (the acceptance budget is <5%),
//! counters→summary is the streaming quantum-binning increment, and
//! summary→full is the cost of timestamping and ring insertion on every
//! scheduler boundary. No cargo feature is needed — levels are set per run
//! with `Runtime::trace`.
//!
//! A second group ablates the in-band telemetry cadence (DESIGN.md §12) on
//! a quiescence-cadenced variant of the same workload, on both backends:
//! `telemetry_sim/off | every_10_qd | every_qd` and the `telemetry_threads`
//! mirror. The off→every_10_qd gap is the amortized sweep cost (probe relay
//! + frame merge up the spanning tree + held QD waiters); every_qd is the
//! worst case of one sweep per quiescence round.

use charm_core::prelude::*;
use charm_sim::MachineModel;
use criterion::{criterion_group, criterion_main, Criterion};
use serde::{Deserialize, Serialize};

const NPES: usize = 8;
const PER_PE: i64 = 32;
const ROUNDS: usize = 4;

struct Sink {
    sum: i64,
    got: usize,
    expect: usize,
    notify: Option<Future<i64>>,
}

#[derive(Serialize, Deserialize)]
enum SinkMsg {
    Push(i64),
    WhenDone { expect: usize, notify: Future<i64> },
}

impl Chare for Sink {
    type Msg = SinkMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Sink {
            sum: 0,
            got: 0,
            expect: usize::MAX,
            notify: None,
        }
    }
    fn receive(&mut self, msg: SinkMsg, ctx: &mut Ctx) {
        match msg {
            SinkMsg::Push(v) => {
                self.sum += v;
                self.got += 1;
            }
            SinkMsg::WhenDone { expect, notify } => {
                self.expect = expect;
                self.notify = Some(notify);
            }
        }
        if self.got == self.expect {
            if let Some(f) = self.notify.take() {
                ctx.send_future(&f, self.sum);
            }
        }
    }
}

struct Spray;

#[derive(Serialize, Deserialize)]
enum SprayMsg {
    Go { sink: Proxy<Sink>, per_pe: i64 },
}

impl Chare for Spray {
    type Msg = SprayMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Spray
    }
    fn receive(&mut self, msg: SprayMsg, ctx: &mut Ctx) {
        let SprayMsg::Go { sink, per_pe } = msg;
        for k in 0..per_pe {
            sink.send(ctx, SinkMsg::Push(ctx.my_pe() as i64 + k));
        }
    }
}

fn fan_in_run(trace: TraceConfig) -> charm_core::RunReport {
    let report = Runtime::new(NPES)
        .simulated(MachineModel::local(NPES))
        .trace(trace)
        .register::<Sink>()
        .register::<Spray>()
        .run(|co| {
            for _ in 0..ROUNDS {
                let sink = co.ctx().create_chare::<Sink>((), Some(0));
                let group = co.ctx().create_group::<Spray>(());
                let done = co.ctx().create_future::<i64>();
                group.send(
                    co.ctx(),
                    SprayMsg::Go {
                        sink,
                        per_pe: PER_PE,
                    },
                );
                sink.send(
                    co.ctx(),
                    SinkMsg::WhenDone {
                        expect: NPES * PER_PE as usize,
                        notify: done,
                    },
                );
                co.get(&done);
            }
            co.ctx().exit();
        });
    assert!(report.clean_exit);
    report
}

/// Quiescence-cadenced variant: the same fan-in flood followed by
/// `QD_ROUNDS` quiescence rounds, so a telemetry cadence of `every` fires
/// `QD_ROUNDS / every` in-band sweeps. `sim` selects the backend.
fn fan_in_qd_run(sim: bool, telemetry: Option<TelemetryCfg>) -> charm_core::RunReport {
    let mut rt = Runtime::new(NPES);
    if sim {
        rt = rt.simulated(MachineModel::local(NPES));
    }
    if let Some(cfg) = telemetry {
        rt = rt.telemetry(cfg);
    }
    let report = rt.register::<Sink>().register::<Spray>().run(|co| {
        let sink = co.ctx().create_chare::<Sink>((), Some(0));
        let group = co.ctx().create_group::<Spray>(());
        let done = co.ctx().create_future::<i64>();
        group.send(
            co.ctx(),
            SprayMsg::Go {
                sink,
                per_pe: PER_PE,
            },
        );
        sink.send(
            co.ctx(),
            SinkMsg::WhenDone {
                expect: NPES * PER_PE as usize,
                notify: done,
            },
        );
        co.get(&done);
        for _ in 0..QD_ROUNDS {
            let q = co.ctx().create_future::<()>();
            co.ctx().start_quiescence(&q);
            co.get(&q);
        }
        co.ctx().exit();
    });
    assert!(report.clean_exit);
    report
}

const QD_ROUNDS: usize = 10;

fn trace_overhead(c: &mut Criterion) {
    let levels = [
        ("trace_off", TraceConfig::off()),
        ("counters_only", TraceConfig::counters()),
        ("summary", TraceConfig::summary()),
        ("full_capture", TraceConfig::full()),
    ];
    for (label, cfg) in levels {
        c.bench_function(&format!("fan_in_sim/{label}"), |b| {
            b.iter(|| fan_in_run(cfg))
        });
    }
}

fn telemetry_cadence(c: &mut Criterion) {
    let cadences: [(&str, Option<u64>); 3] = [
        ("off", None),
        ("every_10_qd", Some(10)),
        ("every_qd", Some(1)),
    ];
    for (backend, sim) in [("telemetry_sim", true), ("telemetry_threads", false)] {
        for (label, every) in cadences {
            c.bench_function(&format!("{backend}/{label}"), |b| {
                b.iter(|| {
                    let r = fan_in_qd_run(sim, every.map(TelemetryCfg::every));
                    // A sweep per `every`-th QD round must actually have run;
                    // keeps the ablation honest if the cadence plumbing moves.
                    let want = every.map_or(0, |e| QD_ROUNDS / e as usize);
                    assert!(
                        r.telemetry.len() >= want,
                        "{backend}/{label}: {} frames < {want}",
                        r.telemetry.len()
                    );
                    r
                })
            });
        }
    }
}

criterion_group!(benches, trace_overhead, telemetry_cadence);

// Expanded `criterion_main!` so the run can also drop a trace artifact:
// CHARMRS_TRACE_DIR=<dir> writes the fan-in workload's Chrome trace +
// utilization summary after the timing passes.
fn main() {
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
    if charm_bench::trace_dir().is_some() {
        let r = fan_in_run(TraceConfig::full());
        charm_bench::emit_trace("micro_fan_in", &r);
    }
}
