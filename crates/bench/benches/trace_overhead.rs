//! Tracing-overhead micro-benchmark (DESIGN.md §7).
//!
//! Runs the same message-heavy fan-in workload as `analyze_overhead` under
//! the three trace levels and measures host wall time per run:
//!
//! ```sh
//! cargo bench -p charm-bench --bench trace_overhead
//! ```
//!
//! The benchmark ids are `fan_in_sim/trace_off`, `…/counters_only` and
//! `…/full_capture`; the off→counters ratio is the cost of the always-on
//! aggregate path (the acceptance budget is <5%), and counters→full is the
//! cost of timestamping and ring insertion on every scheduler boundary. No
//! cargo feature is needed — levels are set per run with `Runtime::trace`.

use charm_core::prelude::*;
use charm_sim::MachineModel;
use criterion::{criterion_group, criterion_main, Criterion};
use serde::{Deserialize, Serialize};

const NPES: usize = 8;
const PER_PE: i64 = 32;
const ROUNDS: usize = 4;

struct Sink {
    sum: i64,
    got: usize,
    expect: usize,
    notify: Option<Future<i64>>,
}

#[derive(Serialize, Deserialize)]
enum SinkMsg {
    Push(i64),
    WhenDone { expect: usize, notify: Future<i64> },
}

impl Chare for Sink {
    type Msg = SinkMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Sink {
            sum: 0,
            got: 0,
            expect: usize::MAX,
            notify: None,
        }
    }
    fn receive(&mut self, msg: SinkMsg, ctx: &mut Ctx) {
        match msg {
            SinkMsg::Push(v) => {
                self.sum += v;
                self.got += 1;
            }
            SinkMsg::WhenDone { expect, notify } => {
                self.expect = expect;
                self.notify = Some(notify);
            }
        }
        if self.got == self.expect {
            if let Some(f) = self.notify.take() {
                ctx.send_future(&f, self.sum);
            }
        }
    }
}

struct Spray;

#[derive(Serialize, Deserialize)]
enum SprayMsg {
    Go { sink: Proxy<Sink>, per_pe: i64 },
}

impl Chare for Spray {
    type Msg = SprayMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Spray
    }
    fn receive(&mut self, msg: SprayMsg, ctx: &mut Ctx) {
        let SprayMsg::Go { sink, per_pe } = msg;
        for k in 0..per_pe {
            sink.send(ctx, SinkMsg::Push(ctx.my_pe() as i64 + k));
        }
    }
}

fn fan_in_run(trace: TraceConfig) -> charm_core::RunReport {
    let report = Runtime::new(NPES)
        .simulated(MachineModel::local(NPES))
        .trace(trace)
        .register::<Sink>()
        .register::<Spray>()
        .run(|co| {
            for _ in 0..ROUNDS {
                let sink = co.ctx().create_chare::<Sink>((), Some(0));
                let group = co.ctx().create_group::<Spray>(());
                let done = co.ctx().create_future::<i64>();
                group.send(
                    co.ctx(),
                    SprayMsg::Go {
                        sink,
                        per_pe: PER_PE,
                    },
                );
                sink.send(
                    co.ctx(),
                    SinkMsg::WhenDone {
                        expect: NPES * PER_PE as usize,
                        notify: done,
                    },
                );
                co.get(&done);
            }
            co.ctx().exit();
        });
    assert!(report.clean_exit);
    report
}

fn trace_overhead(c: &mut Criterion) {
    let levels = [
        ("trace_off", TraceConfig::off()),
        ("counters_only", TraceConfig::counters()),
        ("full_capture", TraceConfig::full()),
    ];
    for (label, cfg) in levels {
        c.bench_function(&format!("fan_in_sim/{label}"), |b| {
            b.iter(|| fan_in_run(cfg))
        });
    }
}

criterion_group!(benches, trace_overhead);

// Expanded `criterion_main!` so the run can also drop a trace artifact:
// CHARMRS_TRACE_DIR=<dir> writes the fan-in workload's Chrome trace +
// utilization summary after the timing passes.
fn main() {
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
    if charm_bench::trace_dir().is_some() {
        let r = fan_in_run(TraceConfig::full());
        charm_bench::emit_trace("micro_fan_in", &r);
    }
}
