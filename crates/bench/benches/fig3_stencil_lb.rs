//! Figure 3 — stencil3d with synthetic load imbalance (Cori KNL model).
//!
//! Paper: five series on 8–128 cores — charm++ (no lb), charmpy (no lb),
//! mpi4py, charm++ (lb), charmpy (lb). Without LB all three match; with
//! load balancing every 30 iterations the charm versions run 1.9×–2.27×
//! faster (max/avg block load ≈ 2.1).
//!
//! Here: the charm versions use 4 blocks per PE (required for LB headroom,
//! as in the paper); the MPI version is stuck with its one-block-per-rank
//! decomposition. GreedyLB runs every `CHARMRS_LB_EVERY` (default 30)
//! iterations. Expected shape: lb series well below the no-lb group, with
//! speedups approaching ~2× at larger PE counts.

use std::sync::Arc;

use charm_apps::stencil3d::{charm::run_charm, mpi::run_mpi, StencilParams};
use charm_bench::{best_of, env_usize, pe_series, print_table, Series};
use charm_core::{Backend, DispatchMode, Runtime};
use charm_lb::GreedyLb;
use charm_sim::MachineModel;

fn main() {
    let iters = env_usize("CHARMRS_ITERS", 240) as u32;
    let lb_every = env_usize("CHARMRS_LB_EVERY", 30) as u32;
    let bx = env_usize("CHARMRS_BLOCK", 16); // coarse block x-thickness
    let pes = pe_series(8, 32);

    // Modeled compute (deterministic virtual time): the alpha-scaled
    // kernel charge would otherwise amplify host measurement noise ~100x.
    let nominal = 100e-6;
    let mk = |p: usize, dispatch: DispatchMode, lb: bool| {
        let rt = Runtime::new(p)
            .backend(Backend::Sim(MachineModel::cori_knl()))
            .meter_compute(false)
            .dispatch(dispatch);
        if lb {
            rt.lb_strategy(Arc::new(GreedyLb))
        } else {
            rt
        }
    };
    // MPI: one block per rank. Charm: 4 blocks per PE over the same grid.
    let coarse = |p: usize| {
        let mut s = StencilParams::new([bx * p, 32, 32], [p, 1, 1], iters);
        s.imbalance = Some(p);
        s.sync_every = 1; // residual-style reduction every iteration
        s.nominal_kernel_s = Some(nominal * 4.0); // 4x the fine block
        s
    };
    let fine = |p: usize, lb: bool| {
        let mut s = StencilParams::new([bx * p, 32, 32], [4 * p, 1, 1], iters);
        s.imbalance = Some(p);
        s.sync_every = 1;
        s.lb_every = lb.then_some(lb_every);
        s.nominal_kernel_s = Some(nominal);
        s
    };

    let mut series: Vec<Series> = [
        "charm++ (no lb)",
        "charmpy (no lb)",
        "mpi4py",
        "charm++ (lb)",
        "charmpy (lb)",
    ]
    .iter()
    .map(|l| Series {
        label: l.to_string(),
        points: Vec::new(),
    })
    .collect();

    for &p in &pes {
        let t = best_of(|| {
            run_charm(fine(p, false), mk(p, DispatchMode::Native, false)).time_per_step_ms
        });
        series[0].points.push((p, t));
        let t = best_of(|| {
            run_charm(fine(p, false), mk(p, DispatchMode::Dynamic, false)).time_per_step_ms
        });
        series[1].points.push((p, t));
        let t = best_of(|| run_mpi(coarse(p), mk(p, DispatchMode::Native, false)).time_per_step_ms);
        series[2].points.push((p, t));
        let t = best_of(|| {
            run_charm(fine(p, true), mk(p, DispatchMode::Native, true)).time_per_step_ms
        });
        series[3].points.push((p, t));
        let t = best_of(|| {
            run_charm(fine(p, true), mk(p, DispatchMode::Dynamic, true)).time_per_step_ms
        });
        series[4].points.push((p, t));
        eprintln!("fig3: {p} PEs done");
    }

    print_table(
        &format!(
            "Fig 3: stencil3d with synthetic imbalance, {iters} iters, \
             lb every {lb_every}, Cori KNL model (time per step, ms)"
        ),
        "PEs",
        &series,
    );
    println!("\n## LB speedup (no lb / lb)");
    println!("{:>8}  {:>10}  {:>10}", "PEs", "charm++", "charmpy");
    for row in 0..series[0].points.len() {
        let p = series[0].points[row].0;
        let su_xx = series[0].points[row].1 / series[3].points[row].1;
        let su_py = series[1].points[row].1 / series[4].points[row].1;
        println!("{p:>8}  {su_xx:>10.2}  {su_py:>10.2}");
    }

    // CHARMRS_TRACE_DIR=<dir>: trace the LB run at the largest point — the
    // interesting artifact here is the LbEpoch spans and migration instants.
    if charm_bench::trace_dir().is_some() {
        if let Some(&p) = pes.last() {
            let traced = mk(p, DispatchMode::Native, true).trace(charm_core::TraceConfig::full());
            let r = run_charm(fine(p, true), traced);
            charm_bench::emit_trace("fig3_stencil_lb", &r.report);
        }
    }
}
