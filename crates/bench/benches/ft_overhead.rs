//! Checkpointing-overhead micro-benchmark (DESIGN.md §8).
//!
//! Runs one QD-cadenced sim workload — a group fanning messages into a
//! single chare, one quiescence wait per round — three ways: no
//! checkpointing, buddy in-memory checkpoints every round, and disk
//! checkpoints every round. The benchmark ids land side by side in
//! criterion's reports; the ratios are the cost of the quiescence-time
//! snapshot (encode + buddy ship, or encode + atomic write/fsync) relative
//! to the bare application:
//!
//! ```sh
//! cargo bench -p charm-bench --bench ft_overhead
//! ```

use charm_core::prelude::*;
use charm_core::Store;
use charm_sim::MachineModel;
use criterion::{criterion_group, criterion_main, Criterion};
use serde::{Deserialize, Serialize};

const NPES: usize = 8;
const PER_PE: i64 = 32;
const ROUNDS: usize = 4;

#[derive(Serialize, Deserialize)]
struct Sink {
    sum: i64,
    hist: Vec<i64>,
}

#[derive(Serialize, Deserialize)]
enum SinkMsg {
    Push(i64),
}

impl Chare for Sink {
    type Msg = SinkMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Sink {
            sum: 0,
            hist: Vec::new(),
        }
    }
    fn receive(&mut self, msg: SinkMsg, _: &mut Ctx) {
        let SinkMsg::Push(v) = msg;
        self.sum += v;
        self.hist.push(v);
    }
}

#[derive(Serialize, Deserialize)]
struct Spray;

#[derive(Serialize, Deserialize)]
enum SprayMsg {
    Go { sink: Proxy<Sink>, per_pe: i64 },
}

impl Chare for Spray {
    type Msg = SprayMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Spray
    }
    fn receive(&mut self, msg: SprayMsg, ctx: &mut Ctx) {
        let SprayMsg::Go { sink, per_pe } = msg;
        for k in 0..per_pe {
            sink.send(ctx, SinkMsg::Push(ctx.my_pe() as i64 + k));
        }
    }
}

/// One fan-in round per quiescence — the QD cadence is what arms the
/// automatic checkpoint, so `ROUNDS` snapshots are taken when `store` is
/// set.
fn qd_fan_in_run(store: Option<Store>) {
    let mut rt = Runtime::new(NPES)
        .simulated(MachineModel::local(NPES))
        .register_migratable::<Sink>()
        .register_migratable::<Spray>();
    if let Some(store) = store {
        rt = rt.auto_checkpoint(1, store);
    }
    let report = rt.run(|co| {
        let sink = co.ctx().create_chare::<Sink>((), Some(0));
        let group = co.ctx().create_group::<Spray>(());
        for _ in 0..ROUNDS {
            group.send(
                co.ctx(),
                SprayMsg::Go {
                    sink,
                    per_pe: PER_PE,
                },
            );
            let q = co.ctx().create_future::<()>();
            co.ctx().start_quiescence(&q);
            co.get(&q);
        }
        co.ctx().exit();
    });
    assert!(report.clean_exit);
}

fn ckpt_overhead(c: &mut Criterion) {
    c.bench_function("qd_fan_in/ckpt_off", |b| b.iter(|| qd_fan_in_run(None)));
    c.bench_function("qd_fan_in/ckpt_buddy_mem", |b| {
        b.iter(|| qd_fan_in_run(Some(Store::Memory)))
    });
    let dir = std::env::temp_dir().join(format!("charmrs-ft-bench-{}", std::process::id()));
    c.bench_function("qd_fan_in/ckpt_disk", |b| {
        b.iter(|| qd_fan_in_run(Some(Store::Disk(dir.clone()))))
    });
    let _ = std::fs::remove_dir_all(dir);
}

criterion_group!(benches, ckpt_overhead);
criterion_main!(benches);
