//! Design-choice ablations (DESIGN.md §4): each quantifies one mechanism
//! the paper calls out.
//!
//! 1. Same-PE by-reference delivery (§II-D) — on vs off, on a chare-dense
//!    single-node stencil where most traffic is PE-local.
//! 2. Reduction spanning-tree shape (§IV-D) — arity and node-awareness,
//!    measured as virtual-time barrier latency at scale.
//! 3. Load-balancing strategies — GreedyLB vs RefineLB vs RotateLB vs
//!    RandLB vs none on the Fig-3 imbalanced stencil.

use std::sync::Arc;

use charm_apps::stencil3d::{charm::run_charm, StencilParams};
use charm_bench::env_usize;
use charm_core::prelude::*;
use charm_core::{LbStrategy, Runtime};
use charm_lb::{GreedyLb, RandLb, RefineLb, RotateLb};
use charm_sim::MachineModel;
use serde::{Deserialize, Serialize};

fn main() {
    ablation_same_pe_byref();
    ablation_tree_shape();
    ablation_lb_strategies();
}

// ---------------------------------------------------------------------------
// 1. Same-PE by-reference optimization
// ---------------------------------------------------------------------------

fn ablation_same_pe_byref() {
    let iters = env_usize("CHARMRS_ITERS", 30) as u32;
    // 16 thin slabs on 2 PEs: most ghost exchanges are PE-local, faces are
    // 32 KiB while the kernel is small, so the ablated serialization cost
    // dominates the step.
    let params = StencilParams::new([32, 64, 64], [16, 1, 1], iters);
    let run = |byref: bool, dispatch: DispatchMode| {
        let params = params.clone();
        charm_bench::best_of(move || {
            run_charm(
                params.clone(),
                Runtime::new(2)
                    .backend(Backend::Sim(MachineModel::local(2)))
                    .dispatch(dispatch)
                    .same_pe_byref(byref),
            )
            .time_per_step_ms
        })
    };
    println!("\n# Ablation: same-PE by-reference delivery (paper II-D)");
    println!("  16 thin slabs on 2 PEs, {iters} iters; ms/step");
    for (label, mode) in [
        ("native  (zero-copy Buf payloads)", DispatchMode::Native),
        ("dynamic (pickle + interp. model)", DispatchMode::Dynamic),
    ] {
        let on = run(true, mode);
        let off = run(false, mode);
        println!(
            "  {label}: by-ref {on:>8.3}  serialized {off:>8.3}  overhead {:+.1}%",
            (off / on - 1.0) * 100.0
        );
    }
}

// ---------------------------------------------------------------------------
// 2. Reduction tree shape
// ---------------------------------------------------------------------------

/// A group member that performs `rounds` back-to-back empty reductions.
struct BarrierBounce {
    left: u32,
    done: Option<Future<i64>>,
}

#[derive(Serialize, Deserialize)]
enum BounceMsg {
    Start { rounds: u32, done: Future<i64> },
}

const TAG_ROUND: u32 = 1;

impl Chare for BarrierBounce {
    type Msg = BounceMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        BarrierBounce {
            left: 0,
            done: None,
        }
    }
    fn receive(&mut self, msg: BounceMsg, ctx: &mut Ctx) {
        let BounceMsg::Start { rounds, done } = msg;
        self.left = rounds;
        self.done = Some(done);
        let target = ctx
            .this_proxy::<BarrierBounce>()
            .reduction_target(TAG_ROUND);
        ctx.contribute_barrier(target);
    }
    fn reduced(&mut self, _tag: u32, _data: RedData, ctx: &mut Ctx) {
        self.left -= 1;
        if self.left == 0 {
            if ctx.my_index().first() == 0 {
                let done = self.done.unwrap();
                ctx.send_future(&done, 0i64);
            }
            return;
        }
        let target = ctx
            .this_proxy::<BarrierBounce>()
            .reduction_target(TAG_ROUND);
        ctx.contribute_barrier(target);
    }
}

fn barrier_latency_us(npes: usize, shape: TreeShape) -> f64 {
    let rounds = 50u32;
    let out = Arc::new(std::sync::Mutex::new(0.0f64));
    let out2 = Arc::clone(&out);
    Runtime::new(npes)
        .backend(Backend::Sim(MachineModel::bluewaters(
            npes.div_ceil(32).max(8),
        )))
        .meter_compute(false)
        .tree(shape)
        .register::<BarrierBounce>()
        .run(move |co| {
            let g = co.ctx().create_group::<BarrierBounce>(());
            let done = co.ctx().create_future::<i64>();
            let t0 = co.ctx().now();
            g.send(co.ctx(), BounceMsg::Start { rounds, done });
            co.get(&done);
            let t1 = co.ctx().now();
            *out2.lock().unwrap() = (t1 - t0) * 1e6 / rounds as f64;
            co.ctx().exit();
        });
    let v = *out.lock().unwrap();
    v
}

fn ablation_tree_shape() {
    let npes = env_usize("CHARMRS_MAX_PES", 128);
    println!("\n# Ablation: reduction spanning-tree shape (paper IV-D)");
    println!("  group barrier latency over {npes} PEs (virtual us per barrier)");
    for arity in [2usize, 4, 8] {
        let flat = barrier_latency_us(
            npes,
            TreeShape {
                arity,
                cores_per_node: None,
            },
        );
        let aware = barrier_latency_us(
            npes,
            TreeShape {
                arity,
                cores_per_node: Some(32),
            },
        );
        println!("  arity {arity}: flat {flat:>9.2}   node-aware {aware:>9.2}");
    }
}

// ---------------------------------------------------------------------------
// 3. LB strategies on the Fig-3 workload
// ---------------------------------------------------------------------------

fn ablation_lb_strategies() {
    let p = 16usize;
    let iters = env_usize("CHARMRS_ITERS", 240) as u32;
    let mk_params = |lb: bool| {
        let mut s = StencilParams::new([16 * p, 32, 32], [4 * p, 1, 1], iters);
        s.imbalance = Some(p);
        s.sync_every = 1;
        s.nominal_kernel_s = Some(100e-6);
        s.lb_every = lb.then_some(30);
        s
    };
    let run = |strategy: Option<Arc<dyn LbStrategy>>| {
        let mut rt = Runtime::new(p)
            .backend(Backend::Sim(MachineModel::cori_knl()))
            .meter_compute(false);
        let lb = strategy.is_some();
        if let Some(s) = strategy {
            rt = rt.lb_strategy(s);
        }
        run_charm(mk_params(lb), rt).time_per_step_ms
    };
    println!("\n# Ablation: LB strategy on the Fig-3 imbalanced stencil ({p} PEs, ms/step)");
    let none = run(None);
    println!("  no LB:     {none:>8.3}");
    for (name, s) in [
        ("GreedyLB", Arc::new(GreedyLb) as Arc<dyn LbStrategy>),
        ("RefineLB", Arc::new(RefineLb::default())),
        ("RotateLB", Arc::new(RotateLb)),
        ("RandLB  ", Arc::new(RandLb::default())),
    ] {
        let t = run(Some(s));
        println!("  {name}:  {t:>8.3}   speedup {:>5.2}x", none / t);
    }
}
