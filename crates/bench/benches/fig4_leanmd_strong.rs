//! Figure 4 — LeanMD strong scaling (Blue Waters model).
//!
//! Paper: 8 million particles on 2048–16384 cores; CharmPy within 20% of
//! the C++ Charm++ version, the gap wider than stencil3d because the very
//! fine-grained decomposition (hundreds of chares per PE) exposes the
//! per-entry-method runtime overhead.
//!
//! Here: a scaled-down box (cells fixed, PEs 4→`CHARMRS_MAX_PES`, default
//! 32), two series: `charm++` (native dispatch) and `charmpy` (dynamic).
//! Expected shape: both scale; charmpy runs ~10–30% slower — a visibly
//! larger gap than the stencil benches, for the paper's stated reason.

use charm_apps::leanmd::{charm::run_charm, MdParams};
use charm_bench::{best_of, env_usize, pe_series, print_table, Series};
use charm_core::{Backend, DispatchMode, Runtime};
use charm_sim::MachineModel;

fn main() {
    let steps = env_usize("CHARMRS_ITERS", 10) as u32;
    let cells = env_usize("CHARMRS_CELLS", 6);
    let per_cell = env_usize("CHARMRS_PER_CELL", 64);
    let pes = pe_series(4, 32);

    let params = MdParams {
        cells: [cells, cells, cells],
        per_cell,
        cell_size: 4.0,
        cutoff: 4.0,
        dt: 0.002,
        steps,
        migrate_every: 5,
        seed: 7,
    };
    let mk = |p: usize, dispatch: DispatchMode| {
        Runtime::new(p)
            .backend(Backend::Sim(MachineModel::bluewaters(8)))
            .dispatch(dispatch)
    };

    let mut charmxx = Series {
        label: "charm++".into(),
        points: Vec::new(),
    };
    let mut charmpy = Series {
        label: "charmpy".into(),
        points: Vec::new(),
    };

    for &p in &pes {
        let t = best_of(|| run_charm(params.clone(), mk(p, DispatchMode::Native)).time_per_step_ms);
        charmxx.points.push((p, t));
        let t =
            best_of(|| run_charm(params.clone(), mk(p, DispatchMode::Dynamic)).time_per_step_ms);
        charmpy.points.push((p, t));
        eprintln!("fig4: {p} PEs done");
    }

    let n_computes = params.all_computes().len();
    let series = [charmxx, charmpy];
    print_table(
        &format!(
            "Fig 4: LeanMD strong scaling, {c}^3 cells x {per_cell} particles \
             ({} computes), {steps} steps, Blue Waters model (time per step, ms)",
            n_computes,
            c = cells,
        ),
        "PEs",
        &series,
    );
    println!("\n## charmpy / charm++ overhead");
    for row in 0..series[0].points.len() {
        let p = series[0].points[row].0;
        let r = series[1].points[row].1 / series[0].points[row].1;
        println!("{p:>8}  {:>8.1}%", (r - 1.0) * 100.0);
    }

    // CHARMRS_TRACE_DIR=<dir>: re-run the largest point under full capture
    // and drop a Chrome trace + utilization summary (DESIGN.md §7).
    if charm_bench::trace_dir().is_some() {
        if let Some(&p) = pes.last() {
            let traced = mk(p, DispatchMode::Native).trace(charm_core::TraceConfig::full());
            let r = run_charm(params.clone(), traced);
            charm_bench::emit_trace("fig4_leanmd_strong", &r.report);
        }
    }
}
