//! Simulator event throughput at cluster scale.
//!
//! The scaling figures rest on the sim backend processing hundreds of
//! thousands of scheduler events per wall-clock second while modeling
//! 1k–65k PEs. This bench pins that number down: a group chare on every
//! PE circulates ring tokens (`tokens` per PE, each forwarded `hops`
//! times, every hop one remote entry message), and the score is
//! QD-counted envelopes handled per host-second — `report.msgs / wall`.
//! Per-PE work is constant, so events grow linearly with PEs and the
//! events/sec column directly exposes any super-linear scheduler
//! structure (per-event allocation, O(npes) traversals, fat envelopes).
//!
//! Knobs: `CHARMRS_ST_PES` (comma list, default `1024,16384,65536`),
//! `CHARMRS_ST_TOKENS` (2 per PE), `CHARMRS_ST_HOPS` (8).

use std::sync::{Arc, Mutex};

use charm_core::prelude::*;
use charm_core::Runtime;
use charm_sim::MachineModel;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
struct PulseParams {
    tokens: u32,
    hops: u32,
}

/// One member per PE; forwards tokens around the PE ring.
#[derive(Serialize, Deserialize)]
struct Pulse {
    params: PulseParams,
    handled: u64,
    deaths: u32,
    done: Option<Future<RedData>>,
}

#[derive(Serialize, Deserialize)]
enum PulseMsg {
    /// Broadcast: seed this member's tokens.
    Start { done: Future<RedData> },
    /// A ring token with `ttl` forwards left before it dies.
    Token { ttl: u32 },
}

impl Pulse {
    /// Each seeded token dies `hops` PEs to the right, so every PE sees
    /// exactly `tokens` deaths — local completion needs no coordination.
    fn finished(&self) -> bool {
        self.deaths == self.params.tokens
    }

    fn contribute_done(&mut self, ctx: &mut Ctx) {
        let done = self.done.take().expect("pulse finished without Start");
        ctx.contribute(
            RedData::I64(self.handled as i64),
            Reducer::Sum,
            RedTarget::Future(done.id()),
        );
    }
}

impl Chare for Pulse {
    type Msg = PulseMsg;
    type Init = PulseParams;

    fn create(params: PulseParams, _ctx: &mut Ctx) -> Self {
        Pulse {
            params,
            handled: 0,
            deaths: 0,
            done: None,
        }
    }

    fn receive(&mut self, msg: PulseMsg, ctx: &mut Ctx) {
        let me = ctx.this_proxy::<Pulse>();
        let next = ((ctx.my_pe() + 1) % ctx.num_pes()) as i32;
        match msg {
            PulseMsg::Start { done } => {
                self.done = Some(done);
                for _ in 0..self.params.tokens {
                    me.elem(next).send(
                        ctx,
                        PulseMsg::Token {
                            ttl: self.params.hops - 1,
                        },
                    );
                }
                if self.params.tokens == 0 {
                    self.contribute_done(ctx);
                }
            }
            PulseMsg::Token { ttl } => {
                self.handled += 1;
                if ttl > 0 {
                    me.elem(next).send(ctx, PulseMsg::Token { ttl: ttl - 1 });
                } else {
                    self.deaths += 1;
                }
                if self.finished() {
                    self.contribute_done(ctx);
                }
            }
        }
    }
}

fn pes_list() -> Vec<usize> {
    std::env::var("CHARMRS_ST_PES")
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1024, 16_384, 65_536])
}

fn env_u32(name: &str, default: u32) -> u32 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

fn main() {
    let tokens = env_u32("CHARMRS_ST_TOKENS", 2);
    let hops = env_u32("CHARMRS_ST_HOPS", 8);
    let params = PulseParams { tokens, hops };

    println!("# sim throughput — ring pulse, {tokens} tokens/PE x {hops} hops");
    println!(
        "{:>8}  {:>12}  {:>10}  {:>12}  {:>10}",
        "PEs", "events", "wall s", "events/s", "hops sum"
    );
    for p in pes_list() {
        let out: Arc<Mutex<Option<RedData>>> = Arc::new(Mutex::new(None));
        let out2 = Arc::clone(&out);
        let params = params.clone();
        let rt = Runtime::new(p).backend(Backend::Sim(MachineModel::bluewaters(
            p.div_ceil(32).max(8),
        )));
        let report = rt.register::<Pulse>().run(move |co| {
            let grp = co.ctx().create_group::<Pulse>(params.clone());
            let done = co.ctx().create_future::<RedData>();
            grp.send(co.ctx(), PulseMsg::Start { done });
            *out2.lock().unwrap() = Some(co.get(&done));
            co.ctx().exit();
        });
        let handled = match out.lock().unwrap().take() {
            Some(RedData::I64(v)) => v as u64,
            other => panic!("pulse reduction returned {other:?}"),
        };
        let expected = p as u64 * tokens as u64 * hops as u64;
        assert_eq!(handled, expected, "lost or duplicated ring tokens");
        let wall = report.wall.as_secs_f64();
        let rate = if wall > 0.0 {
            report.msgs as f64 / wall
        } else {
            f64::INFINITY
        };
        println!(
            "{:>8}  {:>12}  {:>10.3}  {:>12.0}  {:>10}",
            p, report.msgs, wall, rate, handled
        );
    }
}
