//! TRAM-style aggregation ablation (DESIGN.md §9): messages-per-second of
//! fine-grained traffic with per-destination coalescing off vs batch-size
//! 8 / 64 / 512, on both backends.
//!
//! Two workloads, both dominated by small cross-PE envelopes:
//!   * `ping_ring` — many concurrent tokens hopping PE-to-PE around a group
//!     ring, the pure per-message-overhead case aggregation targets;
//!   * `histo` — the histogram-sort mini-app, whose key-exchange phase is a
//!     fine-grained all-to-all.
//!
//! Throughput is reported in logical messages (ring hops / keys moved), so
//! a higher number means aggregation amortized per-envelope cost, not that
//! fewer messages were delivered.

use charm_apps::histo::{run_histo, HistoParams};
use charm_core::prelude::*;
use charm_sim::MachineModel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use serde::{Deserialize, Serialize};

const NPES: usize = 4;
const TOKENS: u32 = 64;
const HOPS_PER_TOKEN: u32 = 128;

/// The four ablation points; `None` is the aggregation-off baseline.
fn agg_points() -> [(&'static str, Option<AggCfg>); 4] {
    [
        ("off", None),
        ("batch8", Some(AggCfg::count(8))),
        ("batch64", Some(AggCfg::count(64))),
        ("batch512", Some(AggCfg::count(512))),
    ]
}

fn make_rt(sim: bool, agg: Option<AggCfg>) -> Runtime {
    let mut rt = if sim {
        Runtime::new(NPES)
            .backend(Backend::Sim(MachineModel::local(NPES)))
            .meter_compute(false)
    } else {
        Runtime::new(NPES)
    };
    if let Some(cfg) = agg {
        rt = rt.aggregation(cfg);
    }
    rt
}

// ---------------------------------------------------------------------------
// Ping-ring: TOKENS tokens each make HOPS_PER_TOKEN hops around the PE ring.
// ---------------------------------------------------------------------------

struct Collector {
    got: u32,
    expect: u32,
    notify: Option<Future<()>>,
}

#[derive(Serialize, Deserialize)]
enum CollectorMsg {
    Arm { expect: u32, notify: Future<()> },
    Done,
}

impl Chare for Collector {
    type Msg = CollectorMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Collector {
            got: 0,
            expect: u32::MAX,
            notify: None,
        }
    }
    fn receive(&mut self, msg: CollectorMsg, ctx: &mut Ctx) {
        match msg {
            CollectorMsg::Arm { expect, notify } => {
                self.expect = expect;
                self.notify = Some(notify);
            }
            CollectorMsg::Done => self.got += 1,
        }
        if self.got == self.expect {
            if let Some(f) = self.notify.take() {
                ctx.send_future(&f, ());
            }
        }
    }
}

struct Hop;

#[derive(Serialize, Deserialize)]
enum HopMsg {
    Token {
        hops_left: u32,
        collector: Proxy<Collector>,
    },
}

impl Chare for Hop {
    type Msg = HopMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Hop
    }
    fn receive(&mut self, msg: HopMsg, ctx: &mut Ctx) {
        let HopMsg::Token {
            hops_left,
            collector,
        } = msg;
        if hops_left == 0 {
            collector.send(ctx, CollectorMsg::Done);
        } else {
            let next = (ctx.my_pe() + 1) % ctx.num_pes();
            ctx.this_proxy::<Hop>().elem(next).send(
                ctx,
                HopMsg::Token {
                    hops_left: hops_left - 1,
                    collector,
                },
            );
        }
    }
}

fn run_ping_ring(rt: Runtime) {
    rt.register::<Hop>().register::<Collector>().run(|co| {
        let ring = co.ctx().create_group::<Hop>(());
        let collector = co.ctx().create_chare::<Collector>((), Some(0));
        let done = co.ctx().create_future::<()>();
        collector.send(
            co.ctx(),
            CollectorMsg::Arm {
                expect: TOKENS,
                notify: done,
            },
        );
        for t in 0..TOKENS {
            ring.elem((t as usize) % co.ctx().num_pes()).send(
                co.ctx(),
                HopMsg::Token {
                    hops_left: HOPS_PER_TOKEN,
                    collector: collector.clone(),
                },
            );
        }
        co.get(&done);
        co.ctx().exit();
    });
}

fn ping_ring_benches(c: &mut Criterion) {
    for (backend, sim) in [("sim", true), ("threads", false)] {
        let mut g = c.benchmark_group(format!("agg_ping_ring_{backend}"));
        g.throughput(Throughput::Elements(u64::from(TOKENS * HOPS_PER_TOKEN)));
        for (name, agg) in agg_points() {
            g.bench_with_input(BenchmarkId::from_parameter(name), &agg, |b, &agg| {
                b.iter(|| run_ping_ring(make_rt(sim, agg)))
            });
        }
        g.finish();
    }
}

// ---------------------------------------------------------------------------
// Histogram sort: fine-grained all-to-all key exchange.
// ---------------------------------------------------------------------------

fn histo_benches(c: &mut Criterion) {
    let params = HistoParams::small();
    let keys = params.chares as u64 * params.keys_per_chare as u64;
    for (backend, sim) in [("sim", true), ("threads", false)] {
        let mut g = c.benchmark_group(format!("agg_histo_{backend}"));
        g.throughput(Throughput::Elements(keys));
        for (name, agg) in agg_points() {
            g.bench_with_input(BenchmarkId::from_parameter(name), &agg, |b, &agg| {
                b.iter(|| {
                    let r = run_histo(params.clone(), make_rt(sim, agg));
                    assert!(r.sorted);
                    r.key_sum
                })
            });
        }
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = ping_ring_benches, histo_benches
}
criterion_main!(benches);
