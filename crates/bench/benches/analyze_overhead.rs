//! Detector-overhead micro-benchmark (DESIGN.md §6).
//!
//! Runs one message-heavy sim workload — a group fanning messages into a
//! single chare, repeated for several rounds — and measures the *host* wall
//! time per run. Build it twice:
//!
//! ```sh
//! cargo bench -p charm-bench --bench analyze_overhead
//! cargo bench -p charm-bench --bench analyze_overhead --features analyze
//! ```
//!
//! The benchmark id carries the feature state (`detector_off` /
//! `detector_on`), so the two runs land side by side in criterion's
//! reports; the ratio is the cost of vector-clock stamping, delivered-set
//! bookkeeping and the per-channel FIFO checks on every envelope.

use charm_core::prelude::*;
use charm_sim::MachineModel;
use criterion::{criterion_group, criterion_main, Criterion};
use serde::{Deserialize, Serialize};

const NPES: usize = 8;
const PER_PE: i64 = 32;
const ROUNDS: usize = 4;

struct Sink {
    sum: i64,
    got: usize,
    expect: usize,
    notify: Option<Future<i64>>,
}

#[derive(Serialize, Deserialize)]
enum SinkMsg {
    Push(i64),
    WhenDone { expect: usize, notify: Future<i64> },
}

impl Chare for Sink {
    type Msg = SinkMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Sink {
            sum: 0,
            got: 0,
            expect: usize::MAX,
            notify: None,
        }
    }
    fn receive(&mut self, msg: SinkMsg, ctx: &mut Ctx) {
        match msg {
            SinkMsg::Push(v) => {
                self.sum += v;
                self.got += 1;
            }
            SinkMsg::WhenDone { expect, notify } => {
                self.expect = expect;
                self.notify = Some(notify);
            }
        }
        if self.got == self.expect {
            if let Some(f) = self.notify.take() {
                ctx.send_future(&f, self.sum);
            }
        }
    }
}

struct Spray;

#[derive(Serialize, Deserialize)]
enum SprayMsg {
    Go { sink: Proxy<Sink>, per_pe: i64 },
}

impl Chare for Spray {
    type Msg = SprayMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Spray
    }
    fn receive(&mut self, msg: SprayMsg, ctx: &mut Ctx) {
        let SprayMsg::Go { sink, per_pe } = msg;
        for k in 0..per_pe {
            sink.send(ctx, SinkMsg::Push(ctx.my_pe() as i64 + k));
        }
    }
}

fn fan_in_run() {
    let report = Runtime::new(NPES)
        .simulated(MachineModel::local(NPES))
        .register::<Sink>()
        .register::<Spray>()
        .run(|co| {
            for _ in 0..ROUNDS {
                let sink = co.ctx().create_chare::<Sink>((), Some(0));
                let group = co.ctx().create_group::<Spray>(());
                let done = co.ctx().create_future::<i64>();
                group.send(
                    co.ctx(),
                    SprayMsg::Go {
                        sink,
                        per_pe: PER_PE,
                    },
                );
                sink.send(
                    co.ctx(),
                    SinkMsg::WhenDone {
                        expect: NPES * PER_PE as usize,
                        notify: done,
                    },
                );
                co.get(&done);
            }
            co.ctx().exit();
        });
    assert!(report.clean_exit);
}

fn detector_overhead(c: &mut Criterion) {
    let label = if cfg!(feature = "analyze") {
        "detector_on"
    } else {
        "detector_off"
    };
    c.bench_function(&format!("fan_in_sim/{label}"), |b| b.iter(fan_in_run));
}

criterion_group!(benches, detector_overhead);
criterion_main!(benches);
