//! Reductions (paper §II-F, §IV-D).
//!
//! All members of a collection call `contribute(data, reducer, target)`;
//! partial results flow up a PE spanning tree and the root delivers the
//! final value to the target — an entry method of a chare, a broadcast to a
//! whole collection, or a future. Reductions are asynchronous: nobody
//! blocks, and multiple reductions (even on one collection) can be in
//! flight, sequenced per member by contribution order.

use std::collections::HashMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::ids::{ChareId, CollectionId, FutureId, Index};

/// Data contributed to (and produced by) a reduction.
///
/// Built-in reducers understand the numeric variants; `Bytes` carries
/// opaque user values for custom reducers and gathers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RedData {
    /// No data: the empty reduction, used as a barrier (paper §II-F).
    Unit,
    /// A single signed integer.
    I64(i64),
    /// A single float.
    F64(f64),
    /// A single boolean (for `And`/`Or`).
    Bool(bool),
    /// An integer vector, reduced element-wise.
    VecI64(Vec<i64>),
    /// A float vector, reduced element-wise (the "NumPy array" case).
    VecF64(Vec<f64>),
    /// Opaque bytes for custom reducers.
    Bytes(Vec<u8>),
    /// Per-contributor values keyed by member index, kept sorted by index.
    Gather(Vec<(Index, Vec<u8>)>),
}

impl RedData {
    /// Short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            RedData::Unit => "unit",
            RedData::I64(_) => "i64",
            RedData::F64(_) => "f64",
            RedData::Bool(_) => "bool",
            RedData::VecI64(_) => "vec<i64>",
            RedData::VecF64(_) => "vec<f64>",
            RedData::Bytes(_) => "bytes",
            RedData::Gather(_) => "gather",
        }
    }

    /// Extract an `i64`, panicking with a clear message otherwise.
    pub fn as_i64(&self) -> i64 {
        match self {
            RedData::I64(v) => *v,
            // analyze: allow(panic, "API contract: the program asked for i64 but the reducer yielded another kind; user bug surfaced at the boundary")
            other => panic!("reduction produced {}, expected i64", other.kind()),
        }
    }

    /// Extract an `f64`.
    pub fn as_f64(&self) -> f64 {
        match self {
            RedData::F64(v) => *v,
            // analyze: allow(panic, "API contract: result-kind mismatch (expected f64) is a user bug surfaced at the boundary")
            other => panic!("reduction produced {}, expected f64", other.kind()),
        }
    }

    /// Extract a float vector.
    pub fn as_vec_f64(&self) -> &[f64] {
        match self {
            RedData::VecF64(v) => v,
            // analyze: allow(panic, "API contract: result-kind mismatch (expected vec<f64>) is a user bug surfaced at the boundary")
            other => panic!("reduction produced {}, expected vec<f64>", other.kind()),
        }
    }

    /// Extract an integer vector.
    pub fn as_vec_i64(&self) -> &[i64] {
        match self {
            RedData::VecI64(v) => v,
            // analyze: allow(panic, "API contract: result-kind mismatch (expected vec<i64>) is a user bug surfaced at the boundary")
            other => panic!("reduction produced {}, expected vec<i64>", other.kind()),
        }
    }

    /// Approximate payload size in bytes, for network cost accounting.
    pub fn size_hint(&self) -> usize {
        match self {
            RedData::Unit => 1,
            RedData::I64(_) | RedData::F64(_) => 9,
            RedData::Bool(_) => 2,
            RedData::VecI64(v) => 8 * v.len() + 9,
            RedData::VecF64(v) => 8 * v.len() + 9,
            RedData::Bytes(b) => b.len() + 9,
            RedData::Gather(g) => g.iter().map(|(_, b)| b.len() + 32).sum::<usize>() + 9,
        }
    }
}

/// The reduction function applied to contributed data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Reducer {
    /// Discard data; used for empty (barrier) reductions.
    Nop,
    /// Arithmetic sum (element-wise for vectors).
    Sum,
    /// Product (element-wise for vectors).
    Product,
    /// Maximum (element-wise for vectors).
    Max,
    /// Minimum (element-wise for vectors).
    Min,
    /// Logical AND over booleans.
    And,
    /// Logical OR over booleans.
    Or,
    /// Collect every contribution, sorted by member index.
    Gather,
    /// A user-registered reducer (paper §II-F1), by registration id.
    Custom(u32),
}

/// Signature of a user-defined reducer: combines ≥1 contributions.
pub type CustomReduceFn = dyn Fn(Vec<RedData>) -> RedData + Send + Sync;

/// Registry of custom reducers. Registration must happen identically on the
/// runtime builder before start, mirroring `Reducer.addReducer` in CharmPy.
#[derive(Default, Clone)]
pub struct CustomReducers {
    fns: Vec<(String, Arc<CustomReduceFn>)>,
}

impl CustomReducers {
    /// Register `f` under `name`; returns the `Reducer` handle to pass to
    /// `contribute`.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(Vec<RedData>) -> RedData + Send + Sync + 'static,
    ) -> Reducer {
        let id = self.fns.len() as u32;
        self.fns.push((name.into(), Arc::new(f)));
        Reducer::Custom(id)
    }

    /// Look up a reducer registered earlier by name.
    pub fn by_name(&self, name: &str) -> Option<Reducer> {
        self.fns
            .iter()
            .position(|(n, _)| n == name)
            .map(|i| Reducer::Custom(i as u32))
    }

    fn get(&self, id: u32) -> &CustomReduceFn {
        &*self
            .fns
            .get(id as usize)
            // analyze: allow(panic, "using a custom reducer id that was never registered is a user bug; no sane fallback exists")
            .unwrap_or_else(|| panic!("custom reducer {id} not registered"))
            .1
    }
}

fn combine2(r: Reducer, a: RedData, b: RedData) -> RedData {
    use RedData::*;
    use Reducer::*;
    match (r, a, b) {
        (Nop, _, _) => Unit,
        // Integer sum/product wrap (two's complement), the semantics of
        // C++/NumPy reductions; panicking mid-reduction would be worse.
        (Sum, I64(x), I64(y)) => I64(x.wrapping_add(y)),
        (Sum, F64(x), F64(y)) => F64(x + y),
        (Product, I64(x), I64(y)) => I64(x.wrapping_mul(y)),
        (Product, F64(x), F64(y)) => F64(x * y),
        (Max, I64(x), I64(y)) => I64(x.max(y)),
        (Max, F64(x), F64(y)) => F64(x.max(y)),
        (Min, I64(x), I64(y)) => I64(x.min(y)),
        (Min, F64(x), F64(y)) => F64(x.min(y)),
        (And, Bool(x), Bool(y)) => Bool(x && y),
        (Or, Bool(x), Bool(y)) => Bool(x || y),
        (op, VecI64(mut x), VecI64(y)) => {
            assert_eq!(x.len(), y.len(), "vector reduction length mismatch");
            for (xi, yi) in x.iter_mut().zip(&y) {
                *xi = match op {
                    Sum => xi.wrapping_add(*yi),
                    Product => xi.wrapping_mul(*yi),
                    Max => (*xi).max(*yi),
                    Min => (*xi).min(*yi),
                    // analyze: allow(panic, "API contract: applying this reducer to vec<i64> is undefined; user bug")
                    _ => panic!("reducer {op:?} not applicable to vec<i64>"),
                };
            }
            VecI64(x)
        }
        (op, VecF64(mut x), VecF64(y)) => {
            assert_eq!(x.len(), y.len(), "vector reduction length mismatch");
            for (xi, yi) in x.iter_mut().zip(&y) {
                *xi = match op {
                    Sum => *xi + yi,
                    Product => *xi * yi,
                    Max => xi.max(*yi),
                    Min => xi.min(*yi),
                    // analyze: allow(panic, "API contract: applying this reducer to vec<f64> is undefined; user bug")
                    _ => panic!("reducer {op:?} not applicable to vec<f64>"),
                };
            }
            VecF64(x)
        }
        (Reducer::Gather, RedData::Gather(mut x), RedData::Gather(y)) => {
            x.extend(y);
            x.sort_by_key(|a| a.0);
            RedData::Gather(x)
        }
        // analyze: allow(panic, "API contract: contributions of mismatched kinds cannot be combined; user bug")
        (op, a, b) => panic!(
            "reducer {op:?} cannot combine {} with {}",
            a.kind(),
            b.kind()
        ),
    }
}

/// Combine a batch of contributions under `reducer`.
///
/// # Panics
/// Panics if contributions have mismatched variants for the reducer — that
/// is an application bug, as in CharmPy.
pub fn combine(reducer: Reducer, mut parts: Vec<RedData>, custom: &CustomReducers) -> RedData {
    if let Reducer::Custom(id) = reducer {
        return custom.get(id)(parts);
    }
    if reducer == Reducer::Nop {
        return RedData::Unit;
    }
    let mut acc = match parts.is_empty() {
        // analyze: allow(panic, "combine is only called once at least one part exists; empty input is a scheduler bug worth failing fast")
        true => panic!("combine called with no contributions"),
        false => parts.remove(0),
    };
    for p in parts {
        acc = combine2(reducer, acc, p);
    }
    acc
}

/// Where the final reduced value is delivered.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RedTarget {
    /// Complete a future with the value.
    Future(FutureId),
    /// Invoke `reduced(tag, data)` on one chare.
    Element(ChareId, u32),
    /// Invoke `reduced(tag, data)` on every member of a collection.
    Broadcast(CollectionId, u32),
}

/// Per-PE state of one in-flight reduction `(collection, redno)`.
#[derive(Default)]
pub struct RedState {
    /// Contributions from members local to this PE (pre-combined lazily).
    pub parts: Vec<RedData>,
    /// Members covered by `parts` (locals plus child-subtree counts).
    pub count: u64,
    /// Local members that have contributed so far.
    pub local_got: usize,
    /// The reducer, fixed by the first contribution seen.
    pub reducer: Option<Reducer>,
    /// The target, fixed by the first *member* contribution seen.
    pub target: Option<RedTarget>,
}

/// Map of in-flight reductions on a PE.
pub type RedTable = HashMap<(CollectionId, u64), RedState>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_reducers() {
        let c = CustomReducers::default();
        assert_eq!(
            combine(
                Reducer::Sum,
                vec![RedData::I64(1), RedData::I64(2), RedData::I64(3)],
                &c
            ),
            RedData::I64(6)
        );
        assert_eq!(
            combine(
                Reducer::Product,
                vec![RedData::F64(2.0), RedData::F64(4.0)],
                &c
            ),
            RedData::F64(8.0)
        );
        assert_eq!(
            combine(Reducer::Max, vec![RedData::I64(-5), RedData::I64(3)], &c),
            RedData::I64(3)
        );
        assert_eq!(
            combine(
                Reducer::Min,
                vec![RedData::F64(1.5), RedData::F64(-2.5)],
                &c
            ),
            RedData::F64(-2.5)
        );
    }

    #[test]
    fn boolean_reducers() {
        let c = CustomReducers::default();
        assert_eq!(
            combine(
                Reducer::And,
                vec![RedData::Bool(true), RedData::Bool(false)],
                &c
            ),
            RedData::Bool(false)
        );
        assert_eq!(
            combine(
                Reducer::Or,
                vec![RedData::Bool(false), RedData::Bool(true)],
                &c
            ),
            RedData::Bool(true)
        );
    }

    #[test]
    fn vector_reducers_elementwise() {
        let c = CustomReducers::default();
        assert_eq!(
            combine(
                Reducer::Sum,
                vec![
                    RedData::VecF64(vec![1.0, 2.0]),
                    RedData::VecF64(vec![10.0, 20.0])
                ],
                &c
            ),
            RedData::VecF64(vec![11.0, 22.0])
        );
        assert_eq!(
            combine(
                Reducer::Max,
                vec![RedData::VecI64(vec![1, 9]), RedData::VecI64(vec![5, 2])],
                &c
            ),
            RedData::VecI64(vec![5, 9])
        );
    }

    #[test]
    fn nop_yields_unit() {
        let c = CustomReducers::default();
        assert_eq!(
            combine(Reducer::Nop, vec![RedData::Unit, RedData::Unit], &c),
            RedData::Unit
        );
    }

    #[test]
    fn gather_sorts_by_index() {
        let c = CustomReducers::default();
        let a = RedData::Gather(vec![(Index::from(3), vec![3]), (Index::from(1), vec![1])]);
        let b = RedData::Gather(vec![(Index::from(2), vec![2])]);
        let out = combine(Reducer::Gather, vec![a, b], &c);
        match out {
            RedData::Gather(items) => {
                let idx: Vec<i32> = items.iter().map(|(i, _)| i.first()).collect();
                assert_eq!(idx, vec![1, 2, 3]);
            }
            // analyze: allow(panic, "API contract: reading a gather result from a non-gather reduction is a user bug")
            other => panic!("expected gather, got {other:?}"),
        }
    }

    #[test]
    fn custom_reducer_roundtrip() {
        let mut c = CustomReducers::default();
        let r = c.register("hypot", |parts| {
            let s: f64 = parts.iter().map(|p| p.as_f64().powi(2)).sum();
            RedData::F64(s.sqrt())
        });
        assert_eq!(c.by_name("hypot"), Some(r));
        let out = combine(r, vec![RedData::F64(3.0), RedData::F64(4.0)], &c);
        assert_eq!(out, RedData::F64(5.0));
    }

    #[test]
    #[should_panic(expected = "cannot combine")]
    fn mismatched_kinds_panic() {
        let c = CustomReducers::default();
        combine(Reducer::Sum, vec![RedData::I64(1), RedData::F64(1.0)], &c);
    }

    #[test]
    fn combine_is_associative_sum() {
        let c = CustomReducers::default();
        // (a+b)+c == a+(b+c) — the property the tree reduction relies on.
        let abc = combine(
            Reducer::Sum,
            vec![
                combine(Reducer::Sum, vec![RedData::I64(1), RedData::I64(2)], &c),
                RedData::I64(3),
            ],
            &c,
        );
        let abc2 = combine(
            Reducer::Sum,
            vec![
                RedData::I64(1),
                combine(Reducer::Sum, vec![RedData::I64(2), RedData::I64(3)], &c),
            ],
            &c,
        );
        assert_eq!(abc, abc2);
    }
}
