//! Checkpoint / restart — the paper's fault-tolerance future-work item.
//!
//! `ctx.checkpoint(dir, &done)` makes every PE serialize its local chares
//! (state, reduction sequence numbers, and any when-guard-buffered
//! messages) plus the collection metadata into `dir/pe<N>.ckpt`. A later
//! `Runtime::run_restored(dir, entry)` reads every file, re-installs the
//! collections and redistributes the chares by their placement policy —
//! possibly onto a *different* number of PEs — before running `entry`,
//! which re-kicks the application (e.g. re-broadcasts its Start message
//! with the saved iteration number).
//!
//! On top of the manual protocol sits Charm++-style *double in-memory
//! (buddy) checkpointing*: with `Runtime::auto_checkpoint(every, store)`
//! armed, the runtime snapshots every PE at a quiescence cadence and each
//! PE's image is also held in memory by its buddy `(pe+1) % npes`, so the
//! supervisor can rebuild a dead PE's state from the surviving copy. Every
//! image carries a monotonically increasing recovery `epoch`; restores only
//! accept a set of files that agree on it.
//!
//! Requirements, as in Charm++'s double checkpointing: all chare types are
//! registered migratable, and the checkpoint is taken at an application
//! sync point with no messages in flight and no suspended coroutines
//! (quiescence detection is the easy way to guarantee this — the automatic
//! cadence piggybacks on it). Futures and coroutine stacks are *not*
//! checkpointed.
//!
//! With TRAM-style aggregation on (`Runtime::aggregation`), "no messages in
//! flight" additionally requires that no message sits parked in a
//! sender-side batch buffer: `PeState::ckpt_save` flushes every aggregation
//! buffer before packing chares, so a snapshot never captures a world whose
//! already-counted sends would die with the failed incarnation's buffers.

use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::collections::CollSpec;
use crate::ids::{CollectionId, FutureId, Index};

/// One serialized chare in a checkpoint.
#[derive(Clone, Serialize, Deserialize)]
pub struct CkptChare {
    /// Its collection.
    pub coll: CollectionId,
    /// Its index.
    pub index: Index,
    /// Serialized state (the migratable pack).
    pub data: Vec<u8>,
    /// Reduction sequence number.
    pub red_seq: u64,
    /// When-guard-buffered messages, serialized, with reply futures and
    /// per-message guard ids. (Reply futures are only meaningful when
    /// restoring into the same run; cross-run restores should checkpoint
    /// with none pending.)
    pub buffered: Vec<(Vec<u8>, Option<FutureId>, Option<u32>)>,
}

/// One PE's checkpoint file.
#[derive(Clone, Serialize, Deserialize)]
pub struct CkptFile {
    /// Format version.
    pub version: u32,
    /// Number of PEs at checkpoint time.
    pub npes: u64,
    /// Recovery epoch: strictly increases with every checkpoint taken, and
    /// keeps increasing across restarts. A restore requires every file in
    /// the set to agree on it.
    pub epoch: u64,
    /// Collection metadata known to this PE.
    pub specs: Vec<CollSpec>,
    /// This PE's local chares.
    pub chares: Vec<CkptChare>,
}

/// Current checkpoint format version (2 added the recovery epoch).
pub const CKPT_VERSION: u32 = 2;

/// Where automatic checkpoints (`Runtime::auto_checkpoint`) are kept.
#[derive(Debug, Clone)]
pub enum Store {
    /// Per-generation subdirectories `ckpt-<epoch>/` under this root, each
    /// written atomically; survives process death and allows restoring onto
    /// a different PE count via [`latest_complete_dir`].
    Disk(PathBuf),
    /// Charm++-style double in-memory checkpointing: each PE keeps its own
    /// image plus a copy of its buddy's (`(pe+1) % npes` holds PE `pe`'s).
    /// No filesystem traffic; recovery is same-process only.
    Memory,
}

/// Everything that can go wrong reading or writing a checkpoint set.
#[derive(Debug)]
pub enum CkptError {
    /// Filesystem failure at `path`.
    Io {
        path: PathBuf,
        source: std::io::Error,
    },
    /// A file's bytes did not decode as a checkpoint image.
    Decode { pe: usize, msg: String },
    /// Format version skew.
    Version {
        pe: usize,
        found: u32,
        expected: u32,
    },
    /// A `pe<N>.ckpt.tmp` survives in the directory: a writer crashed
    /// mid-checkpoint and the set cannot be trusted.
    TmpLeftover { path: PathBuf },
    /// No checkpoint files at all.
    Empty { dir: PathBuf },
    /// `pe<N>.ckpt` missing from a set whose files record `expected` PEs.
    Gap { pe: usize, expected: usize },
    /// A file for a PE beyond the recorded PE count.
    Stray { pe: usize, expected: usize },
    /// Files disagree about how many PEs took the checkpoint.
    NpesMismatch {
        pe: usize,
        found: u64,
        expected: u64,
    },
    /// Files come from different checkpoint generations.
    EpochMismatch {
        pe: usize,
        found: u64,
        expected: u64,
    },
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Io { path, source } => {
                write!(f, "checkpoint I/O error at {}: {source}", path.display())
            }
            CkptError::Decode { pe, msg } => {
                write!(f, "checkpoint file for PE {pe} is corrupt: {msg}")
            }
            CkptError::Version {
                pe,
                found,
                expected,
            } => write!(
                f,
                "checkpoint file for PE {pe} has version {found} (expected {expected})"
            ),
            CkptError::TmpLeftover { path } => write!(
                f,
                "leftover temporary checkpoint file {} — a checkpoint was interrupted; \
                 the set is untrustworthy",
                path.display()
            ),
            CkptError::Empty { dir } => {
                write!(f, "no checkpoint files found in {}", dir.display())
            }
            CkptError::Gap { pe, expected } => write!(
                f,
                "checkpoint set is missing pe{pe}.ckpt (files record {expected} PEs)"
            ),
            CkptError::Stray { pe, expected } => write!(
                f,
                "checkpoint set has pe{pe}.ckpt but files record only {expected} PEs"
            ),
            CkptError::NpesMismatch {
                pe,
                found,
                expected,
            } => write!(
                f,
                "checkpoint file for PE {pe} records {found} PEs but PE 0's records {expected}"
            ),
            CkptError::EpochMismatch {
                pe,
                found,
                expected,
            } => write!(
                f,
                "checkpoint file for PE {pe} is from epoch {found} but PE 0's is from {expected}"
            ),
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

fn io_err(path: &Path, source: std::io::Error) -> CkptError {
    CkptError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// Path of one PE's checkpoint file in `dir`.
pub fn pe_file(dir: &Path, pe: usize) -> PathBuf {
    dir.join(format!("pe{pe}.ckpt"))
}

/// Encode a checkpoint image into a shareable byte buffer (the same wire
/// format the files use). Used for the in-memory buddy copies, which travel
/// as refcounted payloads instead of touching the filesystem.
pub fn encode_image(file: &CkptFile) -> Result<charm_wire::WireBytes, String> {
    charm_wire::Codec::Fast
        .encode_shared(file)
        .map_err(|e| e.to_string())
}

/// Decode a checkpoint image produced by [`encode_image`] or read from a
/// `pe<N>.ckpt` file.
pub fn decode_image(bytes: &[u8]) -> Result<CkptFile, String> {
    charm_wire::Codec::Fast
        .decode(bytes)
        .map_err(|e| e.to_string())
}

/// Write one PE's checkpoint, returning the image size in bytes. The
/// serialized image goes through the thread's pooled scratch buffer, so
/// repeated checkpoints reuse one high-water allocation instead of growing
/// a fresh `Vec` each time.
///
/// The write is atomic and torn-file-proof: bytes land in
/// `pe<N>.ckpt.tmp`, are fsynced, and only then renamed into place. A crash
/// mid-write leaves the `.tmp` behind, which [`read_all`] rejects rather
/// than decoding garbage.
pub fn write_file(dir: &Path, pe: usize, file: &CkptFile) -> std::io::Result<u64> {
    std::fs::create_dir_all(dir)?;
    charm_wire::pool::with_pool(|pool| {
        let mut buf = pool.take();
        let encoded = charm_wire::Codec::Fast
            .encode_into(&mut buf, file)
            .map_err(|e| std::io::Error::other(format!("checkpoint encode: {e}")));
        let result = encoded.and_then(|()| write_atomic(dir, pe, &buf));
        let n = buf.len() as u64;
        pool.put(buf);
        result.map(|()| n)
    })
}

fn write_atomic(dir: &Path, pe: usize, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    let tmp = dir.join(format!("pe{pe}.ckpt.tmp"));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, pe_file(dir, pe))
}

/// Read and validate a complete checkpoint set from `dir`.
///
/// Strict by design: any leftover `.tmp` file fails the whole set (a writer
/// died mid-checkpoint); every present file must decode at the current
/// format version; and the set must contain exactly `pe0..peN` where `N` is
/// the PE count recorded *inside* the files — a missing `pe1` with `pe0` and
/// `pe2` present is a [`CkptError::Gap`], not a silent truncation. All
/// files must agree on `npes` and on the recovery epoch.
pub fn read_all(dir: &Path) -> Result<Vec<CkptFile>, CkptError> {
    let entries = std::fs::read_dir(dir).map_err(|e| io_err(dir, e))?;
    let mut present: Vec<usize> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.ends_with(".ckpt.tmp") {
            return Err(CkptError::TmpLeftover { path: entry.path() });
        }
        if let Some(pe) = name
            .strip_prefix("pe")
            .and_then(|s| s.strip_suffix(".ckpt"))
            .and_then(|s| s.parse::<usize>().ok())
        {
            present.push(pe);
        }
    }
    if present.is_empty() {
        return Err(CkptError::Empty {
            dir: dir.to_path_buf(),
        });
    }
    present.sort_unstable();
    present.dedup();

    let mut files: Vec<(usize, CkptFile)> = Vec::with_capacity(present.len());
    for &pe in &present {
        let path = pe_file(dir, pe);
        let bytes = std::fs::read(&path).map_err(|e| io_err(&path, e))?;
        let file: CkptFile =
            charm_wire::Codec::Fast
                .decode(&bytes)
                .map_err(|e| CkptError::Decode {
                    pe,
                    msg: e.to_string(),
                })?;
        if file.version != CKPT_VERSION {
            return Err(CkptError::Version {
                pe,
                found: file.version,
                expected: CKPT_VERSION,
            });
        }
        files.push((pe, file));
    }

    let expected_npes = files[0].1.npes;
    let expected_epoch = files[0].1.epoch;
    for (pe, file) in &files {
        if file.npes != expected_npes {
            return Err(CkptError::NpesMismatch {
                pe: *pe,
                found: file.npes,
                expected: expected_npes,
            });
        }
        if file.epoch != expected_epoch {
            return Err(CkptError::EpochMismatch {
                pe: *pe,
                found: file.epoch,
                expected: expected_epoch,
            });
        }
    }
    let expected = expected_npes as usize;
    for want in 0..expected {
        if !present.contains(&want) {
            return Err(CkptError::Gap { pe: want, expected });
        }
    }
    if let Some(&stray) = present.iter().find(|&&p| p >= expected) {
        return Err(CkptError::Stray {
            pe: stray,
            expected,
        });
    }
    Ok(files.into_iter().map(|(_, f)| f).collect())
}

/// Automatic disk checkpoints land in per-generation subdirectories of the
/// configured root; this names one.
pub fn epoch_dir(root: &Path, epoch: u64) -> PathBuf {
    root.join(format!("ckpt-{epoch}"))
}

/// Find the newest *complete* automatic checkpoint under `root`: the
/// highest-epoch `ckpt-<epoch>/` subdirectory whose file set passes
/// [`read_all`] validation. Incomplete generations (a crash mid-save) are
/// skipped, so a torn newest checkpoint falls back to the previous one.
pub fn latest_complete_dir(root: &Path) -> Result<(u64, PathBuf), CkptError> {
    let entries = std::fs::read_dir(root).map_err(|e| io_err(root, e))?;
    let mut gens: Vec<(u64, PathBuf)> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| io_err(root, e))?;
        let name = entry.file_name();
        if let Some(epoch) = name
            .to_string_lossy()
            .strip_prefix("ckpt-")
            .and_then(|s| s.parse::<u64>().ok())
        {
            gens.push((epoch, entry.path()));
        }
    }
    gens.sort_by_key(|(e, _)| std::cmp::Reverse(*e));
    for (epoch, path) in gens {
        if read_all(&path).is_ok() {
            return Ok((epoch, path));
        }
    }
    Err(CkptError::Empty {
        dir: root.to_path_buf(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collections::{CollKind, Placement};
    use crate::ids::ChareTypeId;

    fn sample(npes: u64, epoch: u64) -> CkptFile {
        CkptFile {
            version: CKPT_VERSION,
            npes,
            epoch,
            specs: vec![CollSpec {
                id: CollectionId { creator: 0, seq: 1 },
                ctype: ChareTypeId(2),
                kind: CollKind::Dense { dims: vec![4, 4] },
                placement: Placement::Block,
                use_lb: true,
            }],
            chares: vec![CkptChare {
                coll: CollectionId { creator: 0, seq: 1 },
                index: Index::from((1, 2)),
                data: vec![1, 2, 3],
                red_seq: 7,
                buffered: vec![(vec![9], None, None)],
            }],
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ckpt-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn file_roundtrip() {
        let dir = tmpdir("roundtrip");
        write_file(&dir, 0, &sample(2, 5)).unwrap();
        write_file(&dir, 1, &sample(2, 5)).unwrap();
        let files = read_all(&dir).unwrap();
        assert_eq!(files.len(), 2);
        assert_eq!(files[0].chares.len(), 1);
        assert_eq!(files[0].chares[0].red_seq, 7);
        assert_eq!(files[0].epoch, 5);
        assert!(files[0].specs[0].use_lb);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn image_roundtrip_matches_file_format() {
        let dir = tmpdir("image");
        let f = sample(1, 9);
        let image = encode_image(&f).unwrap();
        let back = decode_image(&image).unwrap();
        assert_eq!(back.epoch, 9);
        assert_eq!(back.chares[0].data, vec![1, 2, 3]);
        // The in-memory image is byte-identical to what lands on disk.
        write_file(&dir, 0, &f).unwrap();
        let on_disk = std::fs::read(pe_file(&dir, 0)).unwrap();
        assert_eq!(&on_disk[..], &image[..]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_dir_errors() {
        assert!(matches!(
            read_all(Path::new("/nonexistent-ckpt-dir-xyz")),
            Err(CkptError::Io { .. })
        ));
    }

    #[test]
    fn version_mismatch_errors() {
        let dir = tmpdir("ver");
        let mut f = sample(1, 0);
        f.version = 999;
        write_file(&dir, 0, &f).unwrap();
        assert!(matches!(
            read_all(&dir),
            Err(CkptError::Version {
                pe: 0,
                found: 999,
                ..
            })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_file_is_a_typed_error() {
        let dir = tmpdir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(pe_file(&dir, 0), b"not a checkpoint").unwrap();
        assert!(matches!(
            read_all(&dir),
            Err(CkptError::Decode { pe: 0, .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_file_is_a_typed_error() {
        let dir = tmpdir("trunc");
        write_file(&dir, 0, &sample(1, 0)).unwrap();
        let full = std::fs::read(pe_file(&dir, 0)).unwrap();
        std::fs::write(pe_file(&dir, 0), &full[..full.len() / 2]).unwrap();
        assert!(matches!(
            read_all(&dir),
            Err(CkptError::Decode { pe: 0, .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn leftover_tmp_rejects_the_set() {
        let dir = tmpdir("tmpfile");
        write_file(&dir, 0, &sample(1, 0)).unwrap();
        std::fs::write(dir.join("pe0.ckpt.tmp"), b"torn").unwrap();
        assert!(matches!(read_all(&dir), Err(CkptError::TmpLeftover { .. })));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gap_in_set_is_detected() {
        let dir = tmpdir("gap");
        write_file(&dir, 0, &sample(3, 0)).unwrap();
        write_file(&dir, 2, &sample(3, 0)).unwrap();
        assert!(matches!(
            read_all(&dir),
            Err(CkptError::Gap { pe: 1, expected: 3 })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stray_file_beyond_npes_is_detected() {
        let dir = tmpdir("stray");
        write_file(&dir, 0, &sample(1, 0)).unwrap();
        write_file(&dir, 1, &sample(1, 0)).unwrap();
        assert!(matches!(
            read_all(&dir),
            Err(CkptError::Stray { pe: 1, expected: 1 })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn npes_disagreement_is_detected() {
        let dir = tmpdir("npes");
        write_file(&dir, 0, &sample(2, 0)).unwrap();
        write_file(&dir, 1, &sample(3, 0)).unwrap();
        assert!(matches!(
            read_all(&dir),
            Err(CkptError::NpesMismatch {
                pe: 1,
                found: 3,
                expected: 2
            })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn epoch_disagreement_is_detected() {
        let dir = tmpdir("epoch");
        write_file(&dir, 0, &sample(2, 4)).unwrap();
        write_file(&dir, 1, &sample(2, 5)).unwrap();
        assert!(matches!(
            read_all(&dir),
            Err(CkptError::EpochMismatch {
                pe: 1,
                found: 5,
                expected: 4
            })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn latest_complete_skips_torn_generations() {
        let root = tmpdir("gens");
        // Epoch 1: complete. Epoch 2: torn (gap).
        write_file(&epoch_dir(&root, 1), 0, &sample(2, 1)).unwrap();
        write_file(&epoch_dir(&root, 1), 1, &sample(2, 1)).unwrap();
        write_file(&epoch_dir(&root, 2), 0, &sample(2, 2)).unwrap();
        let (epoch, path) = latest_complete_dir(&root).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(path, epoch_dir(&root, 1));
        std::fs::remove_dir_all(&root).unwrap();
    }
}
