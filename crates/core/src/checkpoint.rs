//! Checkpoint / restart — the paper's fault-tolerance future-work item.
//!
//! `ctx.checkpoint(dir, &done)` makes every PE serialize its local chares
//! (state, reduction sequence numbers, and any when-guard-buffered
//! messages) plus the collection metadata into `dir/pe<N>.ckpt`. A later
//! `Runtime::run_restored(dir, entry)` reads every file, re-installs the
//! collections and redistributes the chares by their placement policy —
//! possibly onto a *different* number of PEs — before running `entry`,
//! which re-kicks the application (e.g. re-broadcasts its Start message
//! with the saved iteration number).
//!
//! Requirements, as in Charm++'s double checkpointing: all chare types are
//! registered migratable, and the checkpoint is taken at an application
//! sync point with no messages in flight and no suspended coroutines
//! (quiescence detection is the easy way to guarantee this). Futures and
//! coroutine stacks are *not* checkpointed.

use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::collections::CollSpec;
use crate::ids::{CollectionId, FutureId, Index};

/// One serialized chare in a checkpoint.
#[derive(Serialize, Deserialize)]
pub struct CkptChare {
    /// Its collection.
    pub coll: CollectionId,
    /// Its index.
    pub index: Index,
    /// Serialized state (the migratable pack).
    pub data: Vec<u8>,
    /// Reduction sequence number.
    pub red_seq: u64,
    /// When-guard-buffered messages, serialized, with reply futures and
    /// per-message guard ids. (Reply futures are only meaningful when
    /// restoring into the same run; cross-run restores should checkpoint
    /// with none pending.)
    pub buffered: Vec<(Vec<u8>, Option<FutureId>, Option<u32>)>,
}

/// One PE's checkpoint file.
#[derive(Serialize, Deserialize)]
pub struct CkptFile {
    /// Format version.
    pub version: u32,
    /// Number of PEs at checkpoint time.
    pub npes: u64,
    /// Collection metadata known to this PE.
    pub specs: Vec<CollSpec>,
    /// This PE's local chares.
    pub chares: Vec<CkptChare>,
}

/// Current checkpoint format version.
pub const CKPT_VERSION: u32 = 1;

/// Path of one PE's checkpoint file in `dir`.
pub fn pe_file(dir: &Path, pe: usize) -> std::path::PathBuf {
    dir.join(format!("pe{pe}.ckpt"))
}

/// Write one PE's checkpoint, returning the image size in bytes. The
/// serialized image goes through the thread's pooled scratch buffer, so
/// repeated checkpoints reuse one high-water allocation instead of growing
/// a fresh `Vec` each time.
pub fn write_file(dir: &Path, pe: usize, file: &CkptFile) -> std::io::Result<u64> {
    std::fs::create_dir_all(dir)?;
    charm_wire::pool::with_pool(|pool| {
        let mut buf = pool.take();
        let encoded = charm_wire::Codec::Fast
            .encode_into(&mut buf, file)
            .map_err(|e| std::io::Error::other(format!("checkpoint encode: {e}")));
        let result = encoded.and_then(|()| std::fs::write(pe_file(dir, pe), &buf));
        let n = buf.len() as u64;
        pool.put(buf);
        result.map(|()| n)
    })
}

/// Read every PE checkpoint file in `dir` (pe0..peN until a gap).
pub fn read_all(dir: &Path) -> std::io::Result<Vec<CkptFile>> {
    let mut out = Vec::new();
    for pe in 0.. {
        let path = pe_file(dir, pe);
        if !path.exists() {
            break;
        }
        let bytes = std::fs::read(&path)?;
        let file: CkptFile = charm_wire::Codec::Fast
            .decode(&bytes)
            .map_err(|e| std::io::Error::other(format!("checkpoint decode: {e}")))?;
        if file.version != CKPT_VERSION {
            return Err(std::io::Error::other(format!(
                "checkpoint version {} unsupported (expected {CKPT_VERSION})",
                file.version
            )));
        }
        out.push(file);
    }
    if out.is_empty() {
        return Err(std::io::Error::other(format!(
            "no checkpoint files found in {}",
            dir.display()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collections::{CollKind, Placement};
    use crate::ids::ChareTypeId;

    fn sample() -> CkptFile {
        CkptFile {
            version: CKPT_VERSION,
            npes: 4,
            specs: vec![CollSpec {
                id: CollectionId { creator: 0, seq: 1 },
                ctype: ChareTypeId(2),
                kind: CollKind::Dense { dims: vec![4, 4] },
                placement: Placement::Block,
                use_lb: true,
            }],
            chares: vec![CkptChare {
                coll: CollectionId { creator: 0, seq: 1 },
                index: Index::from((1, 2)),
                data: vec![1, 2, 3],
                red_seq: 7,
                buffered: vec![(vec![9], None, None)],
            }],
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("ckpt-test-{}", std::process::id()));
        write_file(&dir, 0, &sample()).unwrap();
        write_file(&dir, 1, &sample()).unwrap();
        let files = read_all(&dir).unwrap();
        assert_eq!(files.len(), 2);
        assert_eq!(files[0].chares.len(), 1);
        assert_eq!(files[0].chares[0].red_seq, 7);
        assert!(files[0].specs[0].use_lb);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_dir_errors() {
        assert!(read_all(Path::new("/nonexistent-ckpt-dir-xyz")).is_err());
    }

    #[test]
    fn version_mismatch_errors() {
        let dir = std::env::temp_dir().join(format!("ckpt-ver-{}", std::process::id()));
        let mut f = sample();
        f.version = 999;
        write_file(&dir, 0, &f).unwrap();
        assert!(read_all(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
