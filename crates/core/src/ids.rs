//! Identifier types: PEs, collections, chare indices, futures.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A processing element number (`0..num_pes`).
pub type Pe = usize;

/// Globally unique identifier of a chare collection (or singleton chare).
///
/// Allocated deterministically as `(creator_pe, creator_sequence)`, so any
/// PE can mint new ids without coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CollectionId {
    /// PE that created the collection.
    pub creator: u32,
    /// Creation sequence number on that PE.
    pub seq: u32,
}

impl fmt::Display for CollectionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "coll{}.{}", self.creator, self.seq)
    }
}

/// Maximum number of array dimensions supported (Charm++ supports 6D; the
/// LeanMD pair-compute array uses all six).
pub const MAX_DIMS: usize = 6;

/// Index of a chare within its collection: an N-dimensional integer tuple
/// (N ≤ [`MAX_DIMS`]). Singletons use the empty index; groups use the
/// 1-tuple of their PE number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Index {
    len: u8,
    v: [i32; MAX_DIMS],
}

impl Index {
    /// The empty index used by singleton chares.
    pub const SINGLE: Index = Index {
        len: 0,
        v: [0; MAX_DIMS],
    };

    /// Construct from a slice of coordinates (up to [`MAX_DIMS`]).
    ///
    /// # Panics
    /// Panics if `coords.len() > MAX_DIMS`.
    pub fn new(coords: &[i32]) -> Index {
        assert!(
            coords.len() <= MAX_DIMS,
            "index dimensionality {} exceeds MAX_DIMS={}",
            coords.len(),
            MAX_DIMS
        );
        let mut v = [0; MAX_DIMS];
        v[..coords.len()].copy_from_slice(coords);
        Index {
            len: coords.len() as u8,
            v,
        }
    }

    /// The 1-D index used by group members on PE `pe`.
    pub fn pe(pe: Pe) -> Index {
        Index::new(&[pe as i32])
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.len as usize
    }

    /// The coordinates as a slice.
    pub fn coords(&self) -> &[i32] {
        &self.v[..self.len as usize]
    }

    /// First coordinate; convenient for 1-D arrays and groups.
    ///
    /// # Panics
    /// Panics on the empty (singleton) index.
    pub fn first(&self) -> i32 {
        assert!(self.len > 0, "singleton index has no coordinates");
        self.v[0]
    }

    /// A stable hash of the coordinates, used to derive an element's home PE.
    pub fn stable_hash(&self) -> u64 {
        // FNV-1a over the used coordinates; must be identical on every PE,
        // so no std RandomState here.
        let mut h: u64 = 0xcbf29ce484222325;
        h = (h ^ self.len as u64).wrapping_mul(0x100000001b3);
        for &c in self.coords() {
            h = (h ^ (c as u32 as u64)).wrapping_mul(0x100000001b3);
        }
        h
    }
}

fn fmt_index(ix: &Index, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "(")?;
    for (i, c) in ix.coords().iter().enumerate() {
        if i > 0 {
            write!(f, ",")?;
        }
        write!(f, "{c}")?;
    }
    write!(f, ")")
}

impl fmt::Debug for Index {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_index(self, f)
    }
}

impl fmt::Display for Index {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_index(self, f)
    }
}

impl From<i32> for Index {
    fn from(v: i32) -> Index {
        Index::new(&[v])
    }
}
impl From<usize> for Index {
    fn from(v: usize) -> Index {
        Index::new(&[v as i32])
    }
}
impl From<(i32, i32)> for Index {
    fn from(v: (i32, i32)) -> Index {
        Index::new(&[v.0, v.1])
    }
}
impl From<(i32, i32, i32)> for Index {
    fn from(v: (i32, i32, i32)) -> Index {
        Index::new(&[v.0, v.1, v.2])
    }
}
impl From<(i32, i32, i32, i32, i32, i32)> for Index {
    fn from(v: (i32, i32, i32, i32, i32, i32)) -> Index {
        Index::new(&[v.0, v.1, v.2, v.3, v.4, v.5])
    }
}
impl From<[i32; 1]> for Index {
    fn from(v: [i32; 1]) -> Index {
        Index::new(&v)
    }
}
impl From<[i32; 2]> for Index {
    fn from(v: [i32; 2]) -> Index {
        Index::new(&v)
    }
}
impl From<[i32; 3]> for Index {
    fn from(v: [i32; 3]) -> Index {
        Index::new(&v)
    }
}
impl From<[i32; 6]> for Index {
    fn from(v: [i32; 6]) -> Index {
        Index::new(&v)
    }
}

/// Fully qualified identity of one chare: its collection plus its index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChareId {
    /// The collection this chare belongs to.
    pub coll: CollectionId,
    /// The chare's index within the collection.
    pub index: Index,
}

impl fmt::Display for ChareId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.coll, self.index)
    }
}

/// Identifier of a distributed future; minted on the waiting PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FutureId {
    /// PE where the future was created (and where its value is delivered).
    pub pe: u32,
    /// Per-PE sequence number.
    pub seq: u64,
}

/// Per-PE identifier of a running coroutine (threaded entry method).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoroId(pub u64);

/// Identifier of the chare type in the registry (dense, assigned by
/// registration order, identical on every PE).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ChareTypeId(pub u32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_construction_and_accessors() {
        let i = Index::new(&[3, -4, 5]);
        assert_eq!(i.dims(), 3);
        assert_eq!(i.coords(), &[3, -4, 5]);
        assert_eq!(i.first(), 3);
        assert_eq!(format!("{i}"), "(3,-4,5)");
    }

    #[test]
    fn singleton_index() {
        assert_eq!(Index::SINGLE.dims(), 0);
        assert_eq!(format!("{}", Index::SINGLE), "()");
    }

    #[test]
    fn conversions() {
        assert_eq!(Index::from(7i32), Index::new(&[7]));
        assert_eq!(Index::from(7usize), Index::new(&[7]));
        assert_eq!(Index::from((1, 2)), Index::new(&[1, 2]));
        assert_eq!(Index::from((1, 2, 3)), Index::new(&[1, 2, 3]));
        assert_eq!(Index::from([1, 2, 3]), Index::new(&[1, 2, 3]));
    }

    #[test]
    fn equality_respects_dims() {
        // (1) and (1,0) differ even though the padded storage is identical.
        assert_ne!(Index::new(&[1]), Index::new(&[1, 0]));
        assert_ne!(Index::SINGLE, Index::new(&[0]));
    }

    #[test]
    fn stable_hash_distinguishes_dims_and_is_deterministic() {
        assert_ne!(
            Index::new(&[1]).stable_hash(),
            Index::new(&[1, 0]).stable_hash()
        );
        assert_eq!(
            Index::new(&[5, 6]).stable_hash(),
            Index::new(&[5, 6]).stable_hash()
        );
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_DIMS")]
    fn too_many_dims_panics() {
        let _ = Index::new(&[0; 7]);
    }
}
