//! # charm-core — a CharmPy-style parallel programming model in Rust
//!
//! A from-scratch implementation of the programming model of
//! *CharmPy: A Python Parallel Programming Model* (Galvez, Senthil, Kale —
//! IEEE CLUSTER 2018) together with the Charm++-equivalent runtime it rests
//! on: distributed migratable objects ("chares") with asynchronous remote
//! method invocation, message-driven per-PE schedulers, collections
//! (groups, dense and sparse N-D arrays), spanning-tree reductions,
//! distributed futures, `when`-guarded delivery, threaded entry methods,
//! chare migration with home-based location management, measured-load
//! AtSync load balancing and quiescence detection.
//!
//! ## Model cheat-sheet (CharmPy → charm-rs)
//!
//! | CharmPy | charm-rs |
//! |---|---|
//! | `class C(Chare)` | `impl Chare for C { type Msg; type Init; … }` |
//! | `charm.start(main)` | `Runtime::new(n).run(main)` |
//! | `Chare(C, onPE=p)` / `Group(C)` / `Array(C, dims)` | `Ctx::create_chare` / `Ctx::create_group` / `Ctx::create_array` |
//! | `proxy.method(args)` | `Proxy::send` (broadcasts from collection proxies) |
//! | `proxy.method(args, ret=True)` | `Proxy::call` → `Future` |
//! | `@when("cond")` | `Chare::guard` |
//! | `@threaded` + `self.wait(...)` | `Ctx::go` + `Co::wait` |
//! | `future.get()` | `Co::get` |
//! | `self.contribute(data, reducer, target)` | `Ctx::contribute` |
//! | `self.migrate(pe)` | `Ctx::migrate_me` |
//! | `self.AtSync()` | `Ctx::at_sync` |
//!
//! ## Backends
//!
//! The same application runs on three interchangeable backends
//! (`runtime::Backend`): real OS threads (one per PE), a deterministic
//! virtual-time simulation driven by a `charm_sim::MachineModel` — the
//! substitute for the paper's Cray testbeds that makes the scaling figures
//! reproducible on any host — and real OS *processes* connected over TCP
//! via `charm-net`, with heartbeat failure detection and process-kill
//! recovery (DESIGN.md §13).

#![forbid(unsafe_code)]

#[cfg(feature = "analyze")]
pub mod analyze;
pub mod chare;
#[cfg(feature = "analyze")]
pub mod check;
pub mod checkpoint;
pub mod collections;
pub mod coro;
pub mod ctx;
pub mod future;
pub mod ids;
pub mod lb;
pub mod msg;
pub(crate) mod net;
pub(crate) mod netmsg;
pub mod pe;
pub mod proxy;
pub mod quiescence;
pub mod reduction;
pub mod runtime;
pub mod tree;

pub use chare::{Chare, MsgGuard, Registry};
#[cfg(feature = "analyze")]
pub use check::{CheckCfg, CheckCounterexample, CheckOracle, CheckReport, ReplayOutcome};
// The schedule-artifact type round-trips between `check` and user code.
#[cfg(feature = "analyze")]
pub use charm_check::Schedule;
pub use checkpoint::{CkptError, Store};
pub use collections::Placement;
pub use coro::Co;
pub use ctx::{ArrayOpts, Ctx};
pub use future::Future;
pub use ids::{ChareId, CollectionId, FutureId, Index, Pe};
pub use lb::{
    greedy_refine_place, refine_limit, LbChareStat, LbMode, LbStats, LbStrategy, RefineOutcome,
    REFINE_THRESHOLD_PERMILLE,
};
pub use msg::Message;
pub use proxy::{Proxy, Section};
pub use reduction::{RedData, RedTarget, Reducer};
pub use runtime::{
    AggCfg, Backend, DispatchMode, Main, RunError, RunReport, Runtime, TelemetryCfg, TelemetrySink,
};
pub use tree::TreeShape;

// Net backend configuration and process-role helpers (DESIGN.md §13) —
// re-exported so applications select `Backend::Net` without depending on
// `charm-net` directly. `is_net_worker` lets a binary guard root-only work
// that runs *before* `Runtime::run` (after it, worker processes have
// already exited inside the runtime).
pub use charm_net::{is_net_worker, BackoffCfg, NetCfg, Spawn};

// Tracing & metrics (DESIGN.md §7) — the subsystem lives in `charm-trace`;
// re-exported so applications configure and consume traces through one crate.
pub use charm_trace::{MetricFrame, PePerf, PeTrace, TraceConfig, TraceLevel, TraceReport};

/// Everything an application usually needs.
pub mod prelude {
    pub use crate::chare::Chare;
    pub use crate::chare::MsgGuard;
    pub use crate::checkpoint::{CkptError, Store};
    pub use crate::collections::Placement;
    pub use crate::coro::Co;
    pub use crate::ctx::{ArrayOpts, Ctx};
    pub use crate::future::Future;
    pub use crate::ids::{ChareId, Index, Pe};
    pub use crate::lb::{LbChareStat, LbMode, LbStats, LbStrategy};
    pub use crate::msg::Message;
    pub use crate::proxy::{Proxy, Section};
    pub use crate::reduction::{RedData, RedTarget, Reducer};
    pub use crate::runtime::{
        AggCfg, Backend, DispatchMode, Main, RunError, RunReport, Runtime, TelemetryCfg,
    };
    pub use crate::tree::TreeShape;
    pub use charm_trace::{MetricFrame, TraceConfig, TraceLevel};
}
