//! Quiescence detection.
//!
//! Charm++-style double-probe detection: PE 0 broadcasts a probe down the
//! spanning tree; every PE answers with its (sent, processed) application
//! message counters, combined up the tree. The system is quiescent when two
//! consecutive probe rounds return identical counter sums with
//! `sent == processed` — which rules out both in-flight messages and
//! activity between the probes.
//!
//! ## Interaction with message aggregation
//!
//! With TRAM-style aggregation on (`Runtime::aggregation`, DESIGN.md §9), a
//! message can be parked in a sender-side batch buffer: it was counted as
//! *sent* at emit time but will never be *processed* until the buffer
//! flushes, so `sent == processed` could never hold over it. Every PE
//! therefore flushes all of its aggregation buffers when a probe reaches it
//! (`PeState::qd_probe`), putting the parked traffic in flight; detection
//! then converges through the ordinary two-identical-rounds rule, merely
//! taking extra rounds. No counter arithmetic changes — batch envelopes
//! themselves are never QD-counted, only their constituents are.

use crate::ids::FutureId;

/// Per-PE state for combining one probe round up the tree.
#[derive(Default)]
pub struct QdPeState {
    /// Probe round being combined.
    pub round: u64,
    /// Child replies still outstanding.
    pub pending_children: usize,
    /// Accumulated sent counter (self + finished children).
    pub sent: u64,
    /// Accumulated processed counter.
    pub done: u64,
    /// PEs covered by the accumulation.
    pub pes: u64,
    /// Whether a probe is being combined right now.
    pub active: bool,
}

/// PE 0 coordinator state.
#[derive(Default)]
pub struct QdCentral {
    /// Futures to complete when quiescence is reached.
    pub waiters: Vec<FutureId>,
    /// Current probe round number.
    pub round: u64,
    /// Counters from the previous completed round.
    pub last: Option<(u64, u64)>,
    /// Whether detection is in progress.
    pub active: bool,
}

impl QdCentral {
    /// Feed a completed round; returns `true` if quiescence is established.
    pub fn round_complete(&mut self, sent: u64, done: u64) -> bool {
        let quiescent = sent == done && self.last == Some((sent, done));
        self.last = Some((sent, done));
        quiescent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn needs_two_identical_rounds() {
        let mut c = QdCentral::default();
        assert!(!c.round_complete(10, 10)); // first sighting: not enough
        assert!(c.round_complete(10, 10)); // stable: quiescent
    }

    #[test]
    fn inflight_messages_block_detection() {
        let mut c = QdCentral::default();
        assert!(!c.round_complete(10, 8));
        assert!(!c.round_complete(10, 8)); // stable but sent != done
        assert!(!c.round_complete(10, 10)); // changed since last round
        assert!(c.round_complete(10, 10));
    }

    #[test]
    fn activity_between_rounds_resets() {
        let mut c = QdCentral::default();
        assert!(!c.round_complete(5, 5));
        assert!(!c.round_complete(7, 7)); // counters moved: keep probing
        assert!(c.round_complete(7, 7));
    }
}
