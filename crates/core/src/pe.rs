//! The per-PE scheduler: message-driven execution, guarded delivery,
//! coroutine orchestration, reductions, location management, migration and
//! the load-balancing / quiescence protocols.
//!
//! `PeState` is transport-agnostic: handling an envelope never blocks on
//! the network — outgoing traffic is queued in `outbox` and shipped by the
//! driver (threaded channels or the virtual-time event loop in
//! `runtime.rs`).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU32, AtomicU64};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

use charm_sim::MachineModel;
use charm_trace::{EntryKind, EventKind, PeTracer, TraceConfig, WorkClass};
use charm_wire::{Codec, EncodePool, WireBytes};

use crate::chare::{MsgGuards, Registry};
use crate::checkpoint::{self, CkptChare, CkptFile, Store};
use crate::collections::{CollKind, CollSpec, CollState, CollTable, Placements};
use crate::coro::{CoroHandle, CoroInput, CoroSide, CoroYield, WaitKind};
use crate::ctx::{Ctx, CtxSeed, Op};
use crate::future::{FutState, FutTable};
use crate::ids::{ChareId, CollectionId, CoroId, FutureId, Index, Pe};
use crate::lb::{
    greedy_refine_place, refine_limit, spill_cap, truncate_acceptors, truncate_spill, LbCentral,
    LbChareStat, LbMode, LbPeState, LbStats, LbStrategy, LbTreePe, LbTreeReport,
    REFINE_THRESHOLD_PERMILLE,
};
use crate::msg::{BoxMsg, EnvKind, Envelope, MigrateMsg, OutPayload, Payload};
use crate::quiescence::{QdCentral, QdPeState};
use crate::reduction::{combine, CustomReducers, RedData, RedTable, RedTarget, Reducer};
use crate::tree::TreeShape;

/// Scheduler configuration shared by both drivers.
pub(crate) struct SchedCfg {
    pub codec: Codec,
    /// Dynamic (CharmPy-like) dispatch: pickle codec + interpreter overhead.
    pub dynamic: bool,
    /// §II-D same-PE by-reference optimization (ablation toggle).
    pub same_pe_byref: bool,
    pub tree: TreeShape,
    pub lb: Option<Arc<dyn LbStrategy>>,
    /// How AtSync load balancing is coordinated (`Central` reproduces the
    /// pre-hierarchical protocol bit for bit).
    pub lb_mode: LbMode,
    /// Charge measured handler time to the virtual clock (sim backend).
    pub meter: bool,
    /// Scale factor from host compute speed to target machine speed.
    pub compute_scale: f64,
    /// Machine model (sim backend only) for the dynamic-dispatch overhead.
    pub sim_model: Option<MachineModel>,
    pub is_sim: bool,
    /// Restore a checkpoint at bootstrap (PE 0).
    pub restore: Option<RestoreFrom>,
    /// Recovery epoch (machine incarnation): 0 on first launch, bumped by
    /// the supervisor on every restart. Stamped into each emitted envelope;
    /// `PeState::handle` discards mismatches as stale pre-failure traffic.
    pub epoch: u64,
    /// First checkpoint-generation number this incarnation may mint —
    /// strictly above every generation already committed, so fresh images
    /// never alias the one just restored from.
    pub ckpt_seq_start: u64,
    /// Automatic checkpointing `(every, store)`: PE 0 snapshots the machine
    /// at every `every`-th completed quiescence round.
    pub auto_ckpt: Option<(u64, Store)>,
    /// Registered per-message when-conditions.
    pub msg_guards: Arc<MsgGuards>,
    /// Tracing level + ring capacity for every PE's tracer.
    pub trace: TraceConfig,
    /// TRAM-style per-destination aggregation thresholds; `None` = off.
    pub agg: Option<crate::runtime::AggCfg>,
    /// In-band telemetry: reduce a cluster-wide [`charm_trace::MetricFrame`]
    /// to PE 0 at every `every`-th completed quiescence round; `None` = off.
    pub telemetry: Option<crate::runtime::TelemetryCfg>,
    /// Per-message fast paths (on by default): small-payload inlining,
    /// batched-record inline re-publish, dispatch-table caching and the
    /// threaded backend's burst-drain receive ring. Off reproduces the
    /// pre-fast-path runtime bit for bit (the ablation baseline).
    pub fast_paths: bool,
    /// Sink for race-detector findings (tests); `None` panics on violation.
    #[cfg(feature = "analyze")]
    pub analyze_probe: Option<crate::analyze::FaultProbe>,
}

/// Where PE 0's bootstrap restores the machine from.
#[derive(Clone)]
pub(crate) enum RestoreFrom {
    /// A directory of `pe<N>.ckpt` files (the `run_restored` path).
    Dir(std::path::PathBuf),
    /// Decoded images assembled by the restart supervisor from the PEs' own
    /// and buddy-held in-memory copies.
    Images(Vec<CkptFile>),
}

/// Launcher type for coroutines (the boxed closure spawned on a thread).
pub(crate) type CoroLauncher = Box<dyn FnOnce(CoroSide) + Send + 'static>;

/// An in-progress machine-wide checkpoint tracked on the initiating PE.
enum CkptPending {
    /// `ctx.checkpoint(dir)`: completes the caller's future with the total
    /// chare count once every PE has acked.
    Manual {
        fid: FutureId,
        left: usize,
        total: u64,
    },
    /// Automatic checkpoint taken at quiescence (PE 0): the quiescence
    /// waiters are held until every PE has committed, so the application
    /// only resumes against fully saved state. `telemetry` marks that a
    /// telemetry sweep fell due at the same quiescence round and must run
    /// (machine still quiescent, waiters still parked) once the last PE
    /// acks.
    Auto {
        left: usize,
        waiters: Vec<FutureId>,
        telemetry: bool,
    },
}

/// In-memory checkpoint images one PE holds under `Store::Memory` buddy
/// checkpointing: its own images plus the copies it keeps for its buddy
/// (PE `self - 1 mod npes`). The last two generations are retained, so a
/// failure mid-generation `e` still finds generation `e - 1` complete.
#[derive(Default)]
pub(crate) struct CkptStore {
    own: Vec<(u64, WireBytes)>,
    held: Vec<(Pe, u64, WireBytes)>,
}

impl CkptStore {
    /// Generations retained per slot (current + previous).
    const KEEP: usize = 2;

    fn store_own(&mut self, epoch: u64, image: WireBytes) {
        self.own.retain(|(e, _)| *e != epoch);
        self.own.push((epoch, image));
        self.own.sort_by_key(|(e, _)| *e);
        while self.own.len() > Self::KEEP {
            self.own.remove(0);
        }
    }

    fn store_held(&mut self, owner: Pe, epoch: u64, image: WireBytes) {
        self.held.retain(|(o, e, _)| *o != owner || *e != epoch);
        self.held.push((owner, epoch, image));
        self.held.sort_by_key(|(_, e, _)| *e);
        while self.held.iter().filter(|(o, _, _)| *o == owner).count() > Self::KEEP {
            if let Some(i) = self.held.iter().position(|(o, _, _)| *o == owner) {
                self.held.remove(i);
            }
        }
    }

    /// This PE's own image for generation `epoch`.
    pub(crate) fn own_at(&self, epoch: u64) -> Option<&WireBytes> {
        self.own.iter().find(|(e, _)| *e == epoch).map(|(_, b)| b)
    }

    /// The copy held on behalf of `owner` for generation `epoch`.
    pub(crate) fn held_at(&self, owner: Pe, epoch: u64) -> Option<&WireBytes> {
        self.held
            .iter()
            .find(|(o, e, _)| *o == owner && *e == epoch)
            .map(|(_, _, b)| b)
    }

    /// Every generation this store has any image for, ascending.
    pub(crate) fn epochs(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .own
            .iter()
            .map(|(e, _)| *e)
            .chain(self.held.iter().map(|(_, e, _)| *e))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// A when-guard-deferred message.
struct Buffered {
    msg: BoxMsg,
    reply: Option<FutureId>,
    /// Per-message when-condition id, if the sender attached one.
    guard: Option<u32>,
}

/// One local chare.
struct Slot {
    boxed: Option<Box<dyn crate::chare::ChareBox>>,
    /// When-guard-deferred messages in arrival order. A deque so the drain
    /// in `after_state_change` can pull the ready message without shifting
    /// the whole tail: the common case (front is ready) pops in O(1),
    /// where a `Vec::remove` drain degraded to O(n²) over a long buffer.
    buffered: VecDeque<Buffered>,
    load_ns: u64,
    red_seq: u64,
    at_sync: bool,
    coros: Vec<CoroId>,
    /// PEs that still hold a forwarding stub chain for this chare from its
    /// previous migrations. Travels with the chare; when it reaches
    /// [`MAX_FWD_HOPS`] the arrival PE broadcasts its location to every
    /// stub holder and the chain collapses, bounding forward latency.
    fwd_trail: Vec<Pe>,
}

impl Slot {
    fn new(boxed: Box<dyn crate::chare::ChareBox>) -> Slot {
        Slot {
            boxed: Some(boxed),
            buffered: VecDeque::new(),
            load_ns: 0,
            red_seq: 0,
            at_sync: false,
            coros: Vec::new(),
            fwd_trail: Vec::new(),
        }
    }
}

enum Route {
    Local,
    /// `.1` is true when the destination came from a forwarding stub in
    /// `locations` (the chare lived here and migrated away) rather than
    /// a direct location record or initial placement.
    Remote(Pe, bool),
    /// This PE is the element's home but does not (yet) know a location.
    BufferHere,
    UnknownColl,
}

/// What to run on a chare.
enum Invoke {
    Entry(BoxMsg, Option<FutureId>, Option<u32>),
    Reduced(u32, RedData),
    ResumeFromSync,
}

/// One destination's pending aggregation buffer (TRAM-style coalescing,
/// `SchedCfg::agg`): small outgoing entry messages accumulate here as
/// length-prefixed records until a flush turns the frame into one
/// [`EnvKind::Batch`] envelope. The frame `Vec` is cleared, never dropped,
/// on flush, so its capacity is reused like an encode-pool buffer.
#[derive(Default)]
struct AggBuf {
    /// Record-framed constituents (see `msg::push_batch_record`).
    frame: Vec<u8>,
    /// Number of records in `frame`.
    count: u32,
}

/// Per-PE devirtualized entry-dispatch cache (`DispatchMode::Native`).
///
/// Steady-state delivery used to pay a `colls` hash lookup plus a registry
/// vtable indirection per decoded message just to rediscover a function
/// pointer that never changes for a given collection. This caches the
/// resolved `CollectionId → decode fn` pairs; with the handful of live
/// collections a PE hosts, the linear probe over a dense vec is one or two
/// compares on the hot path. Conservatively cleared whenever a collection
/// spec lands (creation or post-recovery restore).
struct DispatchCache {
    slots: Vec<(CollectionId, fn(Codec, &[u8]) -> charm_wire::Result<BoxMsg>)>,
    hits: u64,
    misses: u64,
    enabled: bool,
}

impl DispatchCache {
    fn new(enabled: bool) -> DispatchCache {
        DispatchCache {
            slots: Vec::new(),
            hits: 0,
            misses: 0,
            enabled,
        }
    }

    #[inline]
    fn lookup(
        &mut self,
        coll: CollectionId,
    ) -> Option<fn(Codec, &[u8]) -> charm_wire::Result<BoxMsg>> {
        for &(c, f) in &self.slots {
            if c == coll {
                self.hits += 1;
                return Some(f);
            }
        }
        self.misses += 1;
        None
    }

    fn insert(&mut self, coll: CollectionId, f: fn(Codec, &[u8]) -> charm_wire::Result<BoxMsg>) {
        self.slots.push((coll, f));
    }

    /// Drop every cached resolution (a collection spec just changed hands).
    fn clear(&mut self) {
        self.slots.clear();
    }
}

pub(crate) struct PeState {
    pub pe: Pe,
    pub npes: usize,
    pub cfg: Arc<SchedCfg>,
    seed: CtxSeed,
    registry: Arc<Registry>,
    placements: Arc<Placements>,
    reducers: Arc<CustomReducers>,

    chares: HashMap<ChareId, Slot>,
    colls: CollTable,
    pending_coll: HashMap<CollectionId, Vec<Envelope>>,
    pending_chare: HashMap<ChareId, Vec<Envelope>>,
    locations: HashMap<ChareId, Pe>,
    futures: FutTable,
    coros: HashMap<u64, CoroHandle>,
    next_coro: u64,
    reds: RedTable,

    /// Scratch buffers for message encodes on this PE's send path.
    encode_pool: EncodePool,
    /// Devirtualized `CollectionId → decode fn` cache for native dispatch.
    dispatch_cache: DispatchCache,
    /// Per-destination aggregation buffers (`cfg.agg` on; empty when off).
    agg_bufs: Vec<AggBuf>,
    /// Reusable header-encode scratch for batch records.
    agg_scratch: Vec<u8>,
    /// Cached wall timestamp for the threads send path: refreshed once per
    /// handled envelope instead of read (`Instant::now`) once per emitted
    /// envelope — measurably hot under fine-grained fan-out.
    now_cache_ns: u64,

    lb: LbPeState,
    lb_central: LbCentral,
    /// Hierarchical-LB ([`LbMode::Tree`]) per-epoch state; also tracks the
    /// peak LB stat count this PE materialized (both modes).
    lb_tree: LbTreePe,
    /// Entry messages this PE forwarded on behalf of a departed chare (a
    /// forwarding-stub hit in `locations`); reported as `PePerf::fwd_hops`.
    fwd_hops: u64,
    /// In-progress checkpoint initiated on this PE.
    ckpt: Option<CkptPending>,
    /// In-memory images (own + buddy-held) under `Store::Memory`; salvaged
    /// by the restart supervisor after a PE failure.
    pub ckpt_store: CkptStore,
    /// Next checkpoint generation this PE mints when it initiates one.
    next_ckpt_epoch: u64,
    /// PE 0: completed quiescence rounds (drives the auto-ckpt cadence).
    qd_completions: u64,
    qd_pe: QdPeState,
    qd_central: QdCentral,

    /// PE 0: next telemetry sweep sequence number.
    tel_seq: u64,
    /// PE 0: a sweep is in flight (waiters parked in `tel_waiters`).
    tel_active: bool,
    /// Child subtree frames still owed for the sweep crossing this node.
    tel_pending: usize,
    /// This node's partially merged frame for the sweep in progress.
    tel_acc: Option<Box<charm_trace::MetricFrame>>,
    /// Tree root of the sweep in progress (parent routing).
    tel_root: Pe,
    /// PE 0: quiescence waiters held until the merged frame lands.
    tel_waiters: Vec<FutureId>,
    /// PE 0: the retained telemetry time series (`RunReport::telemetry`).
    tel_series: Vec<charm_trace::MetricFrame>,
    /// Hot-chare sketch (charged entry nanoseconds), sampled into frames.
    tel_sketch: charm_trace::SpaceSaving<ChareId>,

    /// Outgoing envelopes, drained by the driver after each event.
    pub outbox: Vec<(Pe, Envelope)>,
    /// Trace recorder: always-on counters (quiescence detection +
    /// `RunReport`) plus, by level, aggregates and the event ring.
    pub tracer: PeTracer,
    /// Compute time accrued during the current event (sim backend);
    /// drained by the driver into the PE's virtual clock.
    pub event_work_ns: u64,
    /// Virtual clock (sim backend); maintained by the driver.
    pub clock_ns: u64,
    /// Real-time origin (threaded backend).
    start: Instant,
    /// Set when this PE has processed `Exit`.
    pub exited: bool,

    /// PE 0 only: the main entry coroutine body, consumed at `Bootstrap`.
    pub entry: Option<CoroLauncher>,
    /// PE 0, restore path: the entry launch waits on this internal future
    /// (completed by quiescence detection once every restored chare landed).
    entry_gate: Option<FutureId>,
    main_id: ChareId,

    /// Happens-before detector (vector clocks + send/deliver accounting).
    #[cfg(feature = "analyze")]
    pub det: crate::analyze::Detector,
}

/// Longest forwarding-pointer chain a repeatedly-migrating chare may leave
/// behind. Each migration leaves a stub on the departing PE (so in-flight
/// senders still reach the chare in one extra hop); once the trail carried
/// in the migration message reaches this bound, the arrival PE collapses
/// the whole chain with `LocationUpdate`s — location lookups stay O(1)
/// with at most `MAX_FWD_HOPS` extra hops, independent of migration count.
pub const MAX_FWD_HOPS: usize = 4;

/// Identity of the built-in main chare (hosted on PE 0).
pub(crate) fn main_chare_id() -> ChareId {
    ChareId {
        coll: CollectionId {
            creator: u32::MAX,
            seq: 0,
        },
        index: Index::SINGLE,
    }
}

impl PeState {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        pe: Pe,
        npes: usize,
        cfg: Arc<SchedCfg>,
        registry: Arc<Registry>,
        placements: Arc<Placements>,
        reducers: Arc<CustomReducers>,
        start: Instant,
        entry: Option<CoroLauncher>,
    ) -> PeState {
        let seed = CtxSeed {
            pe,
            npes,
            codec: cfg.codec,
            epoch: cfg.epoch,
            fut_seq: Arc::new(AtomicU64::new(0)),
            coll_seq: Arc::new(AtomicU32::new(0)),
            registry: Arc::clone(&registry),
        };
        #[cfg(feature = "analyze")]
        let det = crate::analyze::Detector::new(pe, npes, cfg.epoch, cfg.analyze_probe.clone());
        let cfg_trace = cfg.trace;
        let cfg_seq_start = cfg.ckpt_seq_start;
        let agg_on = cfg.agg.is_some();
        let mut encode_pool = EncodePool::new();
        encode_pool.set_inline(cfg.fast_paths);
        // Devirtualization only pays off under native dispatch; dynamic
        // (CharmPy-like) mode keeps the measured per-message lookup cost.
        let dispatch_cache = DispatchCache::new(cfg.fast_paths && !cfg.dynamic);
        PeState {
            pe,
            npes,
            cfg,
            seed,
            registry,
            placements,
            reducers,
            chares: HashMap::new(),
            colls: HashMap::new(),
            pending_coll: HashMap::new(),
            pending_chare: HashMap::new(),
            locations: HashMap::new(),
            futures: HashMap::new(),
            coros: HashMap::new(),
            next_coro: 0,
            reds: HashMap::new(),
            encode_pool,
            dispatch_cache,
            agg_bufs: if agg_on {
                (0..npes).map(|_| AggBuf::default()).collect()
            } else {
                Vec::new()
            },
            agg_scratch: Vec::new(),
            now_cache_ns: 0,
            lb: LbPeState::default(),
            lb_central: LbCentral::default(),
            lb_tree: LbTreePe::default(),
            fwd_hops: 0,
            ckpt: None,
            ckpt_store: CkptStore::default(),
            next_ckpt_epoch: cfg_seq_start,
            qd_completions: 0,
            qd_pe: QdPeState::default(),
            qd_central: QdCentral::default(),
            tel_seq: 0,
            tel_active: false,
            tel_pending: 0,
            tel_acc: None,
            tel_root: 0,
            tel_waiters: Vec::new(),
            tel_series: Vec::new(),
            tel_sketch: charm_trace::SpaceSaving::new(charm_trace::DEFAULT_TOP_K),
            outbox: Vec::new(),
            tracer: PeTracer::new(&cfg_trace),
            event_work_ns: 0,
            clock_ns: 0,
            start,
            exited: false,
            entry,
            entry_gate: None,
            main_id: main_chare_id(),
            #[cfg(feature = "analyze")]
            det,
        }
    }

    /// Send/deliver id accounting for the end-of-run balance check.
    #[cfg(feature = "analyze")]
    pub fn det_summary(&self) -> (Vec<u64>, Vec<u64>) {
        self.det.summary()
    }

    /// Current time in nanoseconds (virtual under sim, real elapsed under
    /// threads).
    pub fn now_ns(&self) -> u64 {
        if self.cfg.is_sim {
            self.clock_ns + self.event_work_ns
        } else {
            self.start.elapsed().as_nanos() as u64
        }
    }

    fn new_ctx(&self, this: Option<ChareId>) -> Ctx {
        Ctx::new(self.seed.clone(), self.now_ns(), this)
    }

    /// Timestamp for send-path trace events. Under threads this reads the
    /// cache refreshed once per handled envelope (`handle`) rather than
    /// calling `Instant::now` per emitted envelope; the trace ring's
    /// monotone clamp absorbs the sub-event coarseness.
    fn send_ts_ns(&self) -> u64 {
        if self.cfg.is_sim {
            self.clock_ns + self.event_work_ns
        } else {
            self.now_cache_ns
        }
    }

    /// Queue an envelope for `dst` (counting for QD and traffic stats).
    ///
    /// All *logical* accounting happens here, per message — QD counts,
    /// per-PE send counters, detector trace minting — regardless of whether
    /// the envelope then travels alone or coalesced inside a batch frame,
    /// so aggregation never perturbs `RunReport` message/byte totals or
    /// quiescence arithmetic.
    fn emit(&mut self, dst: Pe, kind: EnvKind) {
        if kind.counts_for_qd() {
            self.tracer.counters.sent += 1;
        }
        let remote = dst != self.pe;
        if remote || self.tracer.enabled() {
            let sz = kind.size_hint() as u64;
            if remote {
                self.tracer.counters.bytes += sz;
            }
            self.tracer.msg_send(sz, remote);
            if self.tracer.full() {
                let now = self.send_ts_ns();
                self.tracer.push(
                    now,
                    charm_trace::EventKind::MsgSend {
                        bytes: sz.min(u32::MAX as u64) as u32,
                        remote,
                    },
                );
            }
        }
        let mut env = Envelope::new(self.pe, kind);
        env.epoch = self.cfg.epoch;
        // Emission stamp for the receiver-side send→deliver latency sample;
        // 0 (tracing off) records nothing.
        if self.tracer.enabled() {
            env.sent_ns = self.send_ts_ns();
        }
        #[cfg(feature = "analyze")]
        {
            env.trace = self.det.on_send();
        }
        self.push_out(dst, env);
    }

    /// Route an outgoing envelope to the outbox — or, with aggregation on,
    /// coalesce it into the destination's batch buffer. Only small remote
    /// wire-encoded `Entry` messages batch; anything else bound for a
    /// destination with a pending buffer flushes that buffer first, so the
    /// outbox order equals the emission order on every (src → dst) channel
    /// and per-channel FIFO survives mixing batched and unbatched traffic.
    fn push_out(&mut self, dst: Pe, env: Envelope) {
        let agg = match self.cfg.agg {
            Some(a) if dst != self.pe && !self.agg_bufs.is_empty() => a,
            _ => {
                self.outbox.push((dst, env));
                return;
            }
        };
        let batchable = matches!(
            &env.kind,
            EnvKind::Entry { payload: Payload::Wire(b), .. } if b.len() < agg.max_bytes
        );
        if !batchable {
            self.flush_agg(dst);
            self.outbox.push((dst, env));
            return;
        }
        #[cfg(feature = "analyze")]
        let Envelope {
            kind,
            sent_ns,
            trace,
            ..
        } = env;
        #[cfg(not(feature = "analyze"))]
        let Envelope { kind, sent_ns, .. } = env;
        let EnvKind::Entry {
            to,
            payload: Payload::Wire(bytes),
            reply,
            guard,
        } = kind
        else {
            // analyze: allow(panic, "the batchable match above admits exactly this shape")
            unreachable!("push_out: non-batchable kind after batchable check");
        };
        // analyze: allow(panic, "agg_bufs is sized to npes at construction and dst is a routed PE index < npes")
        let buf = &mut self.agg_bufs[dst];
        crate::msg::push_batch_record(
            &mut buf.frame,
            &mut self.agg_scratch,
            self.cfg.codec,
            to,
            reply,
            guard,
            sent_ns,
            #[cfg(feature = "analyze")]
            trace,
            &bytes,
        )
        // analyze: allow(panic, "encoding a batch record of an already-encoded entry fails only on a codec bug")
        .expect("batch record failed to encode");
        buf.count += 1;
        if buf.count as usize >= agg.max_count || buf.frame.len() >= agg.max_bytes {
            self.flush_agg(dst);
        }
    }

    /// Flush `dst`'s aggregation buffer (if non-empty) into one
    /// [`EnvKind::Batch`] envelope on the outbox. The batch itself is a
    /// *physical* artifact: never QD-counted, never logically traced (trace
    /// id 0, detector-exempt) — its constituents did all of that in `emit`.
    fn flush_agg(&mut self, dst: Pe) {
        // analyze: allow(panic, "agg_bufs is sized to npes at construction and dst is a routed PE index < npes")
        let buf = &mut self.agg_bufs[dst];
        if buf.count == 0 {
            return;
        }
        let count = std::mem::take(&mut buf.count);
        let frame = WireBytes::copy_from_slice(&buf.frame);
        buf.frame.clear();
        self.encode_pool.record_encoded(frame.len());
        self.tracer.batch_flush(count as u64);
        if self.tracer.full() {
            let now = self.send_ts_ns();
            self.tracer.push(
                now,
                charm_trace::EventKind::BatchFlush {
                    msgs: count,
                    bytes: frame.len().min(u32::MAX as usize) as u32,
                },
            );
        }
        let mut env = Envelope::new(self.pe, EnvKind::Batch { count, frame });
        env.epoch = self.cfg.epoch;
        self.outbox.push((dst, env));
    }

    /// Flush every destination's pending aggregation buffer, in PE order
    /// (deterministic under sim). Called on scheduler idle, on quiescence
    /// probes (a parked message is sent-but-unprocessed, so QD could never
    /// converge over it) and at checkpoint entry (a snapshot must not
    /// capture a world where sent traffic sits in a sender-side buffer
    /// that dies with the incarnation). Returns whether anything flushed.
    pub fn flush_aggregation(&mut self) -> bool {
        let mut any = false;
        for dst in 0..self.agg_bufs.len() {
            // analyze: allow(panic, "dst iterates 0..agg_bufs.len()")
            if self.agg_bufs[dst].count > 0 {
                self.flush_agg(dst);
                any = true;
            }
        }
        any
    }

    /// Charge compute to the current event (and, optionally, a chare),
    /// classified as useful entry work or runtime overhead for the trace.
    fn charge_work(&mut self, ns: u64, chare: Option<&ChareId>, class: WorkClass) {
        self.event_work_ns += ns;
        if self.tracer.summary_on() {
            // Summary mode bins the span on the PE clock; `event_work_ns`
            // already includes this charge, so `now_ns` is the span's end.
            let end = self.now_ns();
            self.tracer.work_at(class, ns, end);
        } else {
            self.tracer.work(class, ns);
        }
        if let Some(id) = chare {
            if ns > 0 && class == WorkClass::Entry && self.cfg.telemetry.is_some() {
                self.tel_sketch.observe(id, ns);
            }
            if let Some(slot) = self.chares.get_mut(id) {
                slot.load_ns += ns;
            }
        }
    }

    // =====================================================================
    // Envelope handling
    // =====================================================================

    pub fn handle(&mut self, env: Envelope) {
        // Refresh the send-path timestamp cache (threads backend, tracing
        // on): every MsgSend/BatchFlush event, outgoing `sent_ns` stamp and
        // the incoming latency sample minted while this envelope is handled
        // shares one `Instant::now` read instead of paying one per emitted
        // envelope.
        if !self.cfg.is_sim && self.tracer.enabled() {
            self.now_cache_ns = self.start.elapsed().as_nanos() as u64;
        }
        // Stale-epoch guard: an envelope from a previous incarnation (in
        // flight when a PE died and the machine restored) must never reach
        // post-recovery state — discard before any accounting, so neither
        // the QD counters nor the detector ever see it. `Halt` is the
        // supervisor's teardown signal and is honored regardless.
        if env.epoch != self.cfg.epoch && !matches!(env.kind, EnvKind::Halt) {
            // A stale batch strands every constituent it carries.
            self.tracer.stale_discarded += match &env.kind {
                EnvKind::Batch { count, .. } => *count as u64,
                _ => 1,
            };
            if self.tracer.full() {
                let now = self.now_ns();
                self.tracer.push(now, charm_trace::EventKind::StaleDrop);
            }
            return;
        }
        // A batch is a transport frame, not a delivery: split it back into
        // its constituent entry envelopes and handle each in frame (=
        // emission) order. All per-message accounting — QD processed
        // counts, recv stats, detector delivery checks — happens in the
        // recursive calls, exactly once per constituent; the split itself
        // (one decode + copy per record, via the metered entry decode path
        // downstream) is the per-message unpack cost of aggregation.
        if let EnvKind::Batch { frame, .. } = env.kind {
            let constituents = crate::msg::split_batch(
                env.src,
                env.epoch,
                &frame,
                self.cfg.codec,
                self.cfg.fast_paths,
            )
            .unwrap_or_else(|e| {
                // analyze: allow(panic, "the frame was produced by this runtime's own batch encoder; a split failure is a framing bug")
                panic!("batch frame split failed: {e}")
            });
            for constituent in constituents {
                self.handle(constituent);
            }
            return;
        }
        if env.kind.counts_for_qd() {
            self.tracer.counters.processed += 1;
        }
        if self.tracer.enabled() {
            let sz = env.kind.size_hint() as u64;
            self.tracer.msg_recv(sz);
            // Send→deliver latency on the receiver's clock, application
            // (QD-counted) traffic only; `saturating_sub` is the monotone
            // clamp across per-PE clocks.
            if env.sent_ns > 0 && env.kind.counts_for_qd() {
                let now = if self.cfg.is_sim {
                    self.clock_ns + self.event_work_ns
                } else {
                    self.now_cache_ns
                };
                self.tracer.latency(now.saturating_sub(env.sent_ns));
            }
            if self.tracer.full() {
                let now = self.now_ns();
                self.tracer.push(
                    now,
                    charm_trace::EventKind::MsgRecv {
                        bytes: sz.min(u32::MAX as u64) as u32,
                    },
                );
            }
        }
        // Delivery event: dedup + per-channel FIFO + clock join. Parked
        // envelopes re-enter via `dispatch()` below, so each delivery is
        // accounted exactly once.
        #[cfg(feature = "analyze")]
        self.det.on_deliver(env.src, &env.trace);
        self.dispatch(env);
    }

    /// Dispatch without QD counting — used for re-processing envelopes that
    /// were parked (they were counted when they first arrived).
    fn dispatch(&mut self, env: Envelope) {
        let src = env.src;
        match env.kind {
            EnvKind::Entry {
                to,
                payload,
                reply,
                guard,
            } => self.route_entry_from(src, to, payload, reply, guard),
            EnvKind::Batch { .. } => {
                // analyze: allow(panic, "handle() splits every batch before dispatch; reaching here is a scheduler bug")
                unreachable!("batch envelope reached dispatch unsplit")
            }
            EnvKind::BroadcastEntry { coll, bytes, root } => {
                if !self.colls.contains_key(&coll) {
                    self.park_unknown_coll(coll, EnvKind::BroadcastEntry { coll, bytes, root });
                    return;
                }
                let tree = self.cfg.tree;
                let members = self.local_members(coll);
                if self.tracer.enabled() {
                    self.tracer.bcast_relays += 1;
                    if self.tracer.full() {
                        let now = self.now_ns();
                        self.tracer.push(
                            now,
                            charm_trace::EventKind::BcastFanout {
                                children: tree.fanout(self.pe, root, self.npes) as u32,
                                members: members.len() as u32,
                            },
                        );
                    }
                }
                tree.children_for_each(self.pe, root, self.npes, |child| {
                    self.emit(
                        child,
                        EnvKind::BroadcastEntry {
                            coll,
                            bytes: bytes.clone(),
                            root,
                        },
                    );
                });
                for id in members {
                    self.deliver_wire_entry(id, &bytes, None);
                }
            }
            EnvKind::CreateCollection { spec, init, root } => {
                self.create_collection(spec, init, root)
            }
            EnvKind::InsertElem {
                coll,
                index,
                init,
                on_pe,
                placed,
            } => self.insert_elem(coll, index, init, on_pe, placed),
            EnvKind::DoneInserting { coll } => {
                if let Some(cs) = self.colls.get_mut(&coll) {
                    cs.done_inserting = true;
                } else {
                    self.park_unknown_coll(coll, EnvKind::DoneInserting { coll });
                }
            }
            EnvKind::FutureValue { fid, payload } => self.future_value(fid, payload),
            EnvKind::RedPartial {
                coll,
                redno,
                count,
                data,
                reducer,
                target,
            } => {
                if !self.colls.contains_key(&coll) {
                    self.park_unknown_coll(
                        coll,
                        EnvKind::RedPartial {
                            coll,
                            redno,
                            count,
                            data,
                            reducer,
                            target,
                        },
                    );
                    return;
                }
                self.red_merge(coll, redno, count, data, Some(reducer), target);
                self.red_try_complete(coll, redno);
            }
            EnvKind::RedDeliver { to, tag, data } => self.route_reduced(to, tag, data),
            EnvKind::RedBroadcast {
                coll,
                tag,
                data,
                root,
            } => {
                if !self.colls.contains_key(&coll) {
                    self.park_unknown_coll(
                        coll,
                        EnvKind::RedBroadcast {
                            coll,
                            tag,
                            data,
                            root,
                        },
                    );
                    return;
                }
                let tree = self.cfg.tree;
                let members = self.local_members(coll);
                // Hand the reduced value out without a gratuitous per-hop
                // deep copy: every consumer but the last clones, and the
                // final one (last local member, or last child when this PE
                // hosts none) takes the value by move.
                let uses = tree.fanout(self.pe, root, self.npes) + members.len();
                let mut data = Some(data);
                let mut used = 0;
                tree.children_for_each(self.pe, root, self.npes, |child| {
                    used += 1;
                    let d = if used == uses {
                        // analyze: allow(panic, "fan-out discipline: exactly `uses` consumers; the last takes, earlier ones clone, so the Option is Some")
                        data.take().unwrap()
                    } else {
                        // analyze: allow(panic, "fan-out discipline: a non-final consumer clones while the Option still holds the value")
                        data.as_ref().unwrap().clone()
                    };
                    self.emit(
                        child,
                        EnvKind::RedBroadcast {
                            coll,
                            tag,
                            data: d,
                            root,
                        },
                    );
                });
                for id in members {
                    used += 1;
                    let d = if used == uses {
                        // analyze: allow(panic, "fan-out discipline: exactly `uses` consumers; the last takes, earlier ones clone, so the Option is Some")
                        data.take().unwrap()
                    } else {
                        // analyze: allow(panic, "fan-out discipline: a non-final consumer clones while the Option still holds the value")
                        data.as_ref().unwrap().clone()
                    };
                    self.invoke(id, Invoke::Reduced(tag, d));
                }
            }
            EnvKind::MigrateChare { msg } => self.migrate_in(msg),
            EnvKind::LocationUpdate { id, pe } => {
                if pe != self.pe {
                    self.locations.insert(id, pe);
                } else {
                    self.locations.remove(&id);
                }
                self.flush_pending_chare(id);
            }
            EnvKind::SubtreeAdd { coll, delta } => {
                if let Some(cs) = self.colls.get_mut(&coll) {
                    cs.subtree_members = (cs.subtree_members as i64 + delta) as u64;
                } else {
                    self.park_unknown_coll(coll, EnvKind::SubtreeAdd { coll, delta });
                    return;
                }
                if let Some(parent) = self.cfg.tree.parent(self.pe, 0, self.npes) {
                    self.emit(parent, EnvKind::SubtreeAdd { coll, delta });
                }
            }
            EnvKind::LbPoll => {
                // Only PEs without participants answer; everyone else will
                // (or already did) report via their own at-sync trigger.
                if !self.lb.stats_sent && self.lb_participants().is_empty() {
                    self.lb.stats_sent = true;
                    self.emit(
                        0,
                        EnvKind::LbStats {
                            stats: Vec::new(),
                            at_sync: 0,
                        },
                    );
                }
            }
            EnvKind::LbStats { stats, at_sync } => self.lb_central_stats(stats, at_sync),
            EnvKind::LbDoMigrate { moves, total: _ } => {
                // (The ordering PE tracks the epoch's completion count.)
                for (id, dst) in moves {
                    self.migrate_out(id, dst, true);
                }
            }
            EnvKind::LbMigrated => {
                // A counter rather than a decrement: under `LbMode::Tree`,
                // interior nodes issue orders before the root knows the
                // epoch's total, so completions may arrive first.
                self.lb_central.migrations_done += 1;
                self.lb_maybe_finish_epoch();
            }
            EnvKind::LbKick { epoch } => self.lb_tree_kick(epoch),
            EnvKind::LbTreePoll { epoch, root } => self.lb_tree_poll(epoch, root),
            EnvKind::LbTreeReport { report } => self.lb_tree_report_in(*report),
            EnvKind::LbResume { root } => {
                let tree = self.cfg.tree;
                tree.children_for_each(self.pe, root, self.npes, |child| {
                    self.emit(child, EnvKind::LbResume { root });
                });
                self.lb_resume_local();
            }
            EnvKind::CkptSave { dir, epoch, buddy } => self.ckpt_save(src, dir, epoch, buddy),
            EnvKind::CkptBuddy {
                owner,
                initiator,
                epoch,
                saved,
                image,
            } => self.ckpt_buddy(owner, initiator, epoch, saved, image),
            EnvKind::CkptAck { saved } => self.ckpt_ack(saved),
            EnvKind::RestoreColl { spec, root } => self.restore_coll(spec, root),
            EnvKind::QdProbe { round, root } => self.qd_probe(round, root),
            EnvKind::QdCounts {
                round,
                sent,
                done,
                pes,
            } => self.qd_counts(round, sent, done, pes),
            EnvKind::QdRequest { fid } => self.qd_request(fid),
            EnvKind::TelemetryProbe { seq, root } => self.telemetry_probe(seq, root),
            EnvKind::TelemetryFrame { seq, frame } => self.telemetry_frame(seq, frame),
            EnvKind::Bootstrap => self.bootstrap(),
            EnvKind::Exit => {
                self.exited = true;
            }
            EnvKind::Halt => {
                // Supervisor teardown of a failed incarnation: stop the
                // scheduler loop; the driver salvages state for recovery.
                self.exited = true;
            }
        }
    }

    /// Re-wrap a kind for local parking, stamped with this PE's epoch so it
    /// stays valid when later re-dispatched.
    fn wrap(&self, kind: EnvKind) -> Envelope {
        let mut env = Envelope::new(self.pe, kind);
        env.epoch = self.cfg.epoch;
        env
    }

    fn park_unknown_coll(&mut self, coll: CollectionId, kind: EnvKind) {
        let env = self.wrap(kind);
        self.pending_coll.entry(coll).or_default().push(env);
    }

    fn local_members(&self, coll: CollectionId) -> Vec<ChareId> {
        let mut v: Vec<ChareId> = self
            .chares
            // analyze: allow(nondeterminism, "hash order erased by the sort below")
            .keys()
            .filter(|id| id.coll == coll)
            .copied()
            .collect();
        v.sort(); // deterministic delivery order
        v
    }

    // =====================================================================
    // Routing and entry delivery
    // =====================================================================

    fn route_of(&self, id: &ChareId) -> Route {
        if self.chares.contains_key(id) {
            return Route::Local;
        }
        let Some(cs) = self.colls.get(&id.coll) else {
            return Route::UnknownColl;
        };
        if let Some(&pe) = self.locations.get(id) {
            return Route::Remote(pe, true);
        }
        match &cs.spec.kind {
            // Initial placement is globally computable for these kinds.
            CollKind::Singleton { .. } | CollKind::Group | CollKind::Dense { .. } => {
                let pe = cs.spec.place(&id.index, self.npes, &self.placements);
                if pe == self.pe {
                    // We host it (or will, when creation lands): buffer.
                    Route::BufferHere
                } else {
                    Route::Remote(pe, false)
                }
            }
            CollKind::Sparse => {
                let home = cs.spec.home_pe(&id.index, self.npes);
                if home == self.pe {
                    Route::BufferHere
                } else {
                    Route::Remote(home, false)
                }
            }
        }
    }

    /// Route an entry message; when this PE forwards somebody else's
    /// message (the chare moved on), tell the original sender where the
    /// chare lives now, so migration-induced forwarding chains collapse
    /// after one use (Charm++'s location-update piggyback).
    fn route_entry_from(
        &mut self,
        src: Pe,
        to: ChareId,
        payload: Payload,
        reply: Option<FutureId>,
        guard: Option<u32>,
    ) {
        match self.route_of(&to) {
            Route::Local => self.deliver_entry(to, payload, reply, guard),
            Route::Remote(pe, stub) => {
                if src != self.pe {
                    if stub {
                        self.fwd_hops += 1;
                    }
                    self.emit(src, EnvKind::LocationUpdate { id: to, pe });
                }
                let payload = self.reencode_for(pe, to.coll, payload);
                self.emit(
                    pe,
                    EnvKind::Entry {
                        to,
                        payload,
                        reply,
                        guard,
                    },
                );
            }
            Route::BufferHere => {
                let env = self.wrap(EnvKind::Entry {
                    to,
                    payload,
                    reply,
                    guard,
                });
                self.pending_chare.entry(to).or_default().push(env);
            }
            Route::UnknownColl => self.park_unknown_coll(
                to.coll,
                EnvKind::Entry {
                    to,
                    payload,
                    reply,
                    guard,
                },
            ),
        }
    }

    fn route_reduced(&mut self, to: ChareId, tag: u32, data: RedData) {
        match self.route_of(&to) {
            Route::Local => self.invoke(to, Invoke::Reduced(tag, data)),
            Route::Remote(pe, _) => self.emit(pe, EnvKind::RedDeliver { to, tag, data }),
            Route::BufferHere => {
                let env = self.wrap(EnvKind::RedDeliver { to, tag, data });
                self.pending_chare.entry(to).or_default().push(env);
            }
            Route::UnknownColl => {
                self.park_unknown_coll(to.coll, EnvKind::RedDeliver { to, tag, data })
            }
        }
    }

    /// A `Local` payload being forwarded to another PE must be serialized
    /// now (the §II-D by-reference shortcut only holds same-PE).
    fn reencode_for(&mut self, dst: Pe, coll: CollectionId, payload: Payload) -> Payload {
        if dst == self.pe {
            return payload;
        }
        match payload {
            Payload::Wire(b) => Payload::Wire(b),
            Payload::Local(any) => {
                let cs = self
                    .colls
                    .get(&coll)
                    // analyze: allow(panic, "the router resolved this collection's spec to pick a destination; the spec is present")
                    .expect("forwarding unknown collection");
                let vt = self.registry.vtable(cs.spec.ctype);
                let bytes = (vt.encode_msg)(&*any, self.cfg.codec)
                    // analyze: allow(panic, "re-encoding a message that was encodable at send time fails only on a codec bug")
                    .expect("message re-encode for forwarding failed");
                Payload::Wire(WireBytes::from_vec(bytes))
            }
        }
    }

    fn decode_payload(&mut self, id: &ChareId, payload: Payload) -> BoxMsg {
        match payload {
            Payload::Local(b) => b,
            Payload::Wire(bytes) => self.decode_wire(id, &bytes),
        }
    }

    /// Decode a serialized entry message for `id` straight from a borrowed
    /// buffer. Taking `&[u8]` (not an owned buffer) is the point: fan-out
    /// payloads are owned once by the sender's shared buffer and every
    /// local member decodes from that borrow.
    fn decode_wire(&mut self, id: &ChareId, bytes: &[u8]) -> BoxMsg {
        // Devirtualized fast path: steady-state dispatch resolves the
        // decode fn from the per-PE cache (one short linear probe) instead
        // of the `colls` hash lookup + registry vtable walk per message.
        let decode_msg = if self.dispatch_cache.enabled {
            match self.dispatch_cache.lookup(id.coll) {
                Some(f) => f,
                None => {
                    let cs = self
                        .colls
                        .get(&id.coll)
                        // analyze: allow(panic, "delivery paths park messages until the collection spec arrives; decode runs only after it is known")
                        .expect("decode for unknown collection");
                    let f = self.registry.vtable(cs.spec.ctype).decode_msg;
                    self.dispatch_cache.insert(id.coll, f);
                    f
                }
            }
        } else {
            let cs = self
                .colls
                .get(&id.coll)
                // analyze: allow(panic, "delivery paths park messages until the collection spec arrives; decode runs only after it is known")
                .expect("decode for unknown collection");
            self.registry.vtable(cs.spec.ctype).decode_msg
        };
        // Dynamic dispatch (CharmPy mode): the measured Rust cost of
        // the pickle codec runs for real; the interpreter premium is
        // charged from the machine model (sim backend only).
        if self.cfg.dynamic {
            if let Some(model) = self.cfg.sim_model.clone() {
                let ns = model.dynamic_overhead(bytes.len()).as_nanos() as u64;
                self.charge_work(ns, Some(id), WorkClass::Overhead);
            }
        }
        let codec = self.cfg.codec;
        self.metered(Some(*id), move || {
            decode_msg(codec, bytes)
                // analyze: allow(panic, "wire bytes come from the matching registered encoder; failure is a codec/registration bug")
                .unwrap_or_else(|e| panic!("entry message decode failed: {e}"))
        })
    }

    /// Same-PE delivery of a shared broadcast/multicast payload.
    ///
    /// Ownership flow: the encoded bytes are owned by the caller's
    /// refcounted buffer for the whole fan-out; each local member only
    /// *reads* them to decode its own `BoxMsg`. Wrapping the bytes in an
    /// owned `Payload::Wire` here (as this used to do) deep-copied the
    /// entire buffer per member just so `decode_payload` could consume it —
    /// O(members × size) copies that the decoder never needed.
    fn deliver_wire_entry(&mut self, id: ChareId, bytes: &WireBytes, reply: Option<FutureId>) {
        let msg = self.decode_wire(&id, bytes);
        self.deliver_msg(id, msg, reply, None);
    }

    /// Both the type's receiver-side guard and the optional per-message
    /// sender-side guard must pass for a message to be deliverable.
    fn guards_pass(&self, id: &ChareId, msg: &BoxMsg, guard: Option<u32>) -> bool {
        // analyze: allow(panic, "guards_pass is called only for ids the caller just looked up or buffered under; the slot exists")
        let slot = self.chares.get(id).expect("guard check on missing chare");
        // analyze: allow(panic, "guards never run while the chare is checked out; invoke() returns the box before draining buffers")
        let boxed = slot.boxed.as_ref().expect("chare checked out during guard");
        if !boxed.guard_ok(msg) {
            return false;
        }
        match guard {
            Some(g) => self.cfg.msg_guards.get(g)(boxed.any_ref(), msg),
            None => true,
        }
    }

    fn deliver_entry(
        &mut self,
        id: ChareId,
        payload: Payload,
        reply: Option<FutureId>,
        guard: Option<u32>,
    ) {
        let msg = self.decode_payload(&id, payload);
        self.deliver_msg(id, msg, reply, guard);
    }

    fn deliver_msg(
        &mut self,
        id: ChareId,
        msg: BoxMsg,
        reply: Option<FutureId>,
        guard: Option<u32>,
    ) {
        let guard_ok = self.guards_pass(&id, &msg, guard);
        // analyze: allow(panic, "route_entry inserted or located this chare before delivery; the slot exists")
        let at_sync = self.chares.get(&id).unwrap().at_sync;
        if !guard_ok || at_sync {
            // Deferred by a when-guard, or parked while the chare sits at an
            // LB sync point (AtSync chares do no work until resumed).
            let depth = {
                let slot = self
                    .chares
                    .get_mut(&id)
                    // analyze: allow(panic, "slot presence established at the at_sync lookup above in this same delivery")
                    .unwrap();
                slot.buffered.push_back(Buffered { msg, reply, guard });
                slot.buffered.len() as u32
            };
            if self.tracer.enabled() {
                self.tracer.guard_buffered += 1;
                if self.tracer.full() {
                    let now = self.now_ns();
                    self.tracer
                        .push(now, charm_trace::EventKind::GuardBuffer { depth });
                }
            }
            return;
        }
        self.invoke(id, Invoke::Entry(msg, reply, guard));
    }

    /// Run one invocation on a local chare, then execute its deferred ops
    /// and re-examine guards/waiting coroutines.
    fn invoke(&mut self, id: ChareId, what: Invoke) {
        let Some(slot) = self.chares.get_mut(&id) else {
            // The chare migrated away between routing and invocation
            // (possible when draining buffers); re-route.
            match what {
                Invoke::Entry(msg, reply, guard) => {
                    let payload = Payload::Local(msg);
                    self.route_entry_from(self.pe, id, payload, reply, guard);
                }
                Invoke::Reduced(tag, data) => self.route_reduced(id, tag, data),
                Invoke::ResumeFromSync => {}
            }
            return;
        };
        // analyze: allow(panic, "the scheduler serializes entry methods per chare, so the box is present (checked dynamically under --features analyze)")
        let mut boxed = slot.boxed.take().expect("re-entrant invoke on one chare");
        #[cfg(feature = "analyze")]
        self.det.enter_chare(&id);
        let mut ctx = self.new_ctx(Some(id));
        let trace_begin = if self.tracer.enabled() {
            self.now_ns()
        } else {
            0
        };
        // analyze: allow(nondeterminism, "metering clock: metered_ns() discards it on the deterministic sim (meter off), so wall time never reaches virtual time there")
        let t0 = Instant::now();
        let ekind = match &what {
            Invoke::Entry(..) => EntryKind::Receive,
            Invoke::Reduced(..) => EntryKind::Reduced,
            Invoke::ResumeFromSync => EntryKind::ResumeFromSync,
        };
        match what {
            Invoke::Entry(msg, reply, _) => {
                ctx.reply_to = reply;
                boxed.deliver(msg, &mut ctx);
                self.tracer.counters.entries += 1;
            }
            Invoke::Reduced(tag, data) => {
                boxed.reduced_dyn(tag, data, &mut ctx);
                self.tracer.counters.entries += 1;
            }
            Invoke::ResumeFromSync => boxed.resume_from_sync_dyn(&mut ctx),
        }
        let measured = self.metered_ns(t0);
        let slot = self
            .chares
            .get_mut(&id)
            // analyze: allow(panic, "chares are removed only by migration/exit, which cannot interleave with an in-flight invoke on this PE")
            .expect("slot vanished during invoke");
        slot.boxed = Some(boxed);
        #[cfg(feature = "analyze")]
        self.det.exit_chare(&id);
        self.charge_work(measured, Some(&id), WorkClass::Entry);
        if self.tracer.enabled() {
            let end = self.now_ns();
            let ctype = self.chare_ctype(&id);
            self.tracer.entry(trace_begin, end, measured, ctype, ekind);
        }
        self.exec_ops(ctx.ops, Some(id), ctx.reply_to);
        self.after_state_change(id);
    }

    /// Chare type id for trace attribution (0 when the collection spec is
    /// not locally known — cannot happen for an invokable chare).
    fn chare_ctype(&self, id: &ChareId) -> u32 {
        self.colls
            .get(&id.coll)
            .map(|cs| cs.spec.ctype.0)
            .unwrap_or(0)
    }

    /// Record one coroutine segment as an entry activation. The begin stamp
    /// is back-dated by the segment's measured work; the tracer clamps ring
    /// timestamps so this stays monotone.
    fn trace_coro_segment(&mut self, id: &ChareId, measured_ns: u64) {
        if self.tracer.enabled() {
            let end = self.now_ns();
            let ctype = self.chare_ctype(id);
            self.tracer.entry(
                end.saturating_sub(measured_ns),
                end,
                measured_ns,
                ctype,
                EntryKind::Coroutine,
            );
        }
    }

    fn metered_ns(&self, t0: Instant) -> u64 {
        if self.cfg.is_sim && !self.cfg.meter {
            return 0;
        }
        (t0.elapsed().as_nanos() as f64 * self.cfg.compute_scale) as u64
    }

    /// Meter a closure's real time and charge it as PE work (attributed to
    /// `chare` if given). Used for serialization costs on both directions.
    fn metered<R>(&mut self, chare: Option<ChareId>, f: impl FnOnce() -> R) -> R {
        // analyze: allow(nondeterminism, "metering clock: metered_ns() discards it on the deterministic sim (meter off)")
        let t0 = Instant::now();
        let r = f();
        let ns = self.metered_ns(t0);
        self.charge_work(ns, chare.as_ref(), WorkClass::Overhead);
        r
    }

    /// Coroutine segments self-meter their user code (excluding the thread
    /// rendezvous, which a real user-level-thread runtime would not pay).
    fn scale_coro_work(&self, work_ns: u64) -> u64 {
        if self.cfg.is_sim && !self.cfg.meter {
            return 0;
        }
        (work_ns as f64 * self.cfg.compute_scale) as u64
    }

    /// Retry when-buffered messages and predicate-blocked coroutines until
    /// no further progress — the receiver-side engine behind `@when`
    /// (§II-E) and `self.wait` (§II-H2).
    fn after_state_change(&mut self, id: ChareId) {
        loop {
            match self.chares.get(&id) {
                None => return,                       // migrated away mid-drain
                Some(slot) if slot.at_sync => return, // parked for LB
                Some(_) => {}
            }
            // 1. First deliverable buffered message, in arrival order. The
            // scan finds the ready index; the deque extracts it without
            // shifting the rest of the buffer (front-ready, the common
            // case, is a pop).
            #[cfg(feature = "analyze")]
            let mut fifo_violation: Option<String> = None;
            let ready_msg = {
                // analyze: allow(panic, "after_state_change only walks ids that own slots on this PE")
                let slot = &self.chares[&id];
                let pos = slot
                    .buffered
                    .iter()
                    .position(|b| self.guards_pass(&id, &b.msg, b.guard));
                // Independent re-scan: the chosen index must be the FIRST
                // deliverable one, or the when-guard buffer is draining out
                // of FIFO order.
                #[cfg(feature = "analyze")]
                if let Some(p) = pos {
                    if let Some(q) = slot
                        .buffered
                        .iter()
                        .take(p)
                        .position(|b| self.guards_pass(&id, &b.msg, b.guard))
                    {
                        fifo_violation = Some(format!(
                            "when-guard buffer for chare {id} drained out of FIFO order: \
                             index {q} is deliverable but index {p} was chosen"
                        ));
                    }
                }
                // analyze: allow(panic, "slot presence established above in the same drain pass")
                pos.and_then(|pos| self.chares.get_mut(&id).unwrap().buffered.remove(pos))
            };
            #[cfg(feature = "analyze")]
            if let Some(v) = fifo_violation {
                self.det.violation(v);
            }
            if let Some(b) = ready_msg {
                if self.tracer.enabled() {
                    self.tracer.guard_drained += 1;
                    if self.tracer.full() {
                        let now = self.now_ns();
                        // analyze: allow(trace-hook, "depth probe for the drain event; the slot was checked at the top of this drain pass")
                        let depth = self.chares[&id].buffered.len() as u32;
                        self.tracer
                            .push(now, charm_trace::EventKind::GuardDrain { depth });
                    }
                }
                self.invoke(id, Invoke::Entry(b.msg, b.reply, b.guard));
                continue;
            }
            // 2. A coroutine whose wait-predicate is now satisfied.
            let ready_coro = {
                // analyze: allow(panic, "slot presence established by the caller of this guard re-check")
                let slot = self.chares.get(&id).unwrap();
                // analyze: allow(panic, "the box is in place between handler invocations (checked dynamically under --features analyze)")
                let boxed = slot.boxed.as_ref().unwrap();
                slot.coros.iter().copied().find(|cid| {
                    match self.coros.get(&cid.0).and_then(|h| h.wait.as_ref()) {
                        Some(WaitKind::Pred(p)) => p(boxed.any_ref()),
                        _ => false,
                    }
                })
            };
            if let Some(cid) = ready_coro {
                self.resume_coro(cid, None);
                continue;
            }
            return;
        }
    }

    // =====================================================================
    // Deferred ops
    // =====================================================================

    fn exec_ops(&mut self, ops: Vec<Op>, this: Option<ChareId>, reply: Option<FutureId>) {
        for op in ops {
            match op {
                Op::SendElem {
                    to,
                    payload,
                    reply,
                    guard,
                } => {
                    let (is_local, dst) = match self.route_of(&to) {
                        Route::Local => (true, self.pe),
                        Route::Remote(pe, _) => (false, pe),
                        Route::BufferHere | Route::UnknownColl => (false, self.pe),
                    };
                    let (byref, codec) = (self.cfg.same_pe_byref, self.cfg.codec);
                    // The pool is lent out for the metered closure (the
                    // meter needs `&mut self`); takes on it never allocate
                    // at steady state, so the loan is the whole cost.
                    let mut pool = std::mem::take(&mut self.encode_pool);
                    let payload = self.metered(this, || {
                        payload
                            .into_payload(is_local, byref, codec, &mut pool)
                            // analyze: allow(panic, "encoding a runtime-built entry message fails only on a codec bug")
                            .expect("entry message failed to encode")
                    });
                    self.encode_pool = pool;
                    // Always goes through the queue, even locally: entry
                    // methods are asynchronous and never run re-entrantly.
                    self.emit(
                        dst,
                        EnvKind::Entry {
                            to,
                            payload,
                            reply,
                            guard,
                        },
                    );
                }
                Op::Multicast {
                    coll,
                    members,
                    bytes,
                } => {
                    // Section multicast: one encode at the call site, one
                    // routed entry per member, every entry sharing the same
                    // allocation (the clone is a refcount bump).
                    for index in members {
                        let to = ChareId { coll, index };
                        let dst = match self.route_of(&to) {
                            Route::Remote(pe, _) => pe,
                            _ => self.pe,
                        };
                        self.emit(
                            dst,
                            EnvKind::Entry {
                                to,
                                payload: Payload::Wire(bytes.clone()),
                                reply: None,
                                guard: None,
                            },
                        );
                    }
                }
                Op::Broadcast { coll, bytes } => {
                    self.emit(
                        self.pe,
                        EnvKind::BroadcastEntry {
                            coll,
                            bytes,
                            root: self.pe,
                        },
                    );
                }
                Op::CreateCollection { spec, init_bytes } => {
                    self.emit(
                        self.pe,
                        EnvKind::CreateCollection {
                            spec,
                            init: init_bytes,
                            root: self.pe,
                        },
                    );
                }
                Op::InsertElem {
                    coll,
                    index,
                    init,
                    on_pe,
                } => {
                    // Decide the destination if we can; otherwise loop to
                    // self until the spec arrives.
                    let dest = self.colls.get(&coll).map(|cs| {
                        on_pe.unwrap_or_else(|| cs.spec.place(&index, self.npes, &self.placements))
                    });
                    let placed = dest.is_some();
                    let dst = dest.unwrap_or(self.pe);
                    let init = init
                        .into_payload(
                            dst == self.pe,
                            self.cfg.same_pe_byref,
                            self.cfg.codec,
                            &mut self.encode_pool,
                        )
                        // analyze: allow(panic, "encoding a just-built constructor argument fails only on a codec bug")
                        .expect("constructor argument failed to encode");
                    self.emit(
                        dst,
                        EnvKind::InsertElem {
                            coll,
                            index,
                            init,
                            on_pe,
                            placed,
                        },
                    );
                }
                Op::DoneInserting { coll } => {
                    for pe in 0..self.npes {
                        self.emit(pe, EnvKind::DoneInserting { coll });
                    }
                }
                Op::SendFuture { fid, payload } => {
                    let dst = fid.pe as usize;
                    let payload = payload
                        .into_payload(
                            dst == self.pe,
                            self.cfg.same_pe_byref,
                            self.cfg.codec,
                            &mut self.encode_pool,
                        )
                        // analyze: allow(panic, "encoding a future value fails only on a codec bug")
                        .expect("future value failed to encode");
                    self.emit(dst, EnvKind::FutureValue { fid, payload });
                }
                Op::Contribute {
                    data,
                    reducer,
                    target,
                } => {
                    // analyze: allow(panic, "API contract: contribute is only callable inside an entry method")
                    let id = this.expect("contribute outside a chare");
                    self.contribute_local(id, data, reducer, target);
                }
                Op::MigrateMe { to } => {
                    // analyze: allow(panic, "API contract: migrate_me is only callable inside an entry method")
                    let id = this.expect("migrate_me outside a chare");
                    self.migrate_out(id, to, false);
                }
                Op::AtSync => {
                    // analyze: allow(panic, "API contract: at_sync is only callable inside an entry method")
                    let id = this.expect("at_sync outside a chare");
                    if let Some(slot) = self.chares.get_mut(&id) {
                        if !slot.at_sync {
                            slot.at_sync = true;
                            self.lb.at_sync_count += 1;
                        }
                    }
                    self.lb_check_ready();
                }
                Op::Go(f) => {
                    // analyze: allow(panic, "API contract: go is only callable inside an entry method")
                    let id = this.expect("go outside a chare");
                    self.launch_coro(id, f, reply);
                }
                Op::Charge(dt) => {
                    if self.cfg.is_sim {
                        self.charge_work(dt.as_nanos() as u64, this.as_ref(), WorkClass::Entry);
                    } else {
                        // analyze: allow(blocking, "Charge deliberately burns wall time on the threads backend to emulate compute; it blocks only the charging chare's PE, exactly as real work would")
                        std::thread::sleep(dt);
                        // Same accounting as the sim arm: summary bins,
                        // the hot-chare sketch, and the chare's measured
                        // load all see the charge.
                        self.now_cache_ns = self.now_ns();
                        self.charge_work(dt.as_nanos() as u64, this.as_ref(), WorkClass::Entry);
                    }
                }
                Op::StartQd { fid } => {
                    self.emit(0, EnvKind::QdRequest { fid });
                }
                Op::Checkpoint { dir, fid } => {
                    assert!(self.ckpt.is_none(), "checkpoint already in progress");
                    self.ckpt = Some(CkptPending::Manual {
                        fid,
                        left: self.npes,
                        total: 0,
                    });
                    let epoch = self.next_ckpt_epoch;
                    self.next_ckpt_epoch += 1;
                    for pe in 0..self.npes {
                        self.emit(
                            pe,
                            EnvKind::CkptSave {
                                dir: Some(dir.clone()),
                                epoch,
                                buddy: false,
                            },
                        );
                    }
                }
                Op::Exit => {
                    for pe in 0..self.npes {
                        self.emit(pe, EnvKind::Exit);
                    }
                }
                Op::TraceMark(label) => {
                    if self.tracer.full() {
                        let now = self.now_ns();
                        self.tracer
                            .push(now, charm_trace::EventKind::Mark { label });
                    }
                }
            }
        }
    }

    // =====================================================================
    // Coroutines
    // =====================================================================

    fn launch_coro(&mut self, id: ChareId, f: CoroLauncher, reply: Option<FutureId>) {
        let (in_tx, in_rx) = mpsc::channel::<CoroInput>();
        let (out_tx, out_rx) = mpsc::channel::<CoroYield>();
        let side = CoroSide {
            rx: in_rx,
            tx: out_tx,
            seed: self.seed.clone(),
            chare_id: id,
        };
        let join = std::thread::Builder::new()
            .name(format!("coro-{id}"))
            .spawn(move || f(side))
            // analyze: allow(panic, "OS thread spawn fails only on resource exhaustion; the runtime cannot run coroutines without it")
            .expect("failed to spawn coroutine thread");
        let cid = CoroId(self.next_coro);
        self.next_coro += 1;
        self.coros.insert(
            cid.0,
            CoroHandle {
                tx: in_tx,
                rx: out_rx,
                join: Some(join),
                chare: id,
                wait: None,
            },
        );
        self.chares
            .get_mut(&id)
            // analyze: allow(panic, "launch_coro is called with an id the scheduler just resolved; the slot exists")
            .expect("go on missing chare")
            .coros
            .push(cid);
        let chare = self
            .chares
            .get_mut(&id)
            // analyze: allow(panic, "slot presence established at the `go on missing chare` check above")
            .unwrap()
            .boxed
            .take()
            // analyze: allow(panic, "the box is in place when a coroutine launches; entry methods are serialized per chare")
            .expect("chare checked out at coroutine launch");
        let now_ns = self.now_ns();
        // analyze: allow(panic, "the handle was inserted into self.coros a few lines above")
        let handle = self.coros.get_mut(&cid.0).unwrap();
        handle
            .tx
            .send(CoroInput::Start {
                chare,
                now_ns,
                reply_to: reply,
            })
            // analyze: allow(panic, "the coroutine thread blocks on the rendezvous before any yield; a closed channel means it died, which is fatal")
            .expect("coroutine died before start");
        let y = handle.rx.recv();
        self.process_yield(cid, y);
    }

    fn resume_coro(&mut self, cid: CoroId, value: Option<Payload>) {
        let id = self
            .coros
            .get(&cid.0)
            // analyze: allow(panic, "resume messages are only generated for coroutines this scheduler created and has not completed")
            .expect("resume of unknown coroutine")
            .chare;
        let chare = self
            .chares
            .get_mut(&id)
            // analyze: allow(panic, "a live coroutine pins its chare; the chare cannot be removed mid-coroutine")
            .expect("coroutine's chare missing")
            .boxed
            .take()
            // analyze: allow(panic, "the box was returned at the previous yield; no other handler ran for this chare since")
            .expect("chare checked out at coroutine resume");
        let now_ns = self.now_ns();
        // analyze: allow(panic, "handle presence established at the resume lookup above")
        let handle = self.coros.get_mut(&cid.0).unwrap();
        handle.wait = None;
        handle
            .tx
            .send(CoroInput::Resume {
                chare,
                value,
                now_ns,
            })
            // analyze: allow(panic, "a closed rendezvous channel means the coroutine thread died; fatal")
            .expect("coroutine died before resume");
        let y = handle.rx.recv();
        self.process_yield(cid, y);
    }

    fn process_yield(&mut self, cid: CoroId, y: Result<CoroYield, mpsc::RecvError>) {
        let id = self
            .coros
            .get(&cid.0)
            // analyze: allow(panic, "yields only come from coroutines this scheduler launched")
            .expect("yield from unknown coroutine")
            .chare;
        match y {
            Ok(CoroYield::Blocked {
                chare,
                ops,
                wait,
                work_ns,
            }) => {
                let measured_ns = self.scale_coro_work(work_ns);
                // analyze: allow(panic, "the chare slot outlives its coroutines; presence established at launch")
                self.chares.get_mut(&id).unwrap().boxed = Some(chare);
                self.charge_work(measured_ns, Some(&id), WorkClass::Entry);
                self.trace_coro_segment(&id, measured_ns);
                let register_future = match &wait {
                    WaitKind::Future(fid) => Some(*fid),
                    WaitKind::Pred(_) => None,
                };
                // analyze: allow(panic, "handle presence established when the yield was received")
                self.coros.get_mut(&cid.0).unwrap().wait = Some(wait);
                // Flush the coroutine's buffered ops *before* checking for
                // an already-ready future, so they are never lost.
                self.exec_ops(ops, Some(id), None);
                if let Some(fid) = register_future {
                    match self.futures.remove(&fid) {
                        Some(FutState::Ready(payload)) => {
                            // Value already arrived: resume immediately.
                            self.resume_coro(cid, Some(payload));
                            return;
                        }
                        Some(FutState::Waiting(_)) => {
                            // analyze: allow(panic, "one-waiter-per-future discipline: wait() consumes the future, so a second waiter is a user bug worth failing fast")
                            panic!("two coroutines waiting on one future")
                        }
                        _ => {
                            self.futures.insert(fid, FutState::Waiting(cid));
                        }
                    }
                }
                self.after_state_change(id);
            }
            Ok(CoroYield::Done {
                chare,
                ops,
                work_ns,
            }) => {
                let measured_ns = self.scale_coro_work(work_ns);
                // analyze: allow(panic, "the chare slot outlives its coroutines; presence established at resume")
                self.chares.get_mut(&id).unwrap().boxed = Some(chare);
                self.charge_work(measured_ns, Some(&id), WorkClass::Entry);
                self.trace_coro_segment(&id, measured_ns);
                if let Some(mut h) = self.coros.remove(&cid.0) {
                    if let Some(j) = h.join.take() {
                        let _ = j.join();
                    }
                }
                if let Some(slot) = self.chares.get_mut(&id) {
                    slot.coros.retain(|c| *c != cid);
                }
                self.exec_ops(ops, Some(id), None);
                self.after_state_change(id);
            }
            Err(_) => {
                // Recover the original panic payload from the dead thread
                // so the user's message survives, not a generic wrapper.
                let payload = self
                    .coros
                    .get_mut(&cid.0)
                    .and_then(|h| h.join.take())
                    .and_then(|j| j.join().err());
                match payload {
                    Some(p) => std::panic::resume_unwind(p),
                    // analyze: allow(panic, "a coroutine ending without Done or a yield means its thread panicked; propagate the failure")
                    None => panic!("coroutine for chare {id} terminated unexpectedly"),
                }
            }
        }
    }

    // =====================================================================
    // Futures
    // =====================================================================

    fn future_value(&mut self, fid: FutureId, payload: Payload) {
        debug_assert_eq!(fid.pe as usize, self.pe, "future value routed to wrong PE");
        if self.entry_gate == Some(fid) {
            // Restoration quiesced: every checkpointed chare has landed.
            self.entry_gate = None;
            self.launch_main();
            return;
        }
        match self.futures.remove(&fid) {
            Some(FutState::Waiting(cid)) => self.resume_coro(cid, Some(payload)),
            // analyze: allow(panic, "futures complete exactly once by protocol; a second FutureValue is runtime corruption (the analyze detector reports it as double delivery)")
            Some(FutState::Ready(_)) => panic!("future {fid:?} completed twice"),
            _ => {
                self.futures.insert(fid, FutState::Ready(payload));
            }
        }
    }

    // =====================================================================
    // Collections
    // =====================================================================

    fn initial_counts(&self, spec: &CollSpec) -> Vec<u64> {
        let mut counts = vec![0u64; self.npes];
        match &spec.kind {
            // analyze: allow(panic, "pe indices come from placement and are bounded by npes; counts was sized to npes")
            CollKind::Singleton { pe } => counts[*pe] += 1,
            CollKind::Group => counts.iter_mut().for_each(|c| *c += 1),
            CollKind::Dense { dims } => {
                // Closed form for the analytic placements: every PE runs
                // this at creation, so the enumeration fallback is
                // O(members) per PE — O(npes · members) machine-wide,
                // which dominates bootstrap at 65k PEs.
                if !spec.dense_counts_closed(&mut counts, self.npes) {
                    for ix in CollSpec::dense_indices(dims) {
                        // analyze: allow(panic, "place() reduces indices mod npes; counts was sized to npes")
                        counts[spec.place(&ix, self.npes, &self.placements)] += 1;
                    }
                }
            }
            CollKind::Sparse => {}
        }
        counts
    }

    fn subtree_total(&self, counts: &[u64], pe: Pe) -> u64 {
        // analyze: allow(panic, "pe iterates 0..npes here; counts was sized to npes")
        let mut total = counts[pe];
        self.cfg
            .tree
            .children_for_each(pe, 0, self.npes, |c| total += self.subtree_total(counts, c));
        total
    }

    fn create_collection(&mut self, spec: CollSpec, init: WireBytes, root: Pe) {
        let tree = self.cfg.tree;
        tree.children_for_each(self.pe, root, self.npes, |child| {
            self.emit(
                child,
                EnvKind::CreateCollection {
                    spec: spec.clone(),
                    init: init.clone(),
                    root,
                },
            );
        });
        let counts = self.initial_counts(&spec);
        let coll = spec.id;
        let state = CollState {
            // analyze: allow(panic, "self.pe is bounded by npes; counts was sized to npes")
            local_members: counts[self.pe],
            subtree_members: self.subtree_total(&counts, self.pe),
            done_inserting: !matches!(spec.kind, CollKind::Sparse),
            red_broadcast_seen: 0,
            spec,
        };
        let spec = state.spec.clone();
        self.colls.insert(coll, state);
        self.dispatch_cache.clear();

        // Construct locally-placed members (deterministic index order).
        // The analytic placements enumerate only this PE's own linear
        // positions — the filter-everything fallback is O(members) per PE,
        // O(npes · members) machine-wide.
        let mine: Vec<Index> = match &spec.kind {
            CollKind::Singleton { pe } if *pe == self.pe => vec![Index::SINGLE],
            CollKind::Group => vec![Index::pe(self.pe)],
            CollKind::Dense { dims } => match spec.placement {
                crate::collections::Placement::Block => {
                    let (lo, hi) = CollSpec::block_range(dims, self.pe, self.npes);
                    (lo..hi)
                        .map(|lin| CollSpec::dense_index_at(dims, lin))
                        .collect()
                }
                crate::collections::Placement::RoundRobin => {
                    let total = CollSpec::dense_len(dims);
                    (self.pe as u64..total)
                        .step_by(self.npes)
                        .map(|lin| CollSpec::dense_index_at(dims, lin))
                        .collect()
                }
                _ => CollSpec::dense_indices(dims)
                    .filter(|ix| spec.place(ix, self.npes, &self.placements) == self.pe)
                    .collect(),
            },
            _ => Vec::new(),
        };
        for index in mine {
            let id = ChareId { coll, index };
            self.construct_member(id, &init);
        }

        // Anything that raced ahead of the create can now be handled.
        if let Some(parked) = self.pending_coll.remove(&coll) {
            for env in parked {
                self.dispatch(env);
            }
        }
    }

    fn construct_member(&mut self, id: ChareId, init_bytes: &WireBytes) {
        // analyze: allow(panic, "construct messages are only routed after the spec broadcast that created the collection")
        let cs = self.colls.get(&id.coll).expect("construct without spec");
        let vt = self.registry.vtable(cs.spec.ctype);
        let init = (vt.decode_init)(self.cfg.codec, init_bytes)
            // analyze: allow(panic, "constructor bytes come from the matching registered encoder; failure is a codec bug")
            .unwrap_or_else(|e| panic!("constructor argument decode failed: {e}"));
        self.construct_member_box(id, init);
    }

    fn construct_member_box(&mut self, id: ChareId, init: BoxMsg) {
        // analyze: allow(panic, "spec presence established at the construct lookup above")
        let cs = self.colls.get(&id.coll).expect("construct without spec");
        let ctype = cs.spec.ctype;
        let construct = self.registry.vtable(ctype).construct;
        let mut ctx = self.new_ctx(Some(id));
        let trace_begin = if self.tracer.enabled() {
            self.now_ns()
        } else {
            0
        };
        // analyze: allow(nondeterminism, "metering clock: metered_ns() discards it on the deterministic sim (meter off)")
        let t0 = Instant::now();
        let boxed = construct(init, &mut ctx, ctype);
        let measured = self.metered_ns(t0);
        self.chares.insert(id, Slot::new(boxed));
        self.charge_work(measured, Some(&id), WorkClass::Entry);
        if self.tracer.enabled() {
            let end = self.now_ns();
            self.tracer
                .entry(trace_begin, end, measured, ctype.0, EntryKind::Construct);
        }
        self.exec_ops(ctx.ops, Some(id), None);
        self.flush_pending_chare(id);
        self.after_state_change(id);
    }

    fn flush_pending_chare(&mut self, id: ChareId) {
        if let Some(parked) = self.pending_chare.remove(&id) {
            for env in parked {
                self.dispatch(env);
            }
        }
    }

    fn insert_elem(
        &mut self,
        coll: CollectionId,
        index: Index,
        init: Payload,
        on_pe: Option<Pe>,
        placed: bool,
    ) {
        let Some(cs) = self.colls.get(&coll) else {
            self.park_unknown_coll(
                coll,
                EnvKind::InsertElem {
                    coll,
                    index,
                    init,
                    on_pe,
                    placed,
                },
            );
            return;
        };
        if !placed {
            let dst = on_pe.unwrap_or_else(|| cs.spec.place(&index, self.npes, &self.placements));
            let init = self.reencode_init_for(dst, coll, init);
            self.emit(
                dst,
                EnvKind::InsertElem {
                    coll,
                    index,
                    init,
                    on_pe,
                    placed: true,
                },
            );
            return;
        }
        let home = cs.spec.home_pe(&index, self.npes);
        let id = ChareId { coll, index };
        let vt = self.registry.vtable(cs.spec.ctype);
        let init_box = match init {
            Payload::Local(b) => b,
            Payload::Wire(bytes) => (vt.decode_init)(self.cfg.codec, &bytes)
                // analyze: allow(panic, "constructor bytes come from the matching registered encoder; failure is a codec bug")
                .unwrap_or_else(|e| panic!("constructor argument decode failed: {e}")),
        };
        {
            // analyze: allow(panic, "spec presence established earlier in this insert path")
            let cs = self.colls.get_mut(&coll).unwrap();
            cs.local_members += 1;
            cs.subtree_members += 1;
        }
        if let Some(parent) = self.cfg.tree.parent(self.pe, 0, self.npes) {
            self.emit(parent, EnvKind::SubtreeAdd { coll, delta: 1 });
        }
        if home != self.pe {
            self.emit(home, EnvKind::LocationUpdate { id, pe: self.pe });
        }
        self.construct_member_box(id, init_box);
    }

    fn reencode_init_for(&self, dst: Pe, coll: CollectionId, init: Payload) -> Payload {
        if dst == self.pe {
            return init;
        }
        match init {
            Payload::Wire(b) => Payload::Wire(b),
            Payload::Local(any) => {
                let cs = self
                    .colls
                    .get(&coll)
                    // analyze: allow(panic, "the router resolved this collection's spec to pick a destination; the spec is present")
                    .expect("forwarding unknown collection");
                let vt = self.registry.vtable(cs.spec.ctype);
                // Init payloads use the init decoder, so encode via the
                // generic path: we cannot re-use encode_msg (wrong type).
                // OutPayload already encoded Wire for remote dests, so a
                // Local init here means dst was believed local; encode with
                // the vtable's init encoder.
                let bytes = (vt.encode_init)(&*any, self.cfg.codec)
                    // analyze: allow(panic, "re-encoding an argument that was encodable at send time fails only on a codec bug")
                    .expect("constructor argument re-encode failed");
                Payload::Wire(WireBytes::from_vec(bytes))
            }
        }
    }

    // =====================================================================
    // Reductions
    // =====================================================================

    fn contribute_local(
        &mut self,
        id: ChareId,
        data: RedData,
        reducer: Reducer,
        target: RedTarget,
    ) {
        if self.tracer.enabled() {
            self.tracer.red_contributes += 1;
            if self.tracer.full() {
                let now = self.now_ns();
                self.tracer.push(now, charm_trace::EventKind::RedContribute);
            }
        }
        let coll = id.coll;
        let redno = {
            let slot = self
                .chares
                .get_mut(&id)
                // analyze: allow(panic, "contribute is invoked by a live chare on this PE; its slot exists")
                .expect("contribute from missing chare");
            let n = slot.red_seq;
            slot.red_seq += 1;
            n
        };
        self.red_merge(coll, redno, 1, data, Some(reducer), Some(target));
        // analyze: allow(panic, "the reduction state was created by the entry check just above")
        let st = self.reds.get_mut(&(coll, redno)).unwrap();
        st.local_got += 1;
        self.red_try_complete(coll, redno);
    }

    fn red_merge(
        &mut self,
        coll: CollectionId,
        redno: u64,
        count: u64,
        data: RedData,
        reducer: Option<Reducer>,
        target: Option<RedTarget>,
    ) {
        let st = self.reds.entry((coll, redno)).or_default();
        if st.reducer.is_none() {
            st.reducer = reducer;
        }
        if st.target.is_none() {
            st.target = target;
        }
        st.count += count;
        st.parts.push(data);
        // Combine incrementally so memory stays bounded for big fan-ins.
        if st.parts.len() >= 2 {
            // analyze: allow(panic, "every contribute path sets the reducer before pushing a part")
            let reducer = st.reducer.expect("reduction without reducer");
            let parts = std::mem::take(&mut st.parts);
            let combined = combine(reducer, parts, &self.reducers);
            self.reds
                .get_mut(&(coll, redno))
                // analyze: allow(panic, "the (coll, redno) entry was fetched mutably two lines up; still present")
                .unwrap()
                .parts
                .push(combined);
        }
    }

    fn red_try_complete(&mut self, coll: CollectionId, redno: u64) {
        let Some(cs) = self.colls.get(&coll) else {
            return;
        };
        let expected = self.subtree_expected(coll);
        // analyze: allow(panic, "callers only check completion for reductions with live state")
        let st = self.reds.get(&(coll, redno)).expect("red state missing");
        if expected == 0 || st.count < expected {
            return;
        }
        assert!(
            st.count == expected,
            "reduction over-contributed: {} > {} on {} (did members contribute twice?)",
            st.count,
            expected,
            cs.spec.id
        );
        // analyze: allow(panic, "completion runs at most once; the caller verified the state is present")
        let mut st = self.reds.remove(&(coll, redno)).unwrap();
        // analyze: allow(panic, "every contribution set the reducer; a reduction cannot complete without one")
        let reducer = st.reducer.expect("completing reduction without reducer");
        let data = if st.parts.len() == 1 {
            // analyze: allow(panic, "the len()==1 branch guarantees a part to pop")
            st.parts.pop().unwrap()
        } else {
            combine(reducer, std::mem::take(&mut st.parts), &self.reducers)
        };
        match self.cfg.tree.parent(self.pe, 0, self.npes) {
            Some(parent) => self.emit(
                parent,
                EnvKind::RedPartial {
                    coll,
                    redno,
                    count: expected,
                    data,
                    reducer,
                    target: st.target,
                },
            ),
            None => {
                // Root: deliver to the target.
                // analyze: allow(panic, "the reduction's target was recorded at creation from the contribute call")
                let target = st.target.expect("reduction completed without target");
                self.red_deliver(target, data);
            }
        }
    }

    fn subtree_expected(&self, coll: CollectionId) -> u64 {
        self.colls
            .get(&coll)
            .map(|c| c.subtree_members)
            .unwrap_or(0)
    }

    fn red_deliver(&mut self, target: RedTarget, data: RedData) {
        if self.tracer.enabled() {
            self.tracer.red_delivers += 1;
            if self.tracer.full() {
                let now = self.now_ns();
                self.tracer.push(now, charm_trace::EventKind::RedDeliver);
            }
        }
        match target {
            RedTarget::Future(fid) => {
                let dst = fid.pe as usize;
                let payload = OutPayload::new(data)
                    .into_payload(
                        dst == self.pe,
                        self.cfg.same_pe_byref,
                        self.cfg.codec,
                        &mut self.encode_pool,
                    )
                    // analyze: allow(panic, "encoding the reduction result fails only on a codec bug")
                    .expect("reduction result failed to encode");
                self.emit(dst, EnvKind::FutureValue { fid, payload });
            }
            RedTarget::Element(id, tag) => {
                self.route_reduced(id, tag, data);
            }
            RedTarget::Broadcast(coll, tag) => {
                self.emit(
                    self.pe,
                    EnvKind::RedBroadcast {
                        coll,
                        tag,
                        data,
                        root: self.pe,
                    },
                );
            }
        }
    }

    // =====================================================================
    // Migration
    // =====================================================================

    fn migrate_out(&mut self, id: ChareId, to: Pe, for_lb: bool) {
        if to == self.pe {
            if for_lb {
                self.emit(0, EnvKind::LbMigrated);
            }
            return;
        }
        {
            let slot = self
                .chares
                .get(&id)
                // analyze: allow(panic, "LbDoMigrate names chares the central LB just saw in this PE's stats; absence means runtime corruption")
                .unwrap_or_else(|| panic!("migrate_out of missing chare {id}"));
            assert!(
                slot.coros.is_empty(),
                "cannot migrate {id}: a threaded entry method is active"
            );
        }
        let (encode_msg, home) = {
            // analyze: allow(panic, "a chare cannot exist without its collection's spec on its PE")
            let cs = self.colls.get(&id.coll).expect("migrate without spec");
            (
                self.registry.vtable(cs.spec.ctype).encode_msg,
                cs.spec.home_pe(&id.index, self.npes),
            )
        };
        // analyze: allow(panic, "presence checked by migrate_out's lookup at entry")
        let slot = self.chares.remove(&id).unwrap();
        // analyze: allow(panic, "migration initiates between entry methods; the box is in place")
        let boxed = slot.boxed.expect("chare checked out at migration");
        let data = boxed
            .pack(self.cfg.codec)
            .unwrap_or_else(|| {
                // analyze: allow(panic, "migrating a chare type without pack support is a registration bug, surfaced at the first migration attempt")
                panic!(
                    "{} is not migratable; use register_migratable",
                    self.registry.vtable(boxed.type_id()).name
                )
            })
            // analyze: allow(panic, "encoding chare state for migration fails only on a codec bug")
            .expect("chare state failed to encode");
        let buffered: Vec<(Vec<u8>, Option<FutureId>, Option<u32>)> = slot
            .buffered
            .iter()
            .map(|b| {
                (
                    // analyze: allow(panic, "buffered messages were encodable at send time; re-encode fails only on a codec bug")
                    encode_msg(&*b.msg, self.cfg.codec).expect("buffered message encode failed"),
                    b.reply,
                    b.guard,
                )
            })
            .collect();
        {
            // analyze: allow(panic, "spec presence established at migrate_out entry")
            let cs = self.colls.get_mut(&id.coll).unwrap();
            cs.local_members -= 1;
            cs.subtree_members -= 1;
        }
        if let Some(parent) = self.cfg.tree.parent(self.pe, 0, self.npes) {
            self.emit(
                parent,
                EnvKind::SubtreeAdd {
                    coll: id.coll,
                    delta: -1,
                },
            );
        }
        self.locations.insert(id, to);
        // The home PE must learn the new location for fresh senders.
        if home != self.pe && home != to {
            self.emit(home, EnvKind::LocationUpdate { id, pe: to });
        }
        self.tracer.counters.migrations += 1;
        if self.tracer.full() {
            let now = self.now_ns();
            self.tracer.push(
                now,
                charm_trace::EventKind::MigrateOut {
                    bytes: data.len().min(u32::MAX as usize) as u32,
                },
            );
        }
        // This PE joins the chare's stub chain; the arrival side collapses
        // the chain once it reaches MAX_FWD_HOPS.
        let mut trail = slot.fwd_trail;
        trail.push(self.pe);
        self.emit(
            to,
            EnvKind::MigrateChare {
                msg: Box::new(MigrateMsg {
                    coll: id.coll,
                    index: id.index,
                    data,
                    buffered,
                    load_ns: if for_lb { 0 } else { slot.load_ns },
                    red_seq: slot.red_seq,
                    for_lb,
                    trail,
                }),
            },
        );
    }

    fn migrate_in(&mut self, msg: Box<MigrateMsg>) {
        if !self.colls.contains_key(&msg.coll) {
            let coll = msg.coll;
            self.park_unknown_coll(coll, EnvKind::MigrateChare { msg });
            return;
        }
        let MigrateMsg {
            coll,
            index,
            data,
            buffered,
            load_ns,
            red_seq,
            for_lb,
            mut trail,
        } = *msg;
        // analyze: allow(panic, "presence checked above")
        let cs = self.colls.get(&coll).unwrap();
        let id = ChareId { coll, index };
        if self.tracer.full() {
            let now = self.now_ns();
            self.tracer.push(
                now,
                charm_trace::EventKind::MigrateIn {
                    bytes: data.len().min(u32::MAX as usize) as u32,
                },
            );
        }
        let vt = self.registry.vtable(cs.spec.ctype);
        // analyze: allow(panic, "migrated-in chares were packed by a type whose vtable migrates; missing unpack is a registration bug")
        let unpack = vt.unpack.expect("migrated chare type lacks unpack");
        let decode_msg = vt.decode_msg;
        let boxed = unpack(self.cfg.codec, &data, cs.spec.ctype)
            // analyze: allow(panic, "state bytes come from the matching pack; decode failure is a codec bug")
            .unwrap_or_else(|e| panic!("migrated chare decode failed: {e}"));
        let mut slot = Slot::new(boxed);
        slot.load_ns = load_ns;
        slot.red_seq = red_seq;
        slot.at_sync = for_lb; // LB migrants resume with everyone else
        if trail.len() < MAX_FWD_HOPS {
            // Chain still short: carry it along (emptying `trail` so the
            // collapse loop below has nothing to send).
            slot.fwd_trail = std::mem::take(&mut trail);
        }
        for (bytes, reply, guard) in buffered {
            let msg = decode_msg(self.cfg.codec, &bytes)
                // analyze: allow(panic, "buffered bytes come from the matching encoder; decode failure is a codec bug")
                .unwrap_or_else(|e| panic!("buffered message decode failed: {e}"));
            slot.buffered.push_back(Buffered { msg, reply, guard });
        }
        self.chares.insert(id, slot);
        self.locations.remove(&id);
        {
            // analyze: allow(panic, "home routing ships migrations only to PEs that hold the collection spec")
            let cs = self.colls.get_mut(&coll).unwrap();
            cs.local_members += 1;
            cs.subtree_members += 1;
        }
        if let Some(parent) = self.cfg.tree.parent(self.pe, 0, self.npes) {
            self.emit(parent, EnvKind::SubtreeAdd { coll, delta: 1 });
        }
        // analyze: allow(panic, "spec presence established in this same migrate-in path")
        let home = cs_home(self.colls.get(&coll).unwrap(), &index, self.npes);
        if home != self.pe {
            self.emit(home, EnvKind::LocationUpdate { id, pe: self.pe });
        }
        // Chain at the hop bound: tell every stub holder the real location
        // so future sends reach this PE in one hop (`trail` is empty unless
        // the bound was hit above).
        for p in trail {
            if p != self.pe && p != home {
                self.emit(p, EnvKind::LocationUpdate { id, pe: self.pe });
            }
        }
        if for_lb {
            self.lb.at_sync_count += 1;
            self.emit(0, EnvKind::LbMigrated);
        }
        self.flush_pending_chare(id);
        self.after_state_change(id);
    }

    // =====================================================================
    // Load balancing protocol
    // =====================================================================

    fn lb_participants(&self) -> Vec<ChareId> {
        let mut v: Vec<ChareId> = self
            .chares
            // analyze: allow(nondeterminism, "hash order erased by the sort below")
            .keys()
            .filter(|id| {
                self.colls
                    .get(&id.coll)
                    .map(|c| c.spec.use_lb)
                    .unwrap_or(false)
            })
            .copied()
            .collect();
        v.sort();
        v
    }

    fn lb_check_ready(&mut self) {
        if self.lb.stats_sent {
            return;
        }
        let participants = self.lb_participants();
        if participants.is_empty() || self.lb.at_sync_count < participants.len() as u64 {
            return;
        }
        match self.cfg.lb_mode {
            LbMode::Central => self.lb_send_central_stats(&participants),
            LbMode::Tree { .. } => {
                // Nudge the root to start the epoch's poll wave (once per
                // PE per epoch); report up as soon as we are polled.
                if !self.lb_tree.kicked {
                    self.lb_tree.kicked = true;
                    let epoch = self.lb_tree.epoch;
                    self.emit(0, EnvKind::LbKick { epoch });
                }
                self.lb_tree_try_report();
            }
        }
    }

    fn lb_send_central_stats(&mut self, participants: &[ChareId]) {
        let stats: Vec<LbChareStat> = participants
            .iter()
            .map(|id| {
                // analyze: allow(panic, "LB stats walk this PE's own chare map keys")
                let slot = &self.chares[id];
                let migratable = self
                    .registry
                    // analyze: allow(panic, "a chare's collection spec exists wherever the chare lives")
                    .vtable(self.colls[&id.coll].spec.ctype)
                    .migratable;
                LbChareStat {
                    id: *id,
                    pe: self.pe,
                    load_ns: slot.load_ns,
                    migratable,
                }
            })
            .collect();
        // Loads reset at the epoch boundary.
        for id in participants {
            // analyze: allow(panic, "participants are keys of self.chares collected above")
            self.chares.get_mut(id).unwrap().load_ns = 0;
        }
        self.lb.stats_sent = true;
        let at_sync = self.lb.at_sync_count;
        self.emit(0, EnvKind::LbStats { stats, at_sync });
    }

    fn lb_central_stats(&mut self, stats: Vec<LbChareStat>, _at_sync: u64) {
        debug_assert_eq!(self.pe, 0, "LB stats routed to non-central PE");
        // Fold each batch on arrival (same concatenation order the old
        // per-batch buffer produced, without holding npes Vec headers).
        self.lb_central.chares.extend(stats);
        self.lb_tree.peak_stats = self
            .lb_tree
            .peak_stats
            .max(self.lb_central.chares.len() as u64);
        self.lb_central.pes_reported += 1;
        if self.lb_central.pes_reported == 1 {
            // Epoch begins: stamp it for the trace, then poll every PE so
            // ones without participants still report (they have no at-sync
            // trigger of their own).
            self.lb_central.epoch_start_ns = self.now_ns();
            for pe in 0..self.npes {
                self.emit(pe, EnvKind::LbPoll);
            }
        }
        if self.lb_central.pes_reported < self.npes {
            return;
        }
        let chares = std::mem::take(&mut self.lb_central.chares);
        self.lb_central.pes_reported = 0;
        self.lb_central.in_epoch = true;
        let stats = LbStats {
            npes: self.npes,
            chares,
        };
        let moves: Vec<(ChareId, Pe)> = match &self.cfg.lb {
            Some(strategy) => strategy
                .assign(&stats)
                .into_iter()
                .filter(|(id, dst)| {
                    let cur = stats.chares.iter().find(|c| c.id == *id);
                    match cur {
                        Some(c) => c.migratable && c.pe != *dst && *dst < self.npes,
                        None => false,
                    }
                })
                .collect(),
            None => Vec::new(),
        };
        let mut per_pe: HashMap<Pe, Vec<(ChareId, Pe)>> = HashMap::new();
        let mut total = 0u64;
        for (id, dst) in moves {
            // A strategy returning a move for a chare absent from its own
            // input stats is a strategy bug; skip that move instead of
            // panicking the PE mid-epoch.
            let Some(owner) = stats.chares.iter().find(|c| c.id == id).map(|c| c.pe) else {
                continue;
            };
            total += 1;
            per_pe.entry(owner).or_default().push((id, dst));
        }
        // Reclaim the stat buffer's capacity for the next epoch.
        let mut buf = stats.chares;
        buf.clear();
        self.lb_central.chares = buf;
        if total == 0 {
            self.lb_finish_epoch();
            return;
        }
        self.lb_central.migrations_pending = total;
        self.lb_central.migrations_done = 0;
        for (owner, moves) in per_pe {
            self.emit(owner, EnvKind::LbDoMigrate { moves, total });
        }
    }

    // =====================================================================
    // Hierarchical load balancing (`LbMode::Tree`)
    //
    // PEs fold chare stats up a group tree; interior nodes refine placement
    // within their subtree, issue migration orders directly, and pass only
    // a bounded residual (truncated acceptor list + capped spill) upward.
    // No PE ever materializes the global stat vector. Orders flow as normal
    // `LbDoMigrate`s; completion is counted at the root (`LbMigrated`),
    // which finishes the epoch once every ordered migration landed.
    // =====================================================================

    fn lb_tree_kick(&mut self, epoch: u64) {
        debug_assert_eq!(self.pe, 0, "LbKick routed to non-root PE");
        // Redundant kicks for a running epoch and stragglers from finished
        // ones are both dropped; only a kick for the current epoch starts
        // the wave.
        if self.lb_central.in_epoch || epoch != self.lb_central.epochs_done {
            return;
        }
        self.lb_central.in_epoch = true;
        self.lb_central.epoch_start_ns = self.now_ns();
        // The order total is unknown until the root's own merge runs;
        // block lb_maybe_finish_epoch until then.
        self.lb_central.migrations_pending = u64::MAX;
        self.lb_central.migrations_done = 0;
        self.lb_tree_poll(epoch, 0);
    }

    fn lb_tree_poll(&mut self, epoch: u64, root: Pe) {
        debug_assert!(
            epoch <= self.lb_tree.epoch + 1,
            "LB poll wave more than one epoch ahead"
        );
        if epoch == self.lb_tree.epoch + 1 {
            // Next epoch's wave outran this PE's resume; hold it.
            self.lb_tree.pending_poll = Some((epoch, root));
            return;
        }
        if epoch != self.lb_tree.epoch || self.lb_tree.polled {
            return; // straggler or duplicate
        }
        self.lb_tree.polled = true;
        let tree = self.cfg.lb_mode.tree_shape();
        let mut expected = 0usize;
        tree.children_for_each(self.pe, root, self.npes, |child| {
            expected += 1;
            self.emit(child, EnvKind::LbTreePoll { epoch, root });
        });
        self.lb_tree.children_expected = expected;
        self.lb_tree_try_report();
    }

    fn lb_tree_report_in(&mut self, report: LbTreeReport) {
        // A child reports only after we polled it, and we cannot resume
        // (reset) before our whole subtree reported — so a report always
        // lands in its own epoch.
        debug_assert!(self.lb_tree.polled, "LB tree report before poll");
        self.lb_tree.fold(report);
        let held = self.lb_tree.spill.len() as u64;
        self.lb_tree.peak_stats = self.lb_tree.peak_stats.max(held);
        self.lb_tree_try_report();
    }

    /// Report readiness check, run after every event that could complete
    /// this PE's subtree: polled, every relayed child reported, and every
    /// local participant reached at-sync.
    fn lb_tree_try_report(&mut self) {
        if !self.lb_tree.polled || self.lb.stats_sent {
            return;
        }
        if self.lb_tree.children_seen < self.lb_tree.children_expected {
            return;
        }
        let participants = self.lb_participants();
        if !participants.is_empty() && self.lb.at_sync_count < participants.len() as u64 {
            return;
        }
        let LbMode::Tree { group_size } = self.cfg.lb_mode else {
            debug_assert!(false, "tree report in central mode");
            return;
        };
        // Merge this PE's own contribution: migratable participants become
        // placement candidates; everything pinned is this PE's fixed load.
        let mut fixed = 0u64;
        for id in &participants {
            // analyze: allow(panic, "LB stats walk this PE's own chare map keys")
            let slot = &self.chares[id];
            let migratable = self
                .registry
                // analyze: allow(panic, "a chare's collection spec exists wherever the chare lives")
                .vtable(self.colls[&id.coll].spec.ctype)
                .migratable;
            self.lb_tree.total_load_ns += slot.load_ns;
            if migratable {
                self.lb_tree.chare_count += 1;
                self.lb_tree.spill.push(LbChareStat {
                    id: *id,
                    pe: self.pe,
                    load_ns: slot.load_ns,
                    migratable: true,
                });
            } else {
                fixed += slot.load_ns;
            }
        }
        // Loads reset at the epoch boundary, as in central mode.
        for id in &participants {
            // analyze: allow(panic, "participants are keys of self.chares collected above")
            self.chares.get_mut(id).unwrap().load_ns = 0;
        }
        self.lb_tree.pe_count += 1;
        self.lb_tree.acceptors.push((self.pe, fixed));
        self.lb.stats_sent = true;
        let held = self.lb_tree.spill.len() as u64;
        self.lb_tree.peak_stats = self.lb_tree.peak_stats.max(held);

        let is_root = self.pe == 0;
        if is_root || self.lb_tree.children_expected > 0 {
            // Interior (or root) node: refine placement within the subtree
            // and issue orders directly. Leaves skip this — refining a
            // single PE against its own average would keep every chare
            // local and starve the upper levels of candidates.
            let limit = refine_limit(
                self.lb_tree.total_load_ns,
                self.lb_tree.pe_count,
                REFINE_THRESHOLD_PERMILLE,
            );
            let mut acceptors = std::mem::take(&mut self.lb_tree.acceptors);
            let candidates = std::mem::take(&mut self.lb_tree.spill);
            let outcome = greedy_refine_place(&mut acceptors, candidates, limit);
            let mut per_pe: HashMap<Pe, Vec<(ChareId, Pe)>> = HashMap::new();
            for (id, from, dst) in outcome.moves {
                self.lb_tree.ordered += 1;
                per_pe.entry(from).or_default().push((id, dst));
            }
            for (owner, moves) in per_pe {
                let total = moves.len() as u64;
                self.emit(owner, EnvKind::LbDoMigrate { moves, total });
            }
            self.lb_tree.acceptors = acceptors;
            self.lb_tree.spill = outcome.leftover;
        }
        if is_root {
            // Residual candidates stay put. The epoch's order total is now
            // final; the epoch ends when that many LbMigrateds landed.
            self.lb_central.migrations_pending = self.lb_tree.ordered;
            self.lb_maybe_finish_epoch();
        } else {
            truncate_acceptors(&mut self.lb_tree.acceptors, group_size.max(16));
            let cap = spill_cap(self.lb_tree.chare_count, self.lb_tree.pe_count);
            truncate_spill(&mut self.lb_tree.spill, cap);
            let tree = self.cfg.lb_mode.tree_shape();
            let parent = tree.parent(self.pe, 0, self.npes);
            // analyze: allow(panic, "every non-root PE has an LB tree parent")
            let parent = parent.expect("non-root has parent");
            let report = LbTreeReport {
                pe_count: self.lb_tree.pe_count,
                chare_count: self.lb_tree.chare_count,
                total_load_ns: self.lb_tree.total_load_ns,
                ordered: self.lb_tree.ordered,
                acceptors: std::mem::take(&mut self.lb_tree.acceptors),
                spill: std::mem::take(&mut self.lb_tree.spill),
            };
            self.emit(
                parent,
                EnvKind::LbTreeReport {
                    report: Box::new(report),
                },
            );
        }
    }

    /// Close the epoch once every ordered migration has landed. `pending`
    /// holds `u64::MAX` from kick until the root's merge fixes the total,
    /// so a completion arriving early can never finish the epoch.
    fn lb_maybe_finish_epoch(&mut self) {
        if self.lb_central.in_epoch
            && self.lb_central.migrations_done >= self.lb_central.migrations_pending
        {
            self.lb_finish_epoch();
        }
    }

    fn lb_finish_epoch(&mut self) {
        self.lb_central.in_epoch = false;
        self.lb_central.migrations_pending = 0;
        self.lb_central.migrations_done = 0;
        self.lb_central.epochs_done += 1;
        if self.tracer.full() {
            let now = self.now_ns();
            let dur = now.saturating_sub(self.lb_central.epoch_start_ns);
            self.tracer
                .push(now, charm_trace::EventKind::LbEpoch { dur_ns: dur });
        }
        self.emit(0, EnvKind::LbResume { root: 0 });
    }

    fn lb_resume_local(&mut self) {
        self.lb.at_sync_count = 0;
        self.lb.stats_sent = false;
        self.lb_tree.reset();
        self.lb_tree.epoch += 1;
        // A buffered next-epoch poll (its wave outran this resume) can run
        // now that the epoch counter caught up.
        if let Some((epoch, root)) = self.lb_tree.pending_poll.take() {
            self.lb_tree_poll(epoch, root);
        }
        let resumed: Vec<ChareId> = self
            .chares
            .iter()
            .filter(|(_, s)| s.at_sync)
            .map(|(id, _)| *id)
            .collect();
        let mut ids = resumed;
        ids.sort();
        for id in ids {
            if let Some(slot) = self.chares.get_mut(&id) {
                slot.at_sync = false;
            }
            self.invoke(id, Invoke::ResumeFromSync);
        }
    }

    /// LB epochs completed (read by the driver for the report; PE 0 only).
    pub fn lb_epochs(&self) -> u64 {
        self.lb_central.epochs_done
    }

    /// Close out this PE's trace: fold unattributed time into overhead and
    /// hand the per-PE record to the driver. The tracer is consumed (a
    /// subsequent call would yield an empty `Off` trace).
    pub fn finish_trace(&mut self) -> charm_trace::PeTrace {
        let wall = self.now_ns();
        let tracer = std::mem::take(&mut self.tracer);
        let registry = Arc::clone(&self.registry);
        let mut trace = tracer.finish(self.pe, wall, self.encode_pool.bytes_encoded(), move |ct| {
            registry.name_of(crate::ids::ChareTypeId(ct)).to_string()
        });
        // Fast-path counters live where the fast paths run (the encode
        // pool and the dispatch cache); fold them into the report here.
        trace.perf.slab_hits = self.encode_pool.hits();
        trace.perf.slab_misses = self.encode_pool.misses();
        trace.perf.inline_payloads = self.encode_pool.inline_count();
        trace.perf.dispatch_hits = self.dispatch_cache.hits;
        trace.perf.dispatch_misses = self.dispatch_cache.misses;
        trace.perf.fwd_hops = self.fwd_hops;
        trace.perf.lb_peak_stats = self.lb_tree.peak_stats;
        // The telemetry series lives where the sweeps complete (PE 0).
        trace.telemetry = std::mem::take(&mut self.tel_series);
        trace
    }

    /// QD counter totals for the end-of-run balance check.
    #[cfg(feature = "analyze")]
    pub fn counter_totals(&self) -> (u64, u64) {
        (self.tracer.counters.sent, self.tracer.counters.processed)
    }

    /// Diagnostic snapshot printed when a simulated run stalls (runs out of
    /// events without an `exit()`): everything that could be waiting.
    pub fn debug_dump(&self) {
        // analyze: allow(nondeterminism, "order-insensitive sum for stall diagnostics; never feeds scheduling")
        let buffered: usize = self.chares.values().map(|s| s.buffered.len()).sum();
        // analyze: allow(nondeterminism, "order-insensitive count for stall diagnostics; never feeds scheduling")
        let blocked: usize = self.coros.values().filter(|h| h.wait.is_some()).count();
        if buffered == 0
            && blocked == 0
            && self.reds.is_empty()
            && self.pending_chare.is_empty()
            && self.pending_coll.is_empty()
            && self.lb.at_sync_count == 0
        {
            return;
        }
        let c = &self.tracer.counters;
        eprintln!(
            "  PE {}: {} chares, {} buffered msgs, {} blocked coros, {} reductions in flight, {} pending-chare, {} pending-coll, at_sync={}, sent={} processed={} remote_bytes={} entries={} migrations={}",
            self.pe,
            self.chares.len(),
            buffered,
            blocked,
            self.reds.len(),
            self.pending_chare.len(),
            self.pending_coll.len(),
            self.lb.at_sync_count,
            c.sent,
            c.processed,
            c.bytes,
            c.entries,
            c.migrations,
        );
        for ((coll, redno), st) in &self.reds {
            eprintln!(
                "    red {coll} #{redno}: count {} of subtree {}",
                st.count,
                self.subtree_expected(*coll)
            );
        }
        // analyze: allow(nondeterminism, "hash order erased by the sort below; diagnostic output only")
        let mut ids: Vec<_> = self.chares.keys().copied().collect();
        ids.sort();
        for id in ids {
            // analyze: allow(panic, "debug dump walks this PE's own chare map keys")
            let slot = &self.chares[&id];
            if !slot.buffered.is_empty() || slot.at_sync || slot.red_seq > 0 {
                eprintln!(
                    "    chare {id}: buffered={} at_sync={} red_seq={}",
                    slot.buffered.len(),
                    slot.at_sync,
                    slot.red_seq
                );
            }
        }
    }

    // =====================================================================
    // Quiescence detection
    // =====================================================================

    fn qd_request(&mut self, fid: FutureId) {
        debug_assert_eq!(self.pe, 0);
        self.qd_central.waiters.push(fid);
        if !self.qd_central.active {
            self.qd_central.active = true;
            self.qd_central.last = None;
            self.qd_start_round();
        }
    }

    fn qd_start_round(&mut self) {
        self.qd_central.round += 1;
        let round = self.qd_central.round;
        self.emit(0, EnvKind::QdProbe { round, root: 0 });
    }

    fn qd_probe(&mut self, round: u64, root: Pe) {
        // Quiescence-entry flush: a message parked in an aggregation buffer
        // is sent-but-unprocessed forever, so no `(sent, processed)` sample
        // could ever balance over it. Flushing here puts the traffic in
        // flight; the two-consecutive-identical-rounds rule then converges
        // normally (just with extra rounds). See `QdCentral::round_complete`.
        self.flush_aggregation();
        let tree = self.cfg.tree;
        self.qd_pe = QdPeState {
            round,
            pending_children: tree.fanout(self.pe, root, self.npes),
            sent: self.tracer.counters.sent,
            done: self.tracer.counters.processed,
            pes: 1,
            active: true,
        };
        tree.children_for_each(self.pe, root, self.npes, |child| {
            self.emit(child, EnvKind::QdProbe { round, root });
        });
        self.qd_maybe_reply(root);
    }

    fn qd_counts(&mut self, round: u64, sent: u64, done: u64, pes: u64) {
        if !self.qd_pe.active || self.qd_pe.round != round {
            return; // stale round
        }
        self.qd_pe.pending_children -= 1;
        self.qd_pe.sent += sent;
        self.qd_pe.done += done;
        self.qd_pe.pes += pes;
        self.qd_maybe_reply(0);
    }

    fn qd_maybe_reply(&mut self, root: Pe) {
        if !self.qd_pe.active || self.qd_pe.pending_children > 0 {
            return;
        }
        self.qd_pe.active = false;
        let (round, sent, done, pes) = (
            self.qd_pe.round,
            self.qd_pe.sent,
            self.qd_pe.done,
            self.qd_pe.pes,
        );
        match self.cfg.tree.parent(self.pe, root, self.npes) {
            Some(parent) => self.emit(
                parent,
                EnvKind::QdCounts {
                    round,
                    sent,
                    done,
                    pes,
                },
            ),
            None => {
                // Root evaluates.
                if self.qd_central.round_complete(sent, done) {
                    self.qd_central.active = false;
                    self.qd_completions += 1;
                    let waiters = std::mem::take(&mut self.qd_central.waiters);
                    let telemetry = self.telemetry_due();
                    if self.auto_ckpt_due() {
                        // The machine is quiescent — exactly when a
                        // consistent image exists. Hold the quiescence
                        // waiters until every PE commits, so the app only
                        // resumes against fully saved state. A telemetry
                        // sweep due at the same round runs after the last
                        // ack (the machine stays quiescent throughout).
                        self.start_auto_ckpt(waiters, telemetry);
                        return;
                    }
                    if telemetry {
                        // The machine is quiescent: every PE's counters
                        // are stable and only sweep traffic will be in
                        // flight, so the reduced frame is a deterministic
                        // function of the program (not the schedule).
                        self.start_telemetry_sweep(waiters);
                        return;
                    }
                    self.complete_qd_waiters(waiters);
                } else {
                    self.qd_start_round();
                }
            }
        }
    }

    /// Complete every pending quiescence future with `()`.
    fn complete_qd_waiters(&mut self, waiters: Vec<FutureId>) {
        for fid in waiters {
            let dst = fid.pe as usize;
            let payload = OutPayload::new(())
                .into_payload(
                    dst == self.pe,
                    self.cfg.same_pe_byref,
                    self.cfg.codec,
                    &mut self.encode_pool,
                )
                // analyze: allow(panic, "encoding the unit value fails only on a codec bug")
                .expect("() failed to encode");
            self.emit(dst, EnvKind::FutureValue { fid, payload });
        }
    }

    /// Whether this quiescence completion should trigger an automatic
    /// checkpoint (PE 0; cadence from `Runtime::auto_checkpoint`). The
    /// restore gate's own quiescence round never checkpoints — the machine
    /// is still re-installing chares at that point.
    fn auto_ckpt_due(&self) -> bool {
        match &self.cfg.auto_ckpt {
            Some((every, _)) => {
                *every > 0
                    && self.ckpt.is_none()
                    && self.entry_gate.is_none()
                    && self.qd_completions % *every == 0
            }
            None => false,
        }
    }

    // =====================================================================
    // In-band telemetry (DESIGN.md §12)
    // =====================================================================

    /// Whether this quiescence completion should trigger a telemetry sweep
    /// (PE 0; cadence from `Runtime::telemetry`). Mirrors
    /// [`Self::auto_ckpt_due`]: the restore gate's own round never sweeps,
    /// and a sweep already in flight is never overlapped.
    fn telemetry_due(&self) -> bool {
        match &self.cfg.telemetry {
            Some(t) => {
                t.every > 0
                    && !self.tel_active
                    && self.entry_gate.is_none()
                    && self.qd_completions % t.every == 0
            }
            None => false,
        }
    }

    /// PE 0: start an in-band telemetry sweep over the PE tree. The
    /// quiescence waiters stay parked until the merged frame lands back
    /// here, so the only traffic in flight during the sweep is the sweep's
    /// own — every PE samples stable counters, and the reduced frame is
    /// schedule-independent (the determinism the permuted-schedule suite
    /// asserts).
    fn start_telemetry_sweep(&mut self, waiters: Vec<FutureId>) {
        self.tel_active = true;
        self.tel_waiters = waiters;
        let seq = self.tel_seq;
        self.tel_seq += 1;
        self.telemetry_probe(seq, 0);
    }

    /// A telemetry probe crossing this node (or starting on the root):
    /// relay it to the tree children, sample this PE's own frame — the
    /// machine is quiescent, so the counters are stable — and send the
    /// merged frame up once every child subtree has answered.
    fn telemetry_probe(&mut self, seq: u64, root: Pe) {
        let tree = self.cfg.tree;
        self.tel_pending = tree.fanout(self.pe, root, self.npes);
        self.tel_root = root;
        tree.children_for_each(self.pe, root, self.npes, |child| {
            self.emit(child, EnvKind::TelemetryProbe { seq, root });
        });
        let frame = self.sample_frame(seq);
        self.tel_acc = Some(Box::new(frame));
        self.tel_maybe_send_up(seq);
    }

    /// A child subtree's merged frame: fold it into this node's
    /// accumulator.
    fn telemetry_frame(&mut self, seq: u64, frame: Box<charm_trace::MetricFrame>) {
        if let Some(acc) = self.tel_acc.as_deref_mut() {
            acc.merge(&frame);
        }
        self.tel_pending = self.tel_pending.saturating_sub(1);
        self.tel_maybe_send_up(seq);
    }

    /// Once the local sample and every child frame are merged, ship the
    /// subtree frame to the parent — or, on the root, complete the sweep.
    fn tel_maybe_send_up(&mut self, seq: u64) {
        if self.tel_pending > 0 {
            return;
        }
        let Some(frame) = self.tel_acc.take() else {
            return;
        };
        match self.cfg.tree.parent(self.pe, self.tel_root, self.npes) {
            Some(parent) => self.emit(parent, EnvKind::TelemetryFrame { seq, frame }),
            None => self.tel_root_complete(*frame),
        }
    }

    /// PE 0: the cluster-wide frame is complete — feed the sink, retain it
    /// for `RunReport::telemetry`, and release the held quiescence waiters.
    fn tel_root_complete(&mut self, frame: charm_trace::MetricFrame) {
        if let Some(t) = &self.cfg.telemetry {
            if let Some(sink) = &t.sink {
                sink(&frame);
            }
        }
        self.tel_series.push(frame);
        self.tel_active = false;
        let waiters = std::mem::take(&mut self.tel_waiters);
        self.complete_qd_waiters(waiters);
    }

    /// Snapshot this PE's metrics into a single-PE frame. Runs at probe
    /// arrival, when the machine is quiescent except for sweep traffic, so
    /// every field the logical digest covers is stable.
    fn sample_frame(&mut self, seq: u64) -> charm_trace::MetricFrame {
        let now = self.now_ns();
        let (busy, idle, overhead) = self.tracer.time_split();
        let wall = busy + idle + overhead;
        let util = if wall == 0 {
            0.0
        } else {
            busy as f64 / wall as f64
        };
        let c = self.tracer.counters;
        // Parked-message census; each sum is order-insensitive, so hash
        // iteration order cannot leak into the frame.
        let mut queue_depth = 0u64;
        // analyze: allow(nondeterminism, "order-insensitive sum of when-guard buffer lengths")
        for s in self.chares.values() {
            queue_depth += s.buffered.len() as u64;
        }
        // analyze: allow(nondeterminism, "order-insensitive sum of pending-chare queue lengths")
        for v in self.pending_chare.values() {
            queue_depth += v.len() as u64;
        }
        // analyze: allow(nondeterminism, "order-insensitive sum of pending-collection queue lengths")
        for v in self.pending_coll.values() {
            queue_depth += v.len() as u64;
        }
        let top = self
            .tel_sketch
            .items()
            .into_iter()
            .map(|(id, weight, err)| charm_trace::TopItem {
                label: self.chare_label(&id),
                weight,
                err,
            })
            .collect();
        charm_trace::MetricFrame {
            seq,
            pes: 1,
            sampled_at_ns: now,
            busy_ns: busy,
            idle_ns: idle,
            overhead_ns: overhead,
            util_min: util,
            util_max: util,
            util_sum: util,
            util_sumsq: util * util,
            msgs_sent: c.sent,
            msgs_processed: c.processed,
            entries: c.entries,
            bytes_remote: c.bytes,
            queue_depth,
            queue_depth_max: queue_depth,
            exec: self.tracer.exec_hist(),
            latency: self.tracer.latency_hist().clone(),
            top,
            top_cap: charm_trace::DEFAULT_TOP_K,
        }
    }

    /// Human label for a hot chare: `TypeName[index]` when the collection
    /// spec is locally known, the raw id otherwise.
    fn chare_label(&self, id: &ChareId) -> String {
        match self.colls.get(&id.coll) {
            Some(cs) => format!("{}{}", self.registry.name_of(cs.spec.ctype), id.index),
            None => format!("{id}"),
        }
    }

    /// PE 0: broadcast `CkptSave` for the next generation, parking the
    /// quiescence waiters until every PE acks ([`Self::ckpt_ack`]).
    /// `telemetry` carries a same-round telemetry sweep through the
    /// checkpoint (it starts once the last PE commits).
    fn start_auto_ckpt(&mut self, waiters: Vec<FutureId>, telemetry: bool) {
        let store = match &self.cfg.auto_ckpt {
            Some((_, store)) => store.clone(),
            None => return,
        };
        let epoch = self.next_ckpt_epoch;
        self.next_ckpt_epoch += 1;
        self.ckpt = Some(CkptPending::Auto {
            left: self.npes,
            waiters,
            telemetry,
        });
        let (dir, buddy) = match &store {
            Store::Disk(root) => (
                Some(
                    checkpoint::epoch_dir(root, epoch)
                        .to_string_lossy()
                        .into_owned(),
                ),
                false,
            ),
            Store::Memory => (None, true),
        };
        for pe in 0..self.npes {
            self.emit(
                pe,
                EnvKind::CkptSave {
                    dir: dir.clone(),
                    epoch,
                    buddy,
                },
            );
        }
    }

    // =====================================================================
    // Checkpoint / restart
    // =====================================================================

    fn ckpt_save(&mut self, initiator: Pe, dir: Option<String>, epoch: u64, buddy: bool) {
        // Checkpoint-entry flush: the snapshot must not capture a machine
        // where already-counted sends sit in a sender-side aggregation
        // buffer — the buffer dies with this incarnation, and a restore
        // would then wait forever on traffic that no longer exists.
        self.flush_aggregation();
        let main_coll = main_chare_id().coll;
        let mut specs: Vec<CollSpec> = self
            .colls
            // analyze: allow(nondeterminism, "hash order erased by the sort below — specs are persisted and restored in id order")
            .values()
            .map(|cs| cs.spec.clone())
            .filter(|spec| spec.id != main_coll)
            .collect();
        // Sort: the image bytes (and the restore emission order derived
        // from them) must not depend on HashMap iteration order, or two
        // replays of one schedule diverge after a checkpoint.
        specs.sort_by_key(|spec| spec.id);
        let mut ids: Vec<ChareId> = self
            .chares
            // analyze: allow(nondeterminism, "hash order erased by the sort below — images are encoded in id order")
            .keys()
            .filter(|id| id.coll != main_coll)
            .copied()
            .collect();
        ids.sort();
        let mut chares = Vec::with_capacity(ids.len());
        for id in ids {
            // analyze: allow(panic, "checkpoint walks this PE's own chares; their specs exist locally")
            let cs = &self.colls[&id.coll];
            let encode_msg = self.registry.vtable(cs.spec.ctype).encode_msg;
            // analyze: allow(panic, "checkpoint walks this PE's own chare map keys")
            let slot = &self.chares[&id];
            assert!(
                slot.coros.is_empty(),
                "cannot checkpoint {id}: a threaded entry method is active"
            );
            let boxed = slot
                .boxed
                .as_ref()
                // analyze: allow(panic, "checkpoints run between entry methods; the box is in place")
                .expect("chare checked out at checkpoint");
            let data = boxed
                .pack(self.cfg.codec)
                .unwrap_or_else(|| {
                    // analyze: allow(panic, "checkpointing a chare type without pack support is a registration bug")
                    panic!(
                        "{} is not migratable; checkpointing requires register_migratable",
                        self.registry.vtable(boxed.type_id()).name
                    )
                })
                // analyze: allow(panic, "encoding chare state for checkpoint fails only on a codec bug")
                .expect("chare state failed to encode");
            let buffered: Vec<(Vec<u8>, Option<FutureId>, Option<u32>)> = slot
                .buffered
                .iter()
                .map(|b| {
                    (
                        encode_msg(&*b.msg, self.cfg.codec)
                            // analyze: allow(panic, "buffered messages were encodable at send time")
                            .expect("buffered message encode failed"),
                        b.reply,
                        b.guard,
                    )
                })
                .collect();
            chares.push(CkptChare {
                coll: id.coll,
                index: id.index,
                data,
                red_seq: slot.red_seq,
                buffered,
            });
        }
        let saved = chares.len() as u64;
        let file = CkptFile {
            version: checkpoint::CKPT_VERSION,
            npes: self.npes as u64,
            epoch,
            specs,
            chares,
        };
        let mut bytes = 0u64;
        if let Some(dir) = &dir {
            bytes += checkpoint::write_file(std::path::Path::new(dir), self.pe, &file)
                // analyze: allow(panic, "an unwritable checkpoint directory is an unrecoverable operator error; fail loudly rather than silently drop the checkpoint")
                .unwrap_or_else(|e| panic!("checkpoint write failed on PE {}: {e}", self.pe));
        }
        if buddy {
            let image = checkpoint::encode_image(&file).unwrap_or_else(|e| {
                // analyze: allow(recovery-hook, "encoding the in-memory checkpoint image fails only on a codec bug; without the image there is nothing to recover from")
                panic!("checkpoint image encode failed on PE {}: {e}", self.pe)
            });
            bytes += image.len() as u64;
            self.ckpt_store.store_own(epoch, image.clone());
            // Ship a copy to the buddy; the buddy acks the initiator on our
            // behalf, so a committed generation implies buddy coverage.
            let buddy_pe = (self.pe + 1) % self.npes;
            self.emit(
                buddy_pe,
                EnvKind::CkptBuddy {
                    owner: self.pe,
                    initiator,
                    epoch,
                    saved,
                    image,
                },
            );
        } else {
            self.emit(initiator, EnvKind::CkptAck { saved });
        }
        if self.tracer.enabled() {
            self.tracer.ckpt_bytes += bytes;
            if self.tracer.full() {
                let now = self.now_ns();
                self.tracer
                    .push(now, charm_trace::EventKind::Ckpt { bytes });
            }
        }
    }

    /// Buddy half of in-memory double checkpointing: hold `owner`'s image
    /// so its death can be recovered from this PE's copy, then ack the
    /// initiator on the owner's behalf.
    fn ckpt_buddy(&mut self, owner: Pe, initiator: Pe, epoch: u64, saved: u64, image: WireBytes) {
        self.ckpt_store.store_held(owner, epoch, image);
        self.emit(initiator, EnvKind::CkptAck { saved });
    }

    fn ckpt_ack(&mut self, saved: u64) {
        // A late or duplicate ack after the checkpoint window closed is a
        // peer-protocol anomaly, not a local invariant violation: drop it
        // rather than bringing the PE down.
        //
        // The `mutation-ckptack` feature (tests only, never default)
        // reintroduces the pre-fix behaviour — panicking on the stray ack —
        // so the mutation smoke test can prove the model checker
        // rediscovers the original bug and shrinks its schedule.
        #[cfg(feature = "mutation-ckptack")]
        let Some(pending) = self.ckpt.take() else {
            // analyze: allow(panic, "deliberately reintroduced bug behind the test-only mutation-ckptack feature; the model checker must catch this")
            panic!(
                "stray CkptAck on PE {} with no checkpoint in progress",
                self.pe
            );
        };
        #[cfg(not(feature = "mutation-ckptack"))]
        let Some(pending) = self.ckpt.take() else {
            return;
        };
        match pending {
            CkptPending::Manual { fid, left, total } => {
                let total = total + saved;
                if left > 1 {
                    self.ckpt = Some(CkptPending::Manual {
                        fid,
                        left: left - 1,
                        total,
                    });
                    return;
                }
                let dst = fid.pe as usize;
                let payload = OutPayload::new(total as i64)
                    .into_payload(
                        dst == self.pe,
                        self.cfg.same_pe_byref,
                        self.cfg.codec,
                        &mut self.encode_pool,
                    )
                    // analyze: allow(panic, "encoding the checkpoint count fails only on a codec bug")
                    .expect("checkpoint count failed to encode");
                self.emit(dst, EnvKind::FutureValue { fid, payload });
            }
            CkptPending::Auto {
                left,
                waiters,
                telemetry,
            } => {
                if left > 1 {
                    self.ckpt = Some(CkptPending::Auto {
                        left: left - 1,
                        waiters,
                        telemetry,
                    });
                    return;
                }
                // Generation committed on every PE. A telemetry sweep due
                // at the same quiescence round runs now — the machine is
                // still quiescent and the waiters are still parked — then
                // releases the waiters; otherwise release them here.
                if telemetry {
                    self.start_telemetry_sweep(waiters);
                    return;
                }
                self.complete_qd_waiters(waiters);
            }
        }
    }

    fn restore_coll(&mut self, spec: CollSpec, root: Pe) {
        let tree = self.cfg.tree;
        tree.children_for_each(self.pe, root, self.npes, |child| {
            self.emit(
                child,
                EnvKind::RestoreColl {
                    spec: spec.clone(),
                    root,
                },
            );
        });
        // A restored collection starts empty everywhere; members arrive as
        // MigrateChare envelopes, which maintain local/subtree counts.
        let coll = spec.id;
        if spec.id.creator as usize == self.pe {
            // Keep fresh collection ids from colliding with restored ones.
            self.seed
                .coll_seq
                .fetch_max(spec.id.seq + 1, std::sync::atomic::Ordering::Relaxed);
        }
        self.colls.entry(coll).or_insert_with(|| CollState {
            local_members: 0,
            subtree_members: 0,
            done_inserting: !matches!(spec.kind, CollKind::Sparse),
            red_broadcast_seen: 0,
            spec,
        });
        self.dispatch_cache.clear();
        if let Some(parked) = self.pending_coll.remove(&coll) {
            for env in parked {
                self.dispatch(env);
            }
        }
    }

    /// PE 0, at bootstrap with a restore source: re-install the collections
    /// and redistribute the chares by their placement policy onto the
    /// *current* PE count (which may differ from the checkpoint's).
    fn restore_from_files(&mut self, files: Vec<CkptFile>) {
        let mut seen = std::collections::HashSet::new();
        let mut specs = Vec::new();
        for f in &files {
            for spec in &f.specs {
                if seen.insert(spec.id) {
                    specs.push(spec.clone());
                }
            }
        }
        for spec in &specs {
            self.emit(
                0,
                EnvKind::RestoreColl {
                    spec: spec.clone(),
                    root: 0,
                },
            );
        }
        let spec_of = |coll: CollectionId| {
            specs
                .iter()
                .find(|s| s.id == coll)
                // analyze: allow(panic, "a checkpoint naming a collection absent from the restored spec set is corrupt input; fail loudly")
                .unwrap_or_else(|| panic!("checkpointed chare of unknown collection {coll}"))
        };
        let mut restored = 0u64;
        for f in files {
            for c in f.chares {
                let dest = spec_of(c.coll).place(&c.index, self.npes, &self.placements);
                self.emit(
                    dest,
                    EnvKind::MigrateChare {
                        msg: Box::new(MigrateMsg {
                            coll: c.coll,
                            index: c.index,
                            data: c.data,
                            buffered: c.buffered,
                            load_ns: 0,
                            red_seq: c.red_seq,
                            for_lb: false,
                            trail: Vec::new(),
                        }),
                    },
                );
                restored += 1;
            }
        }
        let _ = restored;
    }

    // =====================================================================
    // Bootstrap
    // =====================================================================

    fn bootstrap(&mut self) {
        debug_assert_eq!(self.pe, 0, "bootstrap on non-zero PE");
        if let Some(restore) = &self.cfg.restore {
            // Re-install the checkpoint, then hold the entry coroutine
            // until quiescence confirms every restored chare has landed —
            // otherwise the entry's first broadcast could race migrants.
            let files = match restore {
                RestoreFrom::Dir(dir) => checkpoint::read_all(dir)
                    // analyze: allow(recovery-hook, "the driver pre-validates the restore directory; a failure here means it was ripped out from under a running restore")
                    .unwrap_or_else(|e| panic!("checkpoint restore failed: {e}")),
                RestoreFrom::Images(files) => files.clone(),
            };
            self.restore_from_files(files);
            let fid = FutureId {
                pe: self.pe as u32,
                seq: self
                    .seed
                    .fut_seq
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            };
            self.entry_gate = Some(fid);
            self.emit(0, EnvKind::QdRequest { fid });
            return;
        }
        self.launch_main();
    }

    fn launch_main(&mut self) {
        let id = self.main_id;
        // The main chare lives in a synthetic singleton collection known
        // only to PE 0 — it is never addressed remotely.
        let spec = CollSpec {
            id: id.coll,
            ctype: self.registry.type_of::<crate::runtime::Main>(),
            kind: CollKind::Singleton { pe: 0 },
            placement: crate::collections::Placement::Hash,
            use_lb: false,
        };
        self.colls.insert(
            id.coll,
            CollState {
                spec,
                local_members: 1,
                subtree_members: 1,
                done_inserting: true,
                red_broadcast_seen: 0,
            },
        );
        self.chares.insert(
            id,
            Slot::new(Box::new(crate::chare::holder_for(
                crate::runtime::Main,
                self.registry.type_of::<crate::runtime::Main>(),
            ))),
        );
        // analyze: allow(panic, "bootstrap runs exactly once and Runtime::run always sets the entry closure first")
        let entry = self.entry.take().expect("bootstrap without entry closure");
        self.launch_coro(id, entry, None);
    }
}

fn cs_home(cs: &CollState, index: &Index, npes: usize) -> Pe {
    cs.spec.home_pe(index, npes)
}
